"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a reduced
("fast") scale: synthetic data, linear/MLP models and tens of rounds instead
of CNNs and hundreds of rounds.  The printed output has the same structure as
the paper's artefact (loss-per-round series for figures, accuracy tables for
the tables), so the qualitative shape — which algorithm wins, how the gap
changes with the number of agents, the privacy budget and the topology — can
be compared directly.  Absolute values are not expected to match the paper;
see EXPERIMENTS.md for the side-by-side record.

Environment knobs:

* ``REPRO_BENCH_ROUNDS``  — communication rounds per cell (default 15);
* ``REPRO_BENCH_AGENTS``  — comma-separated agent counts (default "6,10");
* ``REPRO_BENCH_FULL=1``  — also sweep the paper's middle privacy budget.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from typing import Dict, List, Sequence, Tuple

import pytest

from repro.experiments.harness import run_comparison
from repro.experiments.report import format_accuracy_table, format_loss_curves
from repro.experiments.specs import ExperimentSpec
from repro.simulation.metrics import TrainingHistory


def bench_rounds(default: int = 15) -> int:
    return int(os.environ.get("REPRO_BENCH_ROUNDS", default))


def bench_agent_counts(default: Sequence[int] = (6, 10)) -> List[int]:
    raw = os.environ.get("REPRO_BENCH_AGENTS")
    if not raw:
        return list(default)
    return [int(part) for part in raw.split(",") if part.strip()]


def bench_epsilons(family_epsilons: Sequence[float]) -> List[float]:
    """Smallest and largest budget by default; the full sweep with REPRO_BENCH_FULL=1."""
    eps = sorted(family_epsilons)
    if os.environ.get("REPRO_BENCH_FULL"):
        return list(eps)
    return [eps[0], eps[-1]]


def run_figure_cell(spec: ExperimentSpec) -> Dict[str, TrainingHistory]:
    """Run one figure panel (all algorithms, one M, one epsilon, one topology)."""
    return run_comparison(spec)


def print_figure_panel(title: str, histories: Dict[str, TrainingHistory]) -> None:
    print()
    print("=" * 78)
    print(format_loss_curves(histories, title=title, max_rows=10))
    finals = {name: h.final_test_accuracy for name, h in histories.items()}
    print("final test accuracy: " + "  ".join(f"{k}={v:.3f}" for k, v in finals.items()))


def print_table(caption: str, table: Dict[str, Dict[Tuple[str, int], float]]) -> None:
    print()
    print("=" * 78)
    print(format_accuracy_table(table, caption=caption))


@pytest.fixture(scope="session")
def bench_config():
    """Session-wide benchmark configuration snapshot (also printed once)."""
    config = {
        "rounds": bench_rounds(),
        "agent_counts": bench_agent_counts(),
        "full_sweep": bool(os.environ.get("REPRO_BENCH_FULL")),
    }
    print(f"\n[benchmarks] configuration: {config}")
    return config
