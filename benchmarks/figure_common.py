"""Shared driver for the figure benchmarks (Figures 1–6).

Each paper figure is a 3x3 grid of panels (M in {10, 15, 20} x three privacy
budgets) showing the average training loss per round for the five
algorithms.  The benchmark drivers below regenerate a reduced grid (agent
counts and budgets configurable via environment variables, see
``benchmarks/conftest.py``) and print one loss-curve table per panel, plus a
compact summary of final losses so the ordering is visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from conftest import (
    bench_agent_counts,
    bench_epsilons,
    bench_rounds,
    print_figure_panel,
    run_figure_cell,
)

from repro.experiments.specs import cifar_like_spec, mnist_like_spec
from repro.simulation.metrics import TrainingHistory

_FAMILY_EPSILONS = {"mnist": (0.08, 0.1, 0.3), "cifar": (0.5, 0.7, 1.0)}
_FAMILY_SPEC = {"mnist": mnist_like_spec, "cifar": cifar_like_spec}


def run_figure_grid(
    family: str, topology: str, figure_number: int
) -> Dict[Tuple[int, float], Dict[str, TrainingHistory]]:
    """Run every (M, epsilon) panel of one figure and print the loss curves."""
    maker = _FAMILY_SPEC[family]
    results: Dict[Tuple[int, float], Dict[str, TrainingHistory]] = {}
    for num_agents in bench_agent_counts():
        for epsilon in bench_epsilons(_FAMILY_EPSILONS[family]):
            spec = maker(num_agents=num_agents, epsilon=epsilon, topology=topology)
            spec = spec.with_updates(num_rounds=bench_rounds())
            histories = run_figure_cell(spec)
            results[(num_agents, epsilon)] = histories
            print_figure_panel(
                f"Figure {figure_number} panel: {family}-like, {topology}, "
                f"M={num_agents}, eps={epsilon} (loss per round)",
                histories,
            )
    _print_summary(figure_number, results)
    return results


def _print_summary(
    figure_number: int, results: Dict[Tuple[int, float], Dict[str, TrainingHistory]]
) -> None:
    print()
    print(f"Figure {figure_number} summary (final average training loss per panel):")
    algorithms: List[str] = []
    for histories in results.values():
        algorithms = list(histories.keys())
        break
    header = "panel (M, eps)      " + "  ".join(f"{name:>13s}" for name in algorithms)
    print(header)
    for (num_agents, epsilon), histories in sorted(results.items()):
        row = "  ".join(f"{histories[name].final_loss():>13.3f}" for name in algorithms)
        print(f"M={num_agents:<3d} eps={epsilon:<6g}   " + row)
    wins, total, wins_at_max_eps, panels_at_max_eps = pdsl_win_stats(results)
    print(
        f"PDSL achieves the lowest final loss in {wins}/{total} panels "
        f"({wins_at_max_eps}/{panels_at_max_eps} at the largest privacy budget)"
    )


def pdsl_win_stats(
    results: Dict[Tuple[int, float], Dict[str, TrainingHistory]],
    metric: str = "loss",
) -> Tuple[int, int, int, int]:
    """Count panels where PDSL is best, overall and at the largest epsilon.

    At the reduced benchmark scale the smallest paper budgets (e.g. eps=0.08
    with a batch of ~100 samples) put every algorithm in a noise-dominated
    regime where the ordering is unstable; the paper's clean ordering is
    expected at the larger budgets, so the benches assert strictly there and
    only a majority overall.  ``metric`` selects final loss (lower is better)
    or final test accuracy (higher is better).
    """
    max_eps = max(eps for _, eps in results)
    wins = total = wins_at_max = panels_at_max = 0
    for (num_agents, epsilon), histories in results.items():
        if metric == "loss":
            best = min(h.final_loss() for h in histories.values())
            pdsl_is_best = histories["PDSL"].final_loss() <= best + 1e-12
        else:
            best = max(h.final_test_accuracy for h in histories.values())
            pdsl_is_best = histories["PDSL"].final_test_accuracy >= best - 1e-12
        total += 1
        wins += int(pdsl_is_best)
        if epsilon == max_eps:
            panels_at_max += 1
            wins_at_max += int(pdsl_is_best)
    return wins, total, wins_at_max, panels_at_max
