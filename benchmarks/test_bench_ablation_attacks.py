"""Ablation D: privacy-attack success vs. the DP mechanism.

Quantifies the defence the Gaussian mechanism buys: the gradient-inversion
attack of ``repro.attacks`` is mounted against a victim gradient released
raw, and released through the clipping + Gaussian-noise pipeline at the
paper's privacy budgets.  Reported metric: reconstruction mean-squared error
of the victim inputs (higher = better privacy).
"""

import numpy as np

from repro.attacks import gradient_inversion_attack
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.privacy import GaussianMechanism, gaussian_sigma


EPSILONS = (1.0, 0.3, 0.08)
BATCH_SIZE = 4


def run_attack_ablation():
    data = make_classification_dataset(200, num_features=8, num_classes=4, cluster_std=0.6, seed=0)
    model = make_linear_classifier(8, 4, seed=0)
    params = model.get_flat_params()
    victim = data.subset(np.arange(BATCH_SIZE))
    _, gradient = model.loss_and_gradient(victim.inputs, victim.labels, params=params)

    def attack(observed):
        result = gradient_inversion_attack(
            model, observed, params, batch_size=BATCH_SIZE, input_shape=victim.input_shape,
            num_classes=4, iterations=150, rng=np.random.default_rng(2),
        )
        return result.error_against(victim.inputs)

    errors = {"raw": attack(gradient)}
    for epsilon in EPSILONS:
        sigma = gaussian_sigma(epsilon, 1e-5, sensitivity=2.0 / BATCH_SIZE)
        mechanism = GaussianMechanism(sigma, np.random.default_rng(3), clip_threshold=1.0)
        errors[f"eps={epsilon}"] = attack(mechanism.privatize(gradient))

    print()
    print("=" * 78)
    print("Ablation D: gradient-inversion reconstruction error vs privacy budget")
    for label, error in errors.items():
        print(f"  {label:>10s}  reconstruction MSE = {error:.3f}")
    return errors


def test_bench_ablation_privacy_attacks(benchmark, bench_config):
    errors = benchmark.pedantic(run_attack_ablation, rounds=1, iterations=1)
    # The DP releases must not reconstruct better than the raw release, and the
    # strictest budget should be at least as private as the loosest one.
    assert min(errors[f"eps={eps}"] for eps in EPSILONS) >= errors["raw"] * 0.8
    assert errors["eps=0.08"] >= errors["eps=1.0"] * 0.8
