"""Ablation B: Monte-Carlo Shapley sample count R (Algorithm 2).

The paper replaces the exact Shapley value (eq. 18) with permutation
sampling to keep each round tractable.  This ablation measures both sides of
that trade-off on a fixed characteristic function:

* estimation error of the Monte-Carlo estimate vs. the exact value as R grows;
* wall-clock cost of one PDSL round as R grows (the pytest-benchmark timing).
"""

import numpy as np
from conftest import bench_rounds

from repro.experiments.harness import build_experiment_components, build_algorithm
from repro.experiments.specs import fast_spec
from repro.game.cooperative import CooperativeGame
from repro.game.shapley import exact_shapley, monte_carlo_shapley


def shapley_error_curve():
    """Mean absolute estimation error vs. R for a synthetic 6-player game."""
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.0, 1.0, size=6)

    def value(coalition):
        base = sum(weights[p] for p in coalition)
        synergy = 0.2 * len(coalition) ** 1.5
        return float(base + synergy)

    game = CooperativeGame(list(range(6)), value)
    exact = exact_shapley(game)
    errors = {}
    for r in (1, 2, 4, 8, 16, 32):
        estimate = monte_carlo_shapley(game, r, np.random.default_rng(1))
        errors[r] = float(np.mean([abs(estimate[p] - exact[p]) for p in range(6)]))
    return errors


def pdsl_round_cost(shapley_permutations: int) -> float:
    """Seconds for one PDSL round at the given R (coarse, single measurement)."""
    import time

    spec = fast_spec(num_agents=8, epsilon=0.3, num_rounds=1, algorithms=["PDSL"], seed=5)
    spec = spec.with_updates(shapley_permutations=shapley_permutations)
    components = build_experiment_components(spec)
    algorithm = build_algorithm("PDSL", components)
    start = time.perf_counter()
    algorithm.run_round()
    return time.perf_counter() - start


def run_mc_shapley_ablation():
    errors = shapley_error_curve()
    costs = {r: pdsl_round_cost(r) for r in (1, 4, 16)}
    print()
    print("=" * 78)
    print("Ablation B: Monte-Carlo Shapley sample count R")
    print("estimation error vs exact (6-player synthetic game):")
    for r, err in errors.items():
        print(f"  R={r:<3d} mean |error| = {err:.4f}")
    print("cost of one PDSL round (M=8, fully connected):")
    for r, cost in costs.items():
        print(f"  R={r:<3d} {cost * 1000:.1f} ms")
    return errors, costs


def test_bench_ablation_mc_shapley(benchmark, bench_config):
    errors, costs = benchmark.pedantic(run_mc_shapley_ablation, rounds=1, iterations=1)
    # More permutations -> better estimate (compare the extremes).
    assert errors[32] <= errors[1] + 1e-9
    # More permutations -> more expensive rounds.
    assert costs[16] >= costs[1] * 0.8
