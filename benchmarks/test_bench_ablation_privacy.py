"""Ablation C: privacy budget sweep and the Theorem 1 noise floor.

Two artefacts are produced:

* the privacy–utility trade-off curve for PDSL (final accuracy vs. epsilon),
  mirroring the trend across the columns of Tables I–II;
* the Theorem 1 sigma lower bound evaluated for each paper topology, showing
  how the bound scales with the privacy budget and the topology's minimum
  mixing weight.
"""

from conftest import bench_rounds

from repro.analysis.privacy_bounds import theorem1_sigma_bound
from repro.experiments.harness import run_comparison
from repro.experiments.specs import fast_spec
from repro.topology.graphs import bipartite_graph, fully_connected_graph, ring_graph


EPSILONS = (0.08, 0.3, 1.0)


def run_privacy_ablation():
    accuracies = {}
    for epsilon in EPSILONS:
        spec = fast_spec(num_agents=6, epsilon=epsilon, num_rounds=bench_rounds(), algorithms=["PDSL"], seed=23)
        accuracies[epsilon] = run_comparison(spec)["PDSL"].final_test_accuracy

    bounds = {}
    for topology in (fully_connected_graph(10), bipartite_graph(10), ring_graph(10)):
        bounds[topology.name] = {
            epsilon: theorem1_sigma_bound(topology, epsilon, 1e-5, clip_threshold=1.0)
            for epsilon in EPSILONS
        }

    print()
    print("=" * 78)
    print("Ablation C: privacy budget sweep (PDSL, M=6, fully connected)")
    for epsilon, accuracy in accuracies.items():
        print(f"  eps={epsilon:<5g} final test accuracy = {accuracy:.3f}")
    print("Theorem 1 sigma lower bound (C=1, delta=1e-5, M=10):")
    for name, row in bounds.items():
        rendered = "  ".join(f"eps={eps:g}: {sigma:8.1f}" for eps, sigma in row.items())
        print(f"  {name:>16s}  {rendered}")
    return accuracies, bounds


def test_bench_ablation_privacy_sweep(benchmark, bench_config):
    accuracies, bounds = benchmark.pedantic(run_privacy_ablation, rounds=1, iterations=1)
    # Larger budget (less noise) should not hurt utility.
    assert accuracies[1.0] >= accuracies[0.08] - 0.05
    # The Theorem 1 bound decreases as epsilon grows, for every topology.
    for row in bounds.values():
        assert row[0.08] > row[0.3] > row[1.0]
    # The bound grows as omega_min shrinks: the fully connected graph (where
    # every weight is 1/M, the smallest in this comparison) needs the most
    # noise per Theorem 1, the ring (weights 1/3) the least.
    assert bounds["fully_connected"][0.3] >= bounds["bipartite"][0.3] >= bounds["ring"][0.3]
