"""Ablation A: what does the Shapley weighting actually buy?

DESIGN.md calls out the Shapley-weighted aggregation (eqs. 18–21) as PDSL's
central design choice.  This ablation compares, under identical data,
topology and privacy noise:

* **PDSL** — Shapley-weighted aggregation of the perturbed cross-gradients;
* **uniform cross-gradient averaging** — DP-CGA, which aggregates the same
  perturbed cross-gradients without contribution weighting;
* **no cross-gradients at all** — DMSGD, a momentum gossip baseline that only
  uses the local perturbed gradient.

The expected ordering (PDSL >= DP-CGA >= DMSGD in accuracy) isolates the
benefit of (a) cross-gradient information and (b) Shapley weighting on top.
"""

from conftest import bench_rounds

from repro.experiments.harness import build_experiment_components, run_single
from repro.experiments.specs import fast_spec


def run_shapley_ablation():
    spec = fast_spec(num_agents=8, epsilon=0.3, num_rounds=bench_rounds(), seed=17)
    components = build_experiment_components(spec)
    results = {}
    for name in ("PDSL", "DP-CGA", "DMSGD"):
        results[name] = run_single(name, components)
    print()
    print("=" * 78)
    print("Ablation A: Shapley weighting vs uniform cross-gradients vs local-only")
    print(f"{'variant':>10s} {'final loss':>12s} {'test accuracy':>15s}")
    for name, history in results.items():
        print(f"{name:>10s} {history.final_loss():>12.3f} {history.final_test_accuracy:>15.3f}")
    return results


def test_bench_ablation_shapley_weighting(benchmark, bench_config):
    results = benchmark.pedantic(run_shapley_ablation, rounds=1, iterations=1)
    accuracy = {name: h.final_test_accuracy for name, h in results.items()}
    # Shapley-weighted aggregation should not lose to uniform averaging of the
    # same information, and cross-gradient methods should beat local-only.
    assert accuracy["PDSL"] >= accuracy["DP-CGA"] - 0.02
    assert accuracy["PDSL"] >= accuracy["DMSGD"] - 0.02
