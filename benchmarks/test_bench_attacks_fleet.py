"""Micro-benchmark: fleet-scale attack engines vs their per-victim loops.

Thin pytest wrappers over the registered ``attacks/inversion-fleet`` and
``attacks/membership`` suites (:class:`repro.bench.suites.FleetInversionSuite`,
:class:`repro.bench.suites.MembershipFleetSuite`): one stacked fleet attack
vs the sequential per-victim loop it replaces, with bit-identity between the
two timed runs asserted inside the suites themselves.  The ≥10x inversion
speedup floor at 256 victims routes through the shared guard (full scale +
CPUs + signal).

Environment knobs (shared with ``repro-bench``):

* ``REPRO_BENCH_ATTACK_AGENTS`` — victims attacked at once (default 256);
* ``REPRO_BENCH_ATTACK_ITERS`` — SPSA iterations per attack (default 25);
* ``REPRO_BENCH_ATTACK_BATCH`` — victim batch size (default 4);
* ``REPRO_BENCH_MEMBER_ROWS`` — (agent, checkpoint) parameter rows
  (default 1024);
* ``REPRO_BENCH_MEMBER_SAMPLES`` — examples per population (default 32).
"""

from __future__ import annotations

from repro.bench.registry import assert_floor, run_benchmark
from repro.bench.suites import FleetInversionSuite, MembershipFleetSuite


def test_bench_fleet_inversion_speedup():
    suite = FleetInversionSuite()
    result = run_benchmark(suite)

    metrics = result.metrics
    print()
    print("=" * 72)
    print("fleet gradient inversion: one stacked run vs the per-victim loop")
    print(
        f"{'victims':>8s} {'iters':>6s} {'sequential':>12s} {'fleet':>12s} "
        f"{'speedup':>8s}"
    )
    print(
        f"{suite.agents:>8d} {suite.iterations:>6d} "
        f"{metrics['sequential_s']:>11.3f}s {metrics['fleet_s']:>11.3f}s "
        f"{metrics['speedup']:>7.1f}x"
    )

    # The ≥10x fleet-scale floor, armed through the shared guard.
    assert_floor(result)


def test_bench_membership_fleet_speedup():
    suite = MembershipFleetSuite()
    result = run_benchmark(suite)

    metrics = result.metrics
    print()
    print("=" * 72)
    print("fleet membership scoring: two stacked passes vs per-row calls")
    print(
        f"{'rows':>8s} {'samples':>8s} {'sequential':>12s} {'fleet':>12s} "
        f"{'speedup':>8s}"
    )
    print(
        f"{suite.rows:>8d} {suite.samples:>8d} "
        f"{metrics['sequential_s']:>11.4f}s {metrics['fleet_s']:>11.4f}s "
        f"{metrics['speedup']:>7.1f}x"
    )

    assert_floor(result)
