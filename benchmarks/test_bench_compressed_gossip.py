"""Micro-benchmark: dense vs compressed gossip wire bytes at fleet scale.

Thin pytest wrapper over the registered ``gossip/compressed`` suite
(:class:`repro.bench.suites.CompressedGossipSuite`): vectorized DP-DPSGD
rounds on a ring fleet under the dense, top-k (``k = d // 10``) and int8
codecs, with the identity codec asserted bit-identical to the uncompressed
path inside the suite itself.  The ≥4x bytes-reduction floor at 1024 agents
routes through the shared guard (full scale + CPUs + signal).

Environment knobs (shared with ``repro-bench``):

* ``REPRO_BENCH_COMPRESS_AGENTS`` — comma-separated agent counts
  (default "1024");
* ``REPRO_BENCH_COMPRESS_ROUNDS`` — timed rounds per variant (default 2).
"""

from __future__ import annotations

from repro.bench.registry import assert_floor, run_benchmark
from repro.bench.suites import CompressedGossipSuite


def test_bench_compressed_gossip_bytes_reduction():
    suite = CompressedGossipSuite()
    result = run_benchmark(suite)

    metrics = result.metrics
    print()
    print("=" * 84)
    print("compressed gossip micro-benchmark: network bytes per round (ring)")
    print(
        f"{'agents':>8s} {'dense B':>14s} {'topk B':>14s} {'int8 B':>14s} "
        f"{'topk redux':>11s} {'int8 redux':>11s}"
    )
    for num_agents in suite.agent_counts:
        print(
            f"{num_agents:>8d} {metrics[f'dense_bytes@{num_agents}']:>14,.0f} "
            f"{metrics[f'topk_bytes@{num_agents}']:>14,.0f} "
            f"{metrics[f'int8_bytes@{num_agents}']:>14,.0f} "
            f"{metrics[f'bytes_reduction@{num_agents}']:>10.1f}x "
            f"{metrics[f'bytes_reduction_int8@{num_agents}']:>10.1f}x"
        )

    # The fleet-scale bytes-reduction floor, armed through the shared guard.
    assert_floor(result)
