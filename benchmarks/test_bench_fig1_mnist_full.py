"""Figure 1: MNIST-like loss curves on fully connected graphs.

Paper reference: Fig. 1 — average training loss vs. communication round for
DP-DPSGD, DP-CGA, MUFFLIATO, DP-NET-FLEET and PDSL on fully connected
topologies, with M in {10, 15, 20} and epsilon in {0.08, 0.1, 0.3}.
"""

from figure_common import pdsl_win_stats, run_figure_grid


def test_bench_figure1_mnist_fully_connected(benchmark, bench_config):
    results = benchmark.pedantic(
        lambda: run_figure_grid("mnist", "fully_connected", figure_number=1),
        rounds=1,
        iterations=1,
    )
    wins, total, wins_at_max, panels_at_max = pdsl_win_stats(results, metric="loss")
    # Paper shape: PDSL attains the lowest final loss.  At the reduced
    # benchmark scale we require this strictly at the largest privacy budget
    # and in a majority of panels overall (the smallest budgets are
    # noise-dominated for every algorithm, see EXPERIMENTS.md).
    assert wins_at_max == panels_at_max
    assert wins >= total / 2
