"""Figure 3: MNIST-like loss curves on ring graphs.

Paper reference: Fig. 3 — same grid as Fig. 1 but over the ring topology,
the sparsest communication graph in the evaluation.
"""

from figure_common import pdsl_win_stats, run_figure_grid


def test_bench_figure3_mnist_ring(benchmark, bench_config):
    results = benchmark.pedantic(
        lambda: run_figure_grid("mnist", "ring", figure_number=3),
        rounds=1,
        iterations=1,
    )
    wins, total, wins_at_max, panels_at_max = pdsl_win_stats(results, metric="loss")
    # Ring topology: the paper reports PDSL still converging to the lowest
    # loss in most panels; assert a majority overall and at the largest budget.
    assert wins_at_max >= panels_at_max / 2
    assert wins >= total / 2
