"""Figure 4: CIFAR-like loss curves on fully connected graphs.

Paper reference: Fig. 4 — average training loss vs. round on fully connected
topologies for the CIFAR-10 experiment family (epsilon in {0.5, 0.7, 1.0},
momentum 0.7).
"""

from figure_common import pdsl_win_stats, run_figure_grid


def test_bench_figure4_cifar_fully_connected(benchmark, bench_config):
    results = benchmark.pedantic(
        lambda: run_figure_grid("cifar", "fully_connected", figure_number=4),
        rounds=1,
        iterations=1,
    )
    wins, total, wins_at_max, panels_at_max = pdsl_win_stats(results, metric="loss")
    # Paper shape: PDSL attains the lowest final loss.  At the reduced
    # benchmark scale we require this strictly at the largest privacy budget
    # and in a majority of panels overall (the smallest budgets are
    # noise-dominated for every algorithm, see EXPERIMENTS.md).
    assert wins_at_max == panels_at_max
    assert wins >= total / 2
