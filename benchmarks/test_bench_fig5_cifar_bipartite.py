"""Figure 5: CIFAR-like loss curves on bipartite graphs.

Paper reference: Fig. 5 — same grid as Fig. 4 over the complete bipartite
topology.
"""

from figure_common import pdsl_win_stats, run_figure_grid


def test_bench_figure5_cifar_bipartite(benchmark, bench_config):
    results = benchmark.pedantic(
        lambda: run_figure_grid("cifar", "bipartite", figure_number=5),
        rounds=1,
        iterations=1,
    )
    wins, total, wins_at_max, panels_at_max = pdsl_win_stats(results, metric="loss")
    # Paper shape: PDSL attains the lowest final loss.  At the reduced
    # benchmark scale we require this strictly at the largest privacy budget
    # and in a majority of panels overall (the smallest budgets are
    # noise-dominated for every algorithm, see EXPERIMENTS.md).
    assert wins_at_max == panels_at_max
    assert wins >= total / 2
