"""Figure 6: CIFAR-like loss curves on ring graphs.

Paper reference: Fig. 6 — same grid as Fig. 4 over the ring topology.  The
paper notes DP-NET-FLEET shows comparable convergence here while its test
accuracy stays below PDSL's; the benchmark therefore asserts on accuracy
ordering rather than final loss for this figure.
"""

from figure_common import pdsl_win_stats, run_figure_grid


def test_bench_figure6_cifar_ring(benchmark, bench_config):
    results = benchmark.pedantic(
        lambda: run_figure_grid("cifar", "ring", figure_number=6),
        rounds=1,
        iterations=1,
    )
    wins, total, wins_at_max, panels_at_max = pdsl_win_stats(results, metric="accuracy")
    # Fig. 6: the paper notes DP-NET-FLEET matches PDSL's loss curve on rings
    # while PDSL keeps the higher test accuracy — assert on accuracy instead.
    assert wins_at_max >= panels_at_max / 2
    assert wins >= total / 2
