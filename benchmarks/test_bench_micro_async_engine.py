"""Micro-benchmark: the event-driven time model's overhead and throughput.

Thin pytest wrapper over the registered ``engine/async-round`` suite
(:class:`repro.bench.suites.AsyncRoundSuite`): barrier-mode rounds (timing
simulation on top of the unchanged synchronous numerics — bit-identity to
the bare engine is asserted inside the suite) and genuine async rounds
(per-agent clocks, gossip on arrival) on a heterogeneous log-normal trace
fleet, reporting events processed per second and the simulated-vs-real
time ratio.

Environment knobs (shared with ``repro-bench``):

* ``REPRO_BENCH_ASYNC_AGENTS`` — comma-separated agent counts
  (default "4096");
* ``REPRO_BENCH_ASYNC_ROUNDS`` — timed rounds per measurement (default 3).
"""

from __future__ import annotations

from repro.bench.registry import assert_floor, run_benchmark
from repro.bench.suites import AsyncRoundSuite


def test_bench_micro_async_engine():
    suite = AsyncRoundSuite()
    result = run_benchmark(suite)
    metrics = result.metrics

    print()
    print("=" * 84)
    print("event-driven engine micro-benchmark: seconds per round")
    print(
        f"{'agents':>8s} {'bare':>10s} {'barrier':>10s} {'overhead':>9s} "
        f"{'async':>10s} {'events/s':>12s} {'sim/real':>9s} {'util':>6s}"
    )
    for num_agents in suite.agent_counts:
        print(
            f"{num_agents:>8d} {metrics[f'bare_s@{num_agents}']:>10.5f} "
            f"{metrics[f'barrier_s@{num_agents}']:>10.5f} "
            f"{metrics[f'barrier_overhead@{num_agents}']:>8.2f}x "
            f"{metrics[f'async_s@{num_agents}']:>10.5f} "
            f"{metrics[f'async_events_per_s@{num_agents}']:>12.1f} "
            f"{metrics[f'sim_real_ratio@{num_agents}']:>8.1f}x "
            f"{metrics[f'utilization@{num_agents}']:>6.3f}"
        )

    assert metrics["async_events_per_s"] > 0
    assert metrics["sim_real_ratio"] > 0
    assert_floor(result)
