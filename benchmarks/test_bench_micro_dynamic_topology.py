"""Micro-benchmark: per-round overhead of a dynamic-topology schedule.

Thin pytest wrapper over the registered ``topology/dynamic-cache`` suite
(:class:`repro.bench.suites.DynamicTopologyCacheSuite`): the snapshot LRU
cache vs a naive rebuild on the same round sequence, plus the fully-dynamic
worst case (fresh straggler mask every round, every round a genuine cache
miss).  Cache bookkeeping (misses = ceil(rounds / period)) is asserted
inside the suite; the ≥5x floor at N = 1024 routes through the shared guard.

Environment knobs (shared with ``repro-bench``):

* ``REPRO_BENCH_DYNTOPO_AGENTS`` — comma-separated fleet sizes
  (default "256,1024");
* ``REPRO_BENCH_DYNTOPO_ROUNDS`` — rounds timed per measurement
  (default 60);
* ``REPRO_BENCH_DYNTOPO_PERIOD`` — rewire period (default 20).
"""

from __future__ import annotations

from repro.bench.registry import assert_floor, run_benchmark
from repro.bench.suites import DynamicTopologyCacheSuite


def test_bench_micro_dynamic_topology_cache_speedup():
    suite = DynamicTopologyCacheSuite()
    result = run_benchmark(suite)

    print()
    print("=" * 78)
    print(
        f"dynamic-topology micro-benchmark: seconds per operator_at(t) "
        f"(ring, rewire every {suite.period} rounds, {suite.rounds} rounds timed)"
    )
    print(
        f"{'agents':>8s} {'cached':>12s} {'naive rebuild':>14s} "
        f"{'speedup':>9s} {'all-miss (stragglers)':>22s}"
    )
    for num_agents in suite.agent_counts:
        metrics = result.metrics
        print(
            f"{num_agents:>8d} {metrics[f'cached_s@{num_agents}']:>12.3e} "
            f"{metrics[f'naive_s@{num_agents}']:>14.3e} "
            f"{metrics[f'speedup@{num_agents}']:>8.1f}x "
            f"{metrics[f'allmiss_s@{num_agents}']:>22.3e}"
        )

    assert_floor(result)
