"""Micro-benchmark: per-round overhead of a dynamic-topology schedule.

A rewiring schedule holds each graph for ``rewire_every`` rounds, so the
snapshot LRU cache should make the steady-state per-round cost of
``operator_at(t)`` a dictionary lookup, while a naive implementation would
re-run graph assembly + Metropolis–Hastings weighting + validation +
operator construction every round.  This benchmark times both against the
same round sequence on a ring at N in {256, 1024} and asserts the cached
path is at least 5x cheaper per round at N = 1024 — the headroom that makes
per-round topology consultation affordable inside the training loop.

Also printed (unasserted): the fully-dynamic worst case (fresh straggler
mask every round, so every round is a genuine cache miss), i.e. the price
of actually *changing* the graph each round rather than consulting it.

Environment knobs:

* ``REPRO_BENCH_DYNTOPO_AGENTS`` — comma-separated fleet sizes
  (default "256,1024");
* ``REPRO_BENCH_DYNTOPO_ROUNDS`` — rounds timed per measurement
  (default 60);
* ``REPRO_BENCH_DYNTOPO_PERIOD`` — rewire period (default 20).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

from repro.topology.graphs import ring_graph
from repro.topology.schedule import (
    DynamicTopologySchedule,
    periodic_rewiring_schedule,
    straggler_schedule,
)

SPEEDUP_FLOOR_AT_1024 = 5.0


def agent_counts() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_DYNTOPO_AGENTS", "256,1024")
    return [int(part) for part in raw.split(",") if part.strip()]


def timed_rounds() -> int:
    return max(2, int(os.environ.get("REPRO_BENCH_DYNTOPO_ROUNDS", 60)))


def rewire_period() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_DYNTOPO_PERIOD", 20)))


def seconds_per_round(schedule: DynamicTopologySchedule, rounds: int) -> float:
    start = time.perf_counter()
    for t in range(rounds):
        schedule.operator_at(t)
    return (time.perf_counter() - start) / rounds


class NaiveRebuildSchedule(DynamicTopologySchedule):
    """The same schedule semantics with the snapshot cache defeated.

    Every ``topology_at`` call rebuilds the round's graph, mixing matrix and
    operator from scratch — what the engine would pay without the LRU.
    """

    def topology_at(self, round_index: int):
        return self._build(self._key_at(round_index))


def test_bench_micro_dynamic_topology_cache_speedup():
    rounds = timed_rounds()
    period = rewire_period()
    results: Dict[int, Dict[str, float]] = {}

    for num_agents in agent_counts():
        base = ring_graph(num_agents)
        cached = periodic_rewiring_schedule(base, rewire_every=period, seed=0)
        naive = NaiveRebuildSchedule(base, rewire_every=period, seed=0)
        worst_case = straggler_schedule(base, straggler_fraction=0.1, seed=0)

        # Warm-up: prime allocators and the scipy/networkx code paths on a
        # throwaway schedule so neither measured variant pays cold-start
        # costs for the other.
        seconds_per_round(
            NaiveRebuildSchedule(base, rewire_every=1, seed=99), min(rounds, 5)
        )

        cached_time = seconds_per_round(cached, rounds)
        naive_time = seconds_per_round(naive, rounds)
        worst_time = seconds_per_round(worst_case, rounds)
        # Epochs are visited contiguously, so the cache builds each distinct
        # graph exactly once: misses = ceil(rounds / period).
        info = cached.cache_info()
        assert info["misses"] == -(-rounds // period)
        assert info["hits"] + info["misses"] == rounds
        results[num_agents] = {
            "cached": cached_time,
            "naive": naive_time,
            "worst": worst_time,
            "speedup": naive_time / cached_time,
        }

    print()
    print("=" * 78)
    print(
        f"dynamic-topology micro-benchmark: seconds per operator_at(t) "
        f"(ring, rewire every {period} rounds, {rounds} rounds timed)"
    )
    print(
        f"{'agents':>8s} {'cached':>12s} {'naive rebuild':>14s} "
        f"{'speedup':>9s} {'all-miss (stragglers)':>22s}"
    )
    for num_agents, row in results.items():
        print(
            f"{num_agents:>8d} {row['cached']:>12.3e} {row['naive']:>14.3e} "
            f"{row['speedup']:>8.1f}x {row['worst']:>22.3e}"
        )

    for num_agents, row in results.items():
        if num_agents >= 1024:
            assert row["speedup"] >= SPEEDUP_FLOOR_AT_1024, (
                f"operator cache speedup {row['speedup']:.1f}x at "
                f"N={num_agents} fell below the {SPEEDUP_FLOOR_AT_1024}x floor"
            )
