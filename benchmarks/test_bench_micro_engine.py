"""Micro-benchmark: loop vs vectorized engine at increasing agent counts.

Times one DP-DPSGD communication round under both execution backends on the
synthetic classification dataset at N in {16, 64, 256} agents (fully
connected topology, linear model).  The loop backend routes every exchange
through the mailbox network and steps agents one at a time; the vectorized
backend batches the fleet into one ``(N, d)`` state matrix, evaluates all
gradients with one stacked pass and performs gossip as a single ``W @ X``
multiply.  The speedup is asserted to be at least 5x at 256 agents — the
scaling headroom the vectorized engine exists to provide.

Environment knobs:

* ``REPRO_BENCH_ENGINE_AGENTS`` — comma-separated agent counts
  (default "16,64,256");
* ``REPRO_BENCH_ENGINE_ROUNDS`` — timed rounds per measurement (default 2).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np

from repro.baselines import DPDPSGD
from repro.core.config import AlgorithmConfig
from repro.data.partition import partition_iid
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.topology.graphs import fully_connected_graph

SPEEDUP_FLOOR_AT_256 = 5.0


def engine_agent_counts() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_ENGINE_AGENTS", "16,64,256")
    return [int(part) for part in raw.split(",") if part.strip()]


def timed_rounds() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_ENGINE_ROUNDS", 2)))


def build(num_agents: int, backend: str) -> DPDPSGD:
    data = make_classification_dataset(
        num_samples=max(2048, 8 * num_agents),
        num_features=16,
        num_classes=4,
        cluster_std=1.0,
        seed=0,
    )
    shards = partition_iid(data, num_agents, np.random.default_rng(0)).shards
    topology = fully_connected_graph(num_agents)
    model = make_linear_classifier(16, 4, seed=0)
    config = AlgorithmConfig(
        learning_rate=0.05,
        sigma=0.5,
        clip_threshold=1.0,
        batch_size=8,
        seed=0,
        backend=backend,
    )
    return DPDPSGD(model, topology, shards, config)


def seconds_per_round(algorithm: DPDPSGD, rounds: int) -> float:
    algorithm.run_round()  # warm-up: JIT-free but primes caches / allocators
    start = time.perf_counter()
    for _ in range(rounds):
        algorithm.run_round()
    return (time.perf_counter() - start) / rounds


def test_bench_micro_engine_speedup():
    rounds = timed_rounds()
    results: Dict[int, Dict[str, float]] = {}
    for num_agents in engine_agent_counts():
        loop_time = seconds_per_round(build(num_agents, "loop"), rounds)
        vec_time = seconds_per_round(build(num_agents, "vectorized"), rounds)
        results[num_agents] = {
            "loop": loop_time,
            "vectorized": vec_time,
            "speedup": loop_time / vec_time,
        }

    print()
    print("=" * 66)
    print("engine micro-benchmark: seconds per DP-DPSGD round (full topology)")
    print(f"{'agents':>8s} {'loop':>12s} {'vectorized':>12s} {'speedup':>10s}")
    for num_agents, row in sorted(results.items()):
        print(
            f"{num_agents:>8d} {row['loop']:>12.5f} {row['vectorized']:>12.5f} "
            f"{row['speedup']:>9.1f}x"
        )

    # Only the large-N speedup is asserted: at small N the two backends are
    # within scheduler noise of each other on a loaded machine, and a
    # wall-clock assertion there would make the suite flaky.
    largest = max(results)
    if largest >= 256:
        assert results[largest]["speedup"] >= SPEEDUP_FLOOR_AT_256, (
            f"expected >= {SPEEDUP_FLOOR_AT_256}x speedup at {largest} agents, "
            f"got {results[largest]['speedup']:.1f}x"
        )


def test_bench_micro_engine_backends_agree():
    """The benchmark is only meaningful if both backends run the same algorithm."""
    loop_alg = build(16, "loop")
    vec_alg = build(16, "vectorized")
    for _ in range(2):
        loop_alg.run_round()
        vec_alg.run_round()
    np.testing.assert_allclose(loop_alg.state, vec_alg.state, rtol=1e-9, atol=1e-12)
    assert loop_alg.network.messages_sent == vec_alg.network.messages_sent
