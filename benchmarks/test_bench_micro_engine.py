"""Micro-benchmark: loop vs vectorized engine at increasing agent counts.

Thin pytest wrapper over the registered ``engine/round`` suite
(:class:`repro.bench.suites.EngineRoundSuite`) — the same suite object
``repro-bench run`` executes, so the pytest and CLI surfaces can never
drift apart.  The speedup floor (≥5x at 256 agents) routes through the
shared guard in :mod:`repro.bench.guard`: it arms only at full scale, with
≥2 CPUs, and with enough loop-side signal to trust the ratio.

Environment knobs (shared with ``repro-bench``):

* ``REPRO_BENCH_ENGINE_AGENTS`` — comma-separated agent counts
  (default "16,64,256");
* ``REPRO_BENCH_ENGINE_ROUNDS`` — timed rounds per measurement (default 2).
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import assert_floor, run_benchmark
from repro.bench.suites import EngineRoundSuite


def test_bench_micro_engine_speedup():
    suite = EngineRoundSuite()
    result = run_benchmark(suite)

    print()
    print("=" * 66)
    print("engine micro-benchmark: seconds per DP-DPSGD round (full topology)")
    print(f"{'agents':>8s} {'loop':>12s} {'vectorized':>12s} {'speedup':>10s}")
    for num_agents in sorted(suite.agent_counts):
        print(
            f"{num_agents:>8d} {result.metrics[f'loop_s@{num_agents}']:>12.5f} "
            f"{result.metrics[f'vectorized_s@{num_agents}']:>12.5f} "
            f"{result.metrics[f'speedup@{num_agents}']:>9.1f}x"
        )

    # Only the large-N speedup is asserted, and only when the shared guard
    # arms it (full scale, enough CPUs, enough loop-side signal) — at small
    # N or on a starved machine the ratio is scheduler noise.
    assert_floor(result)


def test_bench_micro_engine_backends_agree():
    """The benchmark is only meaningful if both backends run the same algorithm."""
    loop_alg = EngineRoundSuite.build(16, "loop")
    vec_alg = EngineRoundSuite.build(16, "vectorized")
    for _ in range(2):
        loop_alg.run_round()
        vec_alg.run_round()
    np.testing.assert_allclose(loop_alg.state, vec_alg.state, rtol=1e-9, atol=1e-12)
    assert loop_alg.network.messages_sent == vec_alg.network.messages_sent
