"""Micro-benchmark: process-pool grid execution vs serial execution.

The orchestrator's pitch is that a comparison grid — independent,
seed-isolated jobs — parallelises embarrassingly: on a machine with ``W``
idle cores, a ``W``-worker pool should cut the wall clock by close to
``W``x.  This benchmark runs the same fresh grid twice (serial store,
pooled store), asserts the results are identical cell by cell
(placement on workers must never change a trajectory), and times both.

The speedup floor (>= 2x with 4 workers on an 8-job grid) only *arms* when
(a) the machine actually has >= 4 CPUs available — on a 1-2 core CI runner
the pool cannot beat serial execution — and (b) the serial pass is long
enough (>= 1s) for the parallel work to amortize pool startup/dispatch
overhead; at the reduced scales the CI smoke step uses, per-job work is
milliseconds and the ratio is reported without being asserted, exactly
like the other micro-benchmarks only arm their floors at full scale.

Also measured (unasserted): the warm second pass over the serial store —
every cell served from ``history.json`` without training — i.e. the price
of re-entering a finished campaign.

Environment knobs:

* ``REPRO_BENCH_ORCH_JOBS``    — grid size (default 8 = 2 algorithms x 4 seeds);
* ``REPRO_BENCH_ORCH_ROUNDS``  — rounds per job (default 150);
* ``REPRO_BENCH_ORCH_AGENTS``  — fleet size per job (default 12);
* ``REPRO_BENCH_ORCH_WORKERS`` — pool size (default 4).
"""

from __future__ import annotations

import os
import time

from repro.experiments.orchestrator import run_grid
from repro.experiments.specs import ExperimentGrid, fast_spec
from repro.simulation.metrics import histories_equal

SPEEDUP_FLOOR = 2.0

#: Minimum serial wall clock for the floor to arm: below this, pool
#: startup/dispatch overhead dominates and the ratio measures the
#: harness, not the orchestrator.
MIN_SERIAL_SECONDS = 1.0


def num_jobs() -> int:
    return max(2, int(os.environ.get("REPRO_BENCH_ORCH_JOBS", 8)))


def rounds_per_job() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_ORCH_ROUNDS", 150)))


def fleet_size() -> int:
    return max(2, int(os.environ.get("REPRO_BENCH_ORCH_AGENTS", 12)))


def pool_workers() -> int:
    return max(2, int(os.environ.get("REPRO_BENCH_ORCH_WORKERS", 4)))


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def build_grid() -> ExperimentGrid:
    """2 algorithms x (jobs/2) seeds: the paper's comparison shape."""
    algorithms = ["DMSGD", "DP-DPSGD"]
    seeds = list(range(7, 7 + num_jobs() // len(algorithms)))
    base = fast_spec(
        num_agents=fleet_size(),
        num_rounds=rounds_per_job(),
        algorithms=algorithms,
    )
    # Strided evaluation keeps the benchmark training-bound rather than
    # evaluation-bound, like a real sweep.
    base = base.with_updates(eval_every=max(1, rounds_per_job() // 3))
    return ExperimentGrid(base=base, algorithms=algorithms, seeds=seeds)


def test_bench_micro_orchestrator_pool_speedup(tmp_path):
    workers = pool_workers()
    cpus = available_cpus()

    serial_grid, pooled_grid = build_grid(), build_grid()
    jobs = len(serial_grid)

    started = time.perf_counter()
    serial = run_grid(serial_grid, tmp_path / "serial", workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pooled = run_grid(pooled_grid, tmp_path / "pooled", workers=workers)
    pooled_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cached = run_grid(serial_grid, tmp_path / "serial", workers=1)
    cached_seconds = time.perf_counter() - started

    # Correctness before speed: worker placement must not change any cell,
    # and the warm pass must serve the identical stored histories.
    assert [r.status for r in serial] == ["done"] * jobs
    assert [r.status for r in pooled] == ["done"] * jobs
    assert [r.status for r in cached] == ["cached"] * jobs
    for a, b in zip(serial, pooled):
        assert histories_equal(a.history, b.history)
    for a, b in zip(serial, cached):
        assert histories_equal(a.history, b.history)

    speedup = serial_seconds / pooled_seconds if pooled_seconds > 0 else float("inf")
    print()
    print(
        f"orchestrator grid: {jobs} jobs x {rounds_per_job()} rounds, "
        f"M={fleet_size()}, {workers} workers, {cpus} CPUs available"
    )
    print(
        f"  serial  {serial_seconds:8.2f}s\n"
        f"  pooled  {pooled_seconds:8.2f}s   ({speedup:5.2f}x)\n"
        f"  cached  {cached_seconds:8.2f}s   (warm store, no training)"
    )

    assert cached_seconds < serial_seconds, "cached pass should skip all training"
    if cpus >= workers and serial_seconds >= MIN_SERIAL_SECONDS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{workers}-worker pool over {jobs} jobs only reached "
            f"{speedup:.2f}x (floor {SPEEDUP_FLOOR}x with {cpus} CPUs)"
        )
    elif cpus < workers:
        print(
            f"  floor not armed: {cpus} CPU(s) < {workers} workers "
            f"(needs >= {workers} CPUs to assert >= {SPEEDUP_FLOOR}x)"
        )
    else:
        print(
            f"  floor not armed: serial pass {serial_seconds:.2f}s < "
            f"{MIN_SERIAL_SECONDS:.0f}s (reduced scale; pool overhead would "
            "dominate the ratio)"
        )
