"""Micro-benchmark: process-pool grid execution vs serial execution.

Thin pytest wrapper over the registered ``orchestrator/pool`` suite
(:class:`repro.bench.suites.OrchestratorPoolSuite`): the same fresh grid run
three ways (serial store, pooled store, warm second pass over the serial
store), with serial == pooled histories and a faster-than-training warm pass
asserted cell by cell inside the suite.  The ≥2x floor with 4 workers routes
through the shared guard — it arms only with ≥4 CPUs available and a ≥1s
serial pass, so a 1-2 core CI runner or a reduced-scale smoke run reports
the ratio without asserting it.

Environment knobs (shared with ``repro-bench``):

* ``REPRO_BENCH_ORCH_JOBS``    — grid size (default 8 = 2 algorithms x 4 seeds);
* ``REPRO_BENCH_ORCH_ROUNDS``  — rounds per job (default 150);
* ``REPRO_BENCH_ORCH_AGENTS``  — fleet size per job (default 12);
* ``REPRO_BENCH_ORCH_WORKERS`` — pool size (default 4).
"""

from __future__ import annotations

from repro.bench.guard import available_cpus
from repro.bench.registry import assert_floor, run_benchmark
from repro.bench.suites import OrchestratorPoolSuite


def test_bench_micro_orchestrator_pool_speedup():
    suite = OrchestratorPoolSuite()
    result = run_benchmark(suite)
    metrics = result.metrics

    print()
    print(
        f"orchestrator grid: {suite.jobs} jobs x {suite.rounds} rounds, "
        f"M={suite.agents}, {suite.workers} workers, {available_cpus()} CPUs "
        "available"
    )
    print(
        f"  serial  {metrics['serial_s']:8.2f}s\n"
        f"  pooled  {metrics['pooled_s']:8.2f}s   ({metrics['speedup']:5.2f}x)\n"
        f"  cached  {metrics['cached_s']:8.2f}s   (warm store, no training)"
    )

    assert_floor(result)
