"""Micro-benchmark: dense vs sparse (CSR) gossip mixing at fleet scale.

Thin pytest wrapper over the registered ``gossip/sparse`` suite
(:class:`repro.bench.suites.SparseGossipSuite`): one gossip application
``W @ X`` under both storage formats on ring and torus topologies, with a
raw-BLAS reference column and bit-identity between the kernels asserted at
every measured size inside the suite itself.  The ≥10x floor on the ring at
4096 agents routes through the shared guard (full scale + CPUs + signal).

Environment knobs (shared with ``repro-bench``):

* ``REPRO_BENCH_SPARSE_AGENTS`` — comma-separated agent counts
  (default "1024,4096"); torus cells round each count to a square grid;
* ``REPRO_BENCH_SPARSE_ROUNDS`` — timed applications per measurement
  (default 2);
* ``REPRO_BENCH_SPARSE_DIM`` — model dimension d of the mixed state
  (default 64).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.bench.registry import assert_floor, run_benchmark
from repro.bench.suites import SparseGossipSuite


def test_bench_micro_sparse_gossip_speedup():
    suite = SparseGossipSuite()
    result = run_benchmark(suite)

    labels = [
        label
        for num_agents in suite.agent_counts
        for label in suite.topology_labels(num_agents)
    ]
    print()
    print("=" * 84)
    print(
        f"sparse gossip micro-benchmark: seconds per W @ X apply "
        f"(d = {suite.dimension})"
    )
    print(
        f"{'topology':>14s} {'nnz':>10s} {'dense':>12s} {'blas-ref':>12s} "
        f"{'csr':>12s} {'speedup':>9s} {'vs blas':>9s}"
    )
    for label in labels:
        metrics = result.metrics
        print(
            f"{label:>14s} {int(metrics[f'nnz@{label}']):>10d} "
            f"{metrics[f'dense_s@{label}']:>12.5f} "
            f"{metrics[f'blas_s@{label}']:>12.5f} "
            f"{metrics[f'csr_s@{label}']:>12.5f} "
            f"{metrics[f'speedup@{label}']:>8.1f}x "
            f"{metrics[f'blas_s@{label}'] / metrics[f'csr_s@{label}']:>8.1f}x"
        )

    # The fleet-scale ring floor, armed through the shared guard only.
    assert_floor(result)


def test_bench_sparse_spectral_diagnostics_at_scale():
    """The Lanczos path keeps fleet-scale spectral gaps affordable.

    A dense eigendecomposition at N = 4096 is O(N^3) (~minutes); the sparse
    path must produce the ring's analytic gap in a small fraction of the
    benchmark budget.
    """
    from repro.topology.graphs import ring_graph
    from repro.topology.mixing import spectral_gap

    num_agents = max(SparseGossipSuite().agent_counts)
    topology = ring_graph(num_agents, sparse=True)
    start = time.perf_counter()
    gap = spectral_gap(topology.mixing_matrix)
    elapsed = time.perf_counter() - start
    analytic = 1.0 - (1.0 + 2.0 * math.cos(2.0 * math.pi / num_agents)) / 3.0
    print(
        f"\nring/{num_agents} spectral gap: {gap:.3e} "
        f"(analytic {analytic:.3e}) in {elapsed:.3f}s via eigsh"
    )
    np.testing.assert_allclose(gap, analytic, atol=1e-7)
    assert elapsed < 60.0
