"""Micro-benchmark: dense vs sparse (CSR) gossip mixing at fleet scale.

Times one gossip application ``W @ X`` under both storage formats of the
:class:`~repro.topology.mixing.MixingOperator` on ring and torus topologies
at N in {1024, 4096} agents.  The dense kernel touches all N^2 matrix
entries; the CSR kernel touches only the nnz = O(N) stored weights, so on a
ring at N = 4096 it skips ~16.7M of the ~16.7M + 12k entries and the
speedup compounds with every extra gossip step (MUFFLIATO's multi-hop
rounds, DP-NET-FLEET's model + tracking mixes).

The speedup is asserted to be at least 10x on the ring at 4096 agents — the
scaling headroom the sparse backend exists to provide.  Bit-identical
results between the two kernels are asserted at every measured size, so the
benchmark cannot silently drift into comparing different computations.

A third, unasserted column times the raw BLAS ``W @ X`` on the dense
matrix.  The dense kernel deliberately forgoes BLAS (whose blocked/FMA
accumulation would break the bit-identical contract with CSR) at a
several-fold cost, so the BLAS column is the honest "fastest possible
dense" reference — the CSR kernel must and does beat it by well over the
asserted floor too.

Environment knobs:

* ``REPRO_BENCH_SPARSE_AGENTS`` — comma-separated agent counts
  (default "1024,4096"); torus cells round each count to a square grid;
* ``REPRO_BENCH_SPARSE_ROUNDS`` — timed applications per measurement
  (default 2);
* ``REPRO_BENCH_SPARSE_DIM`` — model dimension d of the mixed state
  (default 64).
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.topology.graphs import Topology, ring_graph, torus_graph
from repro.topology.mixing import spectral_gap

SPEEDUP_FLOOR_AT_4096 = 10.0


def sparse_agent_counts() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_SPARSE_AGENTS", "1024,4096")
    return [int(part) for part in raw.split(",") if part.strip()]


def timed_rounds() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SPARSE_ROUNDS", 2)))


def state_dimension() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SPARSE_DIM", 64)))


def build_topologies(num_agents: int) -> List[Tuple[str, Topology]]:
    side = max(3, int(round(math.sqrt(num_agents))))
    return [
        (f"ring/{num_agents}", ring_graph(num_agents)),
        (f"torus/{side * side}", torus_graph(side)),
    ]


def seconds_per_apply(apply, state: np.ndarray, rounds: int) -> float:
    apply(state)  # warm-up: primes caches / allocators
    start = time.perf_counter()
    for _ in range(rounds):
        apply(state)
    return (time.perf_counter() - start) / rounds


def test_bench_micro_sparse_gossip_speedup():
    rounds = timed_rounds()
    dimension = state_dimension()
    results: Dict[str, Dict[str, float]] = {}
    ring_speedup_by_size: Dict[int, float] = {}

    for num_agents in sparse_agent_counts():
        for label, topology in build_topologies(num_agents):
            dense_op = topology.mixing_operator("dense")
            csr_op = topology.mixing_operator("csr")
            dense_w = dense_op.toarray()
            rng = np.random.default_rng(0)
            state = rng.normal(size=(topology.num_agents, dimension))

            # The benchmark is only meaningful if both kernels compute the
            # same gossip step — and the sparse backend's contract is that
            # they agree bit for bit.
            np.testing.assert_array_equal(dense_op.apply(state), csr_op.apply(state))

            dense_time = seconds_per_apply(dense_op.apply, state, rounds)
            csr_time = seconds_per_apply(csr_op.apply, state, rounds)
            blas_time = seconds_per_apply(lambda x: dense_w @ x, state, rounds)
            results[label] = {
                "nnz": csr_op.nnz,
                "dense": dense_time,
                "blas": blas_time,
                "csr": csr_time,
                "speedup": dense_time / csr_time,
                "speedup_blas": blas_time / csr_time,
            }
            if label.startswith("ring/"):
                ring_speedup_by_size[num_agents] = dense_time / csr_time

    print()
    print("=" * 84)
    print(
        f"sparse gossip micro-benchmark: seconds per W @ X apply (d = {dimension})"
    )
    print(
        f"{'topology':>14s} {'nnz':>10s} {'dense':>12s} {'blas-ref':>12s} "
        f"{'csr':>12s} {'speedup':>9s} {'vs blas':>9s}"
    )
    for label, row in results.items():
        print(
            f"{label:>14s} {int(row['nnz']):>10d} {row['dense']:>12.5f} "
            f"{row['blas']:>12.5f} {row['csr']:>12.5f} "
            f"{row['speedup']:>8.1f}x {row['speedup_blas']:>8.1f}x"
        )

    # Only the fleet-scale speedup is asserted: at small N both kernels
    # finish within scheduler noise and a wall-clock floor would be flaky.
    largest = max(ring_speedup_by_size)
    if largest >= 4096:
        assert ring_speedup_by_size[largest] >= SPEEDUP_FLOOR_AT_4096, (
            f"expected >= {SPEEDUP_FLOOR_AT_4096}x sparse speedup on the ring at "
            f"{largest} agents, got {ring_speedup_by_size[largest]:.1f}x"
        )


def test_bench_sparse_spectral_diagnostics_at_scale():
    """The Lanczos path keeps fleet-scale spectral gaps affordable.

    A dense eigendecomposition at N = 4096 is O(N^3) (~minutes); the sparse
    path must produce the ring's analytic gap in a small fraction of the
    benchmark budget.
    """
    num_agents = max(sparse_agent_counts())
    topology = ring_graph(num_agents, sparse=True)
    start = time.perf_counter()
    gap = spectral_gap(topology.mixing_matrix)
    elapsed = time.perf_counter() - start
    analytic = 1.0 - (1.0 + 2.0 * math.cos(2.0 * math.pi / num_agents)) / 3.0
    print(
        f"\nring/{num_agents} spectral gap: {gap:.3e} "
        f"(analytic {analytic:.3e}) in {elapsed:.3f}s via eigsh"
    )
    np.testing.assert_allclose(gap, analytic, atol=1e-7)
    assert elapsed < 60.0
