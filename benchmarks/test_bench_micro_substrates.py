"""Micro-benchmarks of the substrates PDSL is built on.

These are conventional pytest-benchmark timings (multiple rounds) of the
hot paths: a CNN forward/backward pass, a full PDSL communication round, a
Monte-Carlo Shapley evaluation, the Gaussian mechanism and gossip averaging.
They exist so performance regressions in the substrates are visible
independently of the experiment-level benchmarks.
"""

import numpy as np

from repro.data.synthetic import make_classification_dataset, make_synthetic_mnist
from repro.experiments.harness import build_algorithm, build_experiment_components
from repro.experiments.specs import fast_spec
from repro.game.cooperative import CooperativeGame
from repro.game.shapley import monte_carlo_shapley
from repro.nn.zoo import make_mlp, make_mnist_cnn
from repro.privacy.mechanisms import GaussianMechanism
from repro.topology.graphs import ring_graph


def test_bench_micro_mlp_gradient(benchmark):
    model = make_mlp(64, 10, hidden_sizes=(32,), seed=0)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(128, 64))
    y = rng.integers(0, 10, size=128)
    benchmark(lambda: model.loss_and_gradient(x, y))


def test_bench_micro_cnn_forward_backward(benchmark):
    model = make_mnist_cnn(num_classes=10, channels=(4, 8), image_size=28, seed=0)
    data = make_synthetic_mnist(num_samples=16, seed=0)
    benchmark(lambda: model.loss_and_gradient(data.inputs, data.labels))


def test_bench_micro_pdsl_round(benchmark):
    spec = fast_spec(num_agents=6, epsilon=0.3, num_rounds=1, algorithms=["PDSL"], seed=3)
    components = build_experiment_components(spec)
    algorithm = build_algorithm("PDSL", components)
    benchmark(algorithm.run_round)


def test_bench_micro_dpsgd_round(benchmark):
    spec = fast_spec(num_agents=6, epsilon=0.3, num_rounds=1, algorithms=["DP-DPSGD"], seed=3)
    components = build_experiment_components(spec)
    algorithm = build_algorithm("DP-DPSGD", components)
    benchmark(algorithm.run_round)


def test_bench_micro_monte_carlo_shapley(benchmark):
    rng = np.random.default_rng(0)
    weights = rng.uniform(size=8)
    game = CooperativeGame(
        list(range(8)), lambda c: float(sum(weights[p] for p in c) + 0.1 * len(c) ** 2)
    )
    benchmark(lambda: monte_carlo_shapley(game, 8, np.random.default_rng(1)))


def test_bench_micro_gaussian_mechanism(benchmark):
    mechanism = GaussianMechanism(1.0, np.random.default_rng(0), clip_threshold=1.0)
    vector = np.random.default_rng(1).normal(size=50_000)
    benchmark(lambda: mechanism.privatize(vector))


def test_bench_micro_gossip_mixing(benchmark):
    topology = ring_graph(20)
    vectors = np.random.default_rng(0).normal(size=(20, 10_000))
    benchmark(lambda: topology.mixing_matrix @ vectors)


def test_bench_micro_dirichlet_partition(benchmark):
    from repro.data.partition import partition_dirichlet

    data = make_classification_dataset(5_000, num_features=16, num_classes=10, seed=0)
    benchmark(
        lambda: partition_dirichlet(data, 20, alpha=0.25, rng=np.random.default_rng(0))
    )
