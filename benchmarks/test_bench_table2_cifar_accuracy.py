"""Table II: test accuracy on the CIFAR-like experiment family.

Paper reference: Table II — final test accuracy for every (privacy budget,
topology, number of agents) cell of the CIFAR-10 evaluation (epsilon in
{0.5, 0.7, 1.0}).
"""

from typing import Dict, Tuple

from conftest import bench_agent_counts, bench_epsilons, bench_rounds, print_table

from repro.experiments.harness import run_comparison
from repro.experiments.report import accuracy_table_rows
from repro.experiments.specs import ALGORITHM_NAMES, cifar_like_spec

TOPOLOGIES = ("fully_connected", "bipartite", "ring")
CIFAR_EPSILONS = (0.5, 0.7, 1.0)


def run_table2() -> Dict[float, Dict[str, Dict[Tuple[str, int], float]]]:
    tables = {}
    for epsilon in bench_epsilons(CIFAR_EPSILONS):
        cell_results = {}
        for topology in TOPOLOGIES:
            for num_agents in bench_agent_counts():
                spec = cifar_like_spec(num_agents=num_agents, epsilon=epsilon, topology=topology)
                spec = spec.with_updates(num_rounds=bench_rounds())
                cell_results[(topology, num_agents)] = run_comparison(spec)
        table = accuracy_table_rows(cell_results, algorithms=ALGORITHM_NAMES)
        print_table(f"Table II (CIFAR-like) — test accuracy at eps={epsilon}", table)
        tables[epsilon] = table
    return tables


def test_bench_table2_cifar_accuracy(benchmark, bench_config):
    tables = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    total_cells = 0
    pdsl_best = 0
    best_at_max_eps = 0
    cells_at_max_eps = 0
    max_eps = max(tables)
    for epsilon, table in tables.items():
        for cell in table["PDSL"]:
            total_cells += 1
            best = max(table[name].get(cell, 0.0) for name in table)
            is_best = table["PDSL"][cell] >= best - 1e-12
            pdsl_best += int(is_best)
            if epsilon == max_eps:
                cells_at_max_eps += 1
                best_at_max_eps += int(is_best)
    # Paper shape: PDSL tops every cell.  At the reduced benchmark scale the
    # smallest budgets are noise-dominated, so require a clear majority at the
    # largest budget and at least half of all cells overall.
    assert best_at_max_eps >= 0.7 * cells_at_max_eps
    assert pdsl_best >= 0.5 * total_cells
