"""Pytest root configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (the offline environment lacks the ``wheel`` package that pip's
PEP 660 editable installs require, so ``python setup.py develop`` or plain
``pytest`` from the repository root are the supported workflows).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
