"""Event-driven time model demo: heterogeneous fleets on their own clocks.

The synchronous engines in this repo charge every round the same implicit
cost; real fleets are heterogeneous — a slow phone holds a barrier round
hostage while fast peers idle.  This demo drives the discrete-event
simulation layer three ways on the *same* log-normal device fleet:

1. **bare** — the plain synchronous engine, no time model (baseline
   numerics, no simulated clock);
2. **barrier** — identical numerics (bit-for-bit: same losses, same
   parameters), but each round now costs simulated wall-clock equal to the
   slowest compute + transfer path, and per-agent utilization shows how
   much time fast devices waste waiting;
3. **async** — agents train on their own clocks and mix neighbour models
   on message *arrival* with staleness-weighted gossip, so nobody waits
   for the straggler.

The punchline is the comparison at the end: at matched simulated
wall-clock, asynchrony turns the idle time of fast devices into extra
local steps and arrivals — utilization and accuracy both jump.

Run with::

    python examples/async_traces_demo.py

Environment knobs (used by the CI smoke step to keep the run tiny):
``REPRO_ASYNC_ROUNDS``, ``REPRO_ASYNC_AGENTS``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.experiments.harness import build_experiment_components, run_single
from repro.experiments.specs import fast_spec


def run(label: str, num_agents: int, num_rounds: int, time_model):
    spec = fast_spec(
        num_agents=num_agents,
        topology="ring",
        num_rounds=num_rounds,
        algorithms=["DMSGD"],
        time_model=time_model,
    )
    components = build_experiment_components(spec)
    history = run_single("DMSGD", components)
    losses = [r.average_train_loss for r in history.records]
    sims = history.sim_seconds_per_record
    utils = [r.utilization for r in history.records]
    print(f"\n{label}:")
    print(f"  losses per eval point : {[round(x, 4) for x in losses]}")
    if any(s is not None for s in sims):
        print(f"  simulated secs/round  : {[round(s, 2) for s in sims]}")
        print(f"  total simulated time  : {history.total_sim_seconds():.2f} s")
        print(f"  mean utilization      : {np.mean([u for u in utils if u is not None]):.3f}")
    else:
        print("  simulated secs/round  : (no time model)")
    print(f"  final test accuracy   : {history.final_test_accuracy:.3f}")
    return history


def main() -> None:
    num_rounds = int(os.environ.get("REPRO_ASYNC_ROUNDS", 20))
    num_agents = int(os.environ.get("REPRO_ASYNC_AGENTS", 12))

    # One shared heterogeneous fleet: log-normal compute speeds, bandwidths
    # and latencies, drawn deterministically from the trace seed.
    traces = {
        "kind": "synthetic",
        "seed": 7,
        "compute_median_seconds": 1.0,
        "compute_spread": 0.8,
        "bandwidth_median_bytes_per_s": 1e6,
        "latency_median_seconds": 0.02,
    }

    print(
        f"heterogeneous ring, M = {num_agents}, {num_rounds} rounds, "
        f"log-normal traces (seed {traces['seed']})"
    )

    bare = run("bare synchronous engine", num_agents, num_rounds, None)
    barrier = run(
        "barrier mode (same numerics + simulated clock)",
        num_agents,
        num_rounds,
        {"traces": traces},
    )
    asynchronous = run(
        "async mode (gossip on arrival, staleness-weighted)",
        num_agents,
        num_rounds,
        {"traces": traces, "async": True, "staleness_decay": 0.1},
    )

    # Barrier mode must reproduce the bare run bit-for-bit; only the clock
    # is new.
    bare_losses = [r.average_train_loss for r in bare.records]
    barrier_losses = [r.average_train_loss for r in barrier.records]
    assert bare_losses == barrier_losses, "barrier mode changed the numerics!"

    def mean_util(history):
        values = [r.utilization for r in history.records if r.utilization is not None]
        return float(np.mean(values)) if values else float("nan")

    print("\nsummary (same fleet, same round count):")
    print(
        f"  barrier: {barrier.total_sim_seconds():8.2f} simulated s, "
        f"utilization {mean_util(barrier):.3f} "
        f"-> accuracy {barrier.final_test_accuracy:.3f}"
    )
    print(
        f"  async  : {asynchronous.total_sim_seconds():8.2f} simulated s, "
        f"utilization {mean_util(asynchronous):.3f} "
        f"-> accuracy {asynchronous.final_test_accuracy:.3f}"
    )
    print(
        "  (same simulated budget: fast devices spend their former idle time "
        "on extra local steps and arrivals)"
    )


if __name__ == "__main__":
    main()
