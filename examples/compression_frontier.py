"""Accuracy-vs-bandwidth frontier: gossip codecs on a DP ring fleet.

The communication stack can compress every gossip exchange — float16 or
int8 quantization, top-k or random-k sparsification, each with per-agent
error-feedback residuals — at the cost of a (usually small) accuracy hit.
This demo sweeps the codec axis for two baselines:

1. build one small ring experiment (:func:`fast_spec`) per codec, identical
   except for the ``compression`` knob;
2. train DMSGD and DP-DPSGD under each codec for the same number of rounds;
3. print final loss, final test accuracy and the *actual wire bytes* the
   simulated network accounted for, per codec — the accuracy-vs-bandwidth
   frontier.

The ``identity`` row is bit-identical to running with no compression at
all, so it doubles as the uncompressed reference.

Run with::

    python examples/compression_frontier.py

Environment knobs (used by the CI smoke step to keep the run tiny):
``REPRO_COMPRESS_ROUNDS``, ``REPRO_COMPRESS_AGENTS``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.harness import (
    build_algorithm,
    build_experiment_components,
    evaluation_for_spec,
)
from repro.experiments.specs import fast_spec
from repro.simulation.runner import run_decentralized

#: The codec axis of the sweep: label -> the spec's ``compression`` mapping.
CODECS = {
    "identity": {"codec": "identity"},
    "fp16": {"codec": "fp16"},
    "int8": {"codec": "int8"},
    "topk": {"codec": "topk"},  # k defaults to d // 10
    "randomk": {"codec": "randomk"},
}


def main() -> None:
    num_rounds = int(os.environ.get("REPRO_COMPRESS_ROUNDS", 15))
    num_agents = int(os.environ.get("REPRO_COMPRESS_AGENTS", 8))
    algorithms = ["DMSGD", "DP-DPSGD"]

    print(
        f"compression frontier: ring, M = {num_agents}, {num_rounds} rounds, "
        f"codecs = {list(CODECS)}"
    )
    for algorithm_name in algorithms:
        print()
        print(f"{algorithm_name}:")
        print(
            f"{'codec':>10s} {'final loss':>11s} {'accuracy':>9s} "
            f"{'wire bytes':>12s} {'vs dense':>9s}"
        )
        dense_bytes = None
        for label, compression in CODECS.items():
            spec = fast_spec(
                num_agents=num_agents,
                topology="ring",
                num_rounds=num_rounds,
                algorithms=[algorithm_name],
                compression=compression,
            )
            components = build_experiment_components(spec)
            algorithm = build_algorithm(algorithm_name, components)
            history = run_decentralized(
                algorithm, spec.num_rounds, evaluation=evaluation_for_spec(components)
            )
            wire_bytes = algorithm.network.bytes_sent
            if label == "identity":
                dense_bytes = wire_bytes
            reduction = dense_bytes / wire_bytes if wire_bytes else float("inf")
            print(
                f"{label:>10s} {history.final_loss():>11.3f} "
                f"{history.final_test_accuracy:>9.3f} {wire_bytes:>12,d} "
                f"{reduction:>8.1f}x"
            )


if __name__ == "__main__":
    main()
