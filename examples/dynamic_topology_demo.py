"""Dynamic-topology demo: PDSL vs DMSGD on a ring that rewires and churns.

The paper analyses gossip learning on one fixed graph; this demo exercises
the dynamic-topology simulation layer instead:

1. build a ring of agents with a :class:`DynamicTopologySchedule` that
   re-permutes the ring every few rounds (periodic rewiring) while agents
   leave and rejoin the fleet (churn) and a fraction straggles each round;
2. train PDSL and the DMSGD baseline against the *same* schedule (both see
   the identical sequence of graphs, departures and stragglers);
3. print the loss curves, the per-round runtime column and a summary of the
   recorded topology events.

Run with::

    python examples/dynamic_topology_demo.py

Environment knobs (used by the CI smoke step to keep the run tiny):
``REPRO_DEMO_ROUNDS``, ``REPRO_DEMO_AGENTS``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.harness import run_comparison
from repro.experiments.report import format_loss_curves, format_runtime_table
from repro.experiments.specs import fast_spec


def main() -> None:
    num_rounds = int(os.environ.get("REPRO_DEMO_ROUNDS", 20))
    num_agents = int(os.environ.get("REPRO_DEMO_AGENTS", 10))

    spec = fast_spec(
        num_agents=num_agents,
        topology="ring",
        num_rounds=num_rounds,
        algorithms=["PDSL", "DMSGD"],
        dynamics={
            "rewire_every": 5,      # re-permute the ring every 5 rounds
            "churn_rate": 0.05,     # ~5% of active agents leave per round
            "rejoin_rate": 0.5,     # departed agents return quickly
            "straggler_fraction": 0.1,  # 10% of the fleet straggles each round
            "min_active": 2,
        },
    )
    print(
        f"dynamic ring, M = {num_agents}, {num_rounds} rounds, "
        f"dynamics = {spec.dynamics}"
    )

    histories = run_comparison(spec)

    print()
    print(format_loss_curves(histories, title="Average training loss per round", max_rows=10))
    print()
    print(format_runtime_table(histories))

    # Both algorithms trained against the same schedule, so the recorded
    # event stream is identical; summarise it once.
    history = next(iter(histories.values()))
    print()
    print("topology events over the run:", history.event_counts())
    active = [r.active_agents for r in history.records]
    print(f"active agents at evaluation points: {active}")
    for name, h in histories.items():
        print(
            f"{name:>6s}: final loss {h.final_loss():.3f}, "
            f"final test accuracy {h.final_test_accuracy:.3f}"
        )


if __name__ == "__main__":
    main()
