"""Example: how data heterogeneity affects PDSL vs. a heterogeneity-oblivious baseline.

The paper's motivation (Sec. I) is that non-IID local data degrades
decentralized learning, and that cross-gradient information weighted by
Shapley values counteracts the degradation.  This example makes that
concrete: it sweeps the Dirichlet concentration ``alpha`` from near-IID
(alpha = 100) down to highly skewed (alpha = 0.05) and compares PDSL with
DP-DPSGD under the same privacy budget.

Run with::

    python examples/heterogeneity_study.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.data.partition import heterogeneity_degree
from repro.experiments import fast_spec
from repro.experiments.harness import build_experiment_components, run_single


ALPHAS = (100.0, 1.0, 0.25, 0.05)
ALGORITHMS = ("PDSL", "DP-DPSGD")


def main() -> None:
    print("Dirichlet alpha sweep (M=8 agents, fully connected, eps=0.3, 18 rounds)")
    print(f"{'alpha':>8s} {'heterogeneity':>14s} " + " ".join(f"{name:>12s}" for name in ALGORITHMS))

    results = {}
    for alpha in ALPHAS:
        spec = fast_spec(num_agents=8, epsilon=0.3, num_rounds=18, algorithms=list(ALGORITHMS), seed=29)
        spec = spec.with_updates(dirichlet_alpha=alpha, name=f"hetero_alpha_{alpha}")
        components = build_experiment_components(spec)
        degree = heterogeneity_degree(components.partition, spec.num_classes)
        accuracies = {}
        for name in ALGORITHMS:
            history = run_single(name, components)
            accuracies[name] = history.final_test_accuracy
        results[alpha] = (degree, accuracies)
        row = " ".join(f"{accuracies[name]:>12.3f}" for name in ALGORITHMS)
        print(f"{alpha:>8g} {degree:>14.3f} {row}")

    print()
    print("Reading the table:")
    print(" * the heterogeneity column is the mean total-variation distance between each")
    print("   agent's label distribution and the global one (0 = IID, -> 1 = disjoint labels);")
    print(" * as alpha shrinks the task becomes more heterogeneous and the gap between")
    print("   PDSL and the heterogeneity-oblivious DP-DPSGD baseline widens, which is the")
    print("   paper's central claim.")

    iid_gap = results[ALPHAS[0]][1]["PDSL"] - results[ALPHAS[0]][1]["DP-DPSGD"]
    skewed_gap = results[ALPHAS[-1]][1]["PDSL"] - results[ALPHAS[-1]][1]["DP-DPSGD"]
    print(f"\nPDSL advantage at alpha={ALPHAS[0]:g}: {iid_gap:+.3f}   at alpha={ALPHAS[-1]:g}: {skewed_gap:+.3f}")


if __name__ == "__main__":
    main()
