"""Orchestrator quickstart: a durable, resumable, parallel experiment grid.

The paper's artefacts are comparison grids (algorithms x seeds x settings);
this demo drives one through the experiment orchestrator end to end:

1. declare an :class:`ExperimentGrid` — two algorithms, two seeds, two
   topology overrides — exactly what a ``repro-run`` spec file contains;
2. run it with a **forced interrupt** (every job stops mid-run), as if the
   sweep had been killed: each cell leaves a checkpoint in its
   content-addressed run directory;
3. run the same grid again — partial cells resume from their checkpoints
   *bit-identically*, already-finished cells are served from the store —
   optionally over a process pool;
4. print the per-job store status and the multi-seed mean±std summary.

Run with::

    python examples/orchestrator_quickstart.py

Environment knobs (used by the CI smoke step to keep the run tiny):
``REPRO_ORCH_ROUNDS``, ``REPRO_ORCH_AGENTS``, ``REPRO_ORCH_WORKERS``,
``REPRO_ORCH_RUNS_DIR`` (defaults to a temporary directory).
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.orchestrator import (
    RunStore,
    job_hash,
    report_rows,
    run_grid,
)
from repro.experiments.report import format_cell_summary
from repro.experiments.specs import ExperimentGrid, fast_spec


def main() -> None:
    num_rounds = int(os.environ.get("REPRO_ORCH_ROUNDS", 12))
    num_agents = int(os.environ.get("REPRO_ORCH_AGENTS", 6))
    workers = int(os.environ.get("REPRO_ORCH_WORKERS", 2))
    runs_dir = os.environ.get("REPRO_ORCH_RUNS_DIR")

    grid = ExperimentGrid(
        base=fast_spec(
            num_agents=num_agents,
            num_rounds=num_rounds,
            algorithms=["PDSL", "DMSGD"],
        ),
        algorithms=["PDSL", "DMSGD"],
        seeds=[7, 8],
        overrides=[{}, {"topology": "ring"}],
    )
    print(
        f"grid: {len(grid)} jobs = {len(grid.algorithms)} algorithms x "
        f"{len(grid.seeds)} seeds x {len(grid.overrides)} overrides, "
        f"{num_rounds} rounds each"
    )

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(runs_dir) if runs_dir else Path(scratch) / "runs"
        store = RunStore(root)

        # --- 1. the sweep gets killed halfway -------------------------
        interrupt_after = max(1, num_rounds // 2)
        print(
            f"\nfirst pass: interrupt every job after {interrupt_after} rounds "
            "(simulated kill)"
        )
        run_grid(
            grid,
            root,
            workers=1,
            checkpoint_every=interrupt_after,
            max_rounds_per_job=interrupt_after,
        )
        for job in grid.jobs():
            status = store.read_status(job)
            print(
                f"  {job_hash(job)}  {status['status']:>8s}  "
                f"rounds={status.get('rounds_completed')}  {job.describe()}"
            )

        # --- 2. rerun: every partial cell resumes from its checkpoint --
        print(f"\nsecond pass: resume with {workers} worker(s)")
        results = run_grid(grid, root, workers=workers, checkpoint_every=interrupt_after)
        for result in results:
            print(f"  {result.job_id}  {result.status:>8s}  {result.job.describe()}")

        # --- 3. a third pass touches nothing --------------------------
        cached = run_grid(grid, root, workers=1)
        assert all(result.status == "cached" for result in cached)
        print("\nthird pass: all jobs served from the run store (no training)")

        print()
        print(format_cell_summary(report_rows(results)))


if __name__ == "__main__":
    main()
