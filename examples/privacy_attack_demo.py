"""Example: why PDSL perturbs gradients — privacy attacks with and without DP.

The paper's threat model (Sec. I–II) is an honest-but-curious neighbour who
inspects the cross-gradients it receives.  This example mounts the two
attacks implemented in ``repro.attacks`` against a victim agent's gradient:

1. **gradient inversion** — reconstruct the victim's batch from the observed
   gradient, with and without the Gaussian mechanism applied;
2. **membership inference** — decide whether specific examples belong to the
   victim's local dataset from the model's per-sample loss.

Run with::

    python examples/privacy_attack_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.attacks import gradient_inversion_attack, membership_inference_attack
from repro.data import make_classification_dataset
from repro.nn import make_linear_classifier
from repro.privacy import GaussianMechanism, gaussian_sigma


def main() -> None:
    rng = np.random.default_rng(0)
    # Harder, noisier data so a locally trained model genuinely overfits its
    # members — that gap is what the membership-inference attack exploits.
    data = make_classification_dataset(
        600, num_features=8, num_classes=4, cluster_std=1.6, label_noise=0.1, seed=0
    )
    model = make_linear_classifier(8, 4, seed=0)
    params = model.get_flat_params()

    # --- victim computes a cross-gradient on a small private batch ------------
    victim_batch = data.subset(np.arange(4))
    _, victim_gradient = model.loss_and_gradient(victim_batch.inputs, victim_batch.labels, params=params)

    print("Gradient-inversion attack (reconstruct the victim batch from its gradient)")
    print(f"{'setting':>28s} {'matching loss':>14s} {'reconstruction MSE':>20s}")
    for label, epsilon in (("no DP (raw gradient)", None), ("eps=1.0 per release", 1.0), ("eps=0.1 per release", 0.1)):
        if epsilon is None:
            observed = victim_gradient
        else:
            sigma = gaussian_sigma(epsilon, 1e-5, sensitivity=2.0 / len(victim_batch))
            mechanism = GaussianMechanism(sigma, np.random.default_rng(1), clip_threshold=1.0)
            observed = mechanism.privatize(victim_gradient)
        result = gradient_inversion_attack(
            model, observed, params, batch_size=len(victim_batch),
            input_shape=victim_batch.input_shape, num_classes=4,
            iterations=150, rng=np.random.default_rng(2),
        )
        mse = result.error_against(victim_batch.inputs)
        print(f"{label:>28s} {result.matching_loss:>14.4f} {mse:>20.3f}")

    # --- membership inference against an overfit local model ------------------
    members = data.subset(np.arange(0, 80))
    non_members = data.subset(np.arange(300, 380))
    overfit_params = params.copy()
    for _ in range(300):
        _, grad = model.loss_and_gradient(members.inputs, members.labels, params=overfit_params)
        overfit_params -= 0.5 * grad

    print("\nMembership-inference attack (loss-threshold) against the victim's local model")
    result = membership_inference_attack(model, overfit_params, members, non_members, rng=rng)
    print(f"  attack accuracy  : {result.accuracy:.3f}")
    print(f"  membership advantage (TPR - FPR): {result.advantage:.3f}")
    print("  (an advantage near 0 means the model leaks little about who is in the training set;")
    print("   DP training bounds this advantage, which is the guarantee Theorem 1 buys.)")


if __name__ == "__main__":
    main()
