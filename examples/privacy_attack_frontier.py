"""Privacy frontier: attack success vs. privacy budget, at fleet scale.

The paper argues its DP mechanism blunts gradient leakage; this demo plots
that defence quantitatively with the batched attack engines:

1. build one epsilon sweep (:func:`frontier_grid`) over a small DP-DPSGD
   experiment, optionally crossed with a gossip compression codec;
2. run the campaign through the orchestrator with retained final states
   (content-addressed run directories — re-running the script is
   incremental);
3. mount the fleet gradient-inversion and membership-inference attacks on
   every finished cell and print the frontier: membership advantage and
   reconstruction error against epsilon, next to final utility.

Run with::

    python examples/privacy_attack_frontier.py

Environment knobs (used by the CI smoke step to keep the run tiny):
``REPRO_FRONTIER_ROUNDS``, ``REPRO_FRONTIER_AGENTS``,
``REPRO_FRONTIER_ITERS``, ``REPRO_FRONTIER_RUNS`` (the run-store root,
default: a temporary directory).
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.privacy_frontier import (
    frontier_grid,
    frontier_report,
    run_privacy_frontier,
)
from repro.experiments.specs import fast_spec

#: The privacy budgets swept, loosest to tightest.
EPSILONS = [10.0, 1.0, 0.3]


def main() -> None:
    num_rounds = int(os.environ.get("REPRO_FRONTIER_ROUNDS", 10))
    num_agents = int(os.environ.get("REPRO_FRONTIER_AGENTS", 6))
    iterations = int(os.environ.get("REPRO_FRONTIER_ITERS", 20))
    runs_root = os.environ.get("REPRO_FRONTIER_RUNS")

    base = fast_spec(
        num_agents=num_agents,
        topology="ring",
        num_rounds=num_rounds,
        algorithms=["DP-DPSGD"],
    )
    grid = frontier_grid(
        base, epsilons=EPSILONS, algorithms=["DP-DPSGD"], seeds=[7]
    )
    print(
        f"privacy frontier: ring, M = {num_agents}, {num_rounds} rounds, "
        f"epsilons = {EPSILONS}"
    )

    if runs_root is None:
        with tempfile.TemporaryDirectory(prefix="repro-frontier-") as tmp:
            points = run_privacy_frontier(
                grid, tmp, inversion_iterations=iterations, victim_batch=4
            )
    else:
        points = run_privacy_frontier(
            grid, runs_root, inversion_iterations=iterations, victim_batch=4
        )
        print(f"run store: {runs_root} (re-runs are incremental)")

    print()
    print(frontier_report(points))
    print()
    loosest = max(points, key=lambda p: p.epsilon)
    tightest = min(points, key=lambda p: p.epsilon)
    print(
        f"tightening epsilon {loosest.epsilon:g} -> {tightest.epsilon:g} moved "
        f"membership advantage {loosest.membership_advantage:+.3f} -> "
        f"{tightest.membership_advantage:+.3f} and inversion MSE "
        f"{loosest.inversion_error:.3f} -> {tightest.inversion_error:.3f}"
    )


if __name__ == "__main__":
    main()
