"""Example: the privacy–utility trade-off and privacy accounting in PDSL.

Sweeps the per-round privacy budget epsilon, reports the derived Gaussian
noise scale, the final accuracy of PDSL and of the non-private D-PSGD
reference, and the cumulative (epsilon, delta) spent over the whole run
under basic vs. advanced composition.

Run with::

    python examples/privacy_utility_tradeoff.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import fast_spec
from repro.experiments.harness import build_algorithm, build_experiment_components
from repro.privacy import CompositionMethod
from repro.simulation import EvaluationConfig, run_decentralized

EPSILONS = (0.08, 0.3, 1.0, 3.0)
ROUNDS = 18


def main() -> None:
    print(f"PDSL privacy-utility trade-off (M=6, fully connected, {ROUNDS} rounds)\n")
    print(
        f"{'eps/round':>10s} {'sigma':>8s} {'final acc':>10s} "
        f"{'eps total (basic)':>18s} {'eps total (adv.)':>17s}"
    )

    baseline_accuracy = None
    for epsilon in EPSILONS:
        spec = fast_spec(num_agents=6, epsilon=epsilon, num_rounds=ROUNDS, algorithms=["PDSL"], seed=13)
        components = build_experiment_components(spec)
        algorithm = build_algorithm("PDSL", components)
        history = run_decentralized(
            algorithm, ROUNDS, evaluation=EvaluationConfig(eval_every=ROUNDS, test_data=components.test)
        )
        basic_eps, _ = algorithm.accountant.total(CompositionMethod.BASIC)
        adv_eps, _ = algorithm.accountant.total(CompositionMethod.ADVANCED)
        print(
            f"{epsilon:>10g} {algorithm.sigma:>8.3f} {history.final_test_accuracy:>10.3f} "
            f"{basic_eps:>18.2f} {adv_eps:>17.2f}"
        )

        if baseline_accuracy is None:
            non_private = build_algorithm("D-PSGD", components)
            non_private_history = run_decentralized(
                non_private, ROUNDS, evaluation=EvaluationConfig(eval_every=ROUNDS, test_data=components.test)
            )
            baseline_accuracy = non_private_history.final_test_accuracy

    print(f"\nnon-private D-PSGD reference accuracy on the same data: {baseline_accuracy:.3f}")
    print("(D-PSGD runs without any DP noise but also without momentum or cross-gradients,")
    print(" so on this non-IID partition its bottleneck is data heterogeneity, not noise —")
    print(" which is exactly the gap PDSL's Shapley-weighted cross-gradients close.)")
    print("Smaller per-round budgets mean more Gaussian noise per gradient and lower final")
    print("accuracy for PDSL; the two rightmost columns show how the budget accumulates")
    print("over rounds under basic vs. advanced composition.")


if __name__ == "__main__":
    main()
