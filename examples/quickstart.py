"""Quickstart: train PDSL on a small non-IID decentralized problem.

This is the smallest end-to-end use of the public API:

1. generate a synthetic classification dataset;
2. split it into train / validation / test and partition the training data
   across agents with a Dirichlet(0.25) label-skew prior (the paper's
   heterogeneity model);
3. build a communication topology and the PDSL algorithm;
4. run a handful of communication rounds and print the loss curve, the final
   test accuracy and the cumulative privacy budget.

Run with::

    python examples/quickstart.py

Environment knobs (used by the CI smoke step to keep the run tiny):
``REPRO_QUICKSTART_ROUNDS``, ``REPRO_QUICKSTART_AGENTS``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core import PDSL, PDSLConfig
from repro.data import make_classification_dataset, partition_dirichlet, train_val_test_split
from repro.nn import make_mlp
from repro.simulation import EvaluationConfig, run_decentralized
from repro.topology import fully_connected_graph


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Data: 8 classes, 32 features, modest class overlap.
    dataset = make_classification_dataset(
        num_samples=2400, num_features=32, num_classes=8, cluster_std=1.0, seed=0
    )
    train, validation, test = train_val_test_split(dataset, val_fraction=0.1, test_fraction=0.2, rng=rng)

    # 2. Non-IID partition across 8 agents (Dirichlet alpha = 0.25, as in the paper).
    num_agents = int(os.environ.get("REPRO_QUICKSTART_AGENTS", 8))
    partition = partition_dirichlet(train, num_agents, alpha=0.25, rng=rng, min_samples_per_agent=20)
    print("per-agent dataset sizes:", partition.sizes())

    # 3. Topology, model and the PDSL configuration.
    topology = fully_connected_graph(num_agents)
    model = make_mlp(input_dim=32, num_classes=8, hidden_sizes=(32,), seed=0)
    config = PDSLConfig(
        learning_rate=0.05,
        momentum=0.5,
        clip_threshold=1.0,
        epsilon=0.5,          # per-round privacy budget (sigma derived automatically)
        delta=1e-5,
        batch_size=64,
        shapley_permutations=4,
        seed=0,
    )
    algorithm = PDSL(model, topology, partition.shards, config, validation=validation)
    print(f"model dimension d = {algorithm.dimension}, per-round sigma = {algorithm.sigma:.4f}")

    # 4. Train and report.
    history = run_decentralized(
        algorithm,
        num_rounds=int(os.environ.get("REPRO_QUICKSTART_ROUNDS", 25)),
        evaluation=EvaluationConfig(eval_every=5, test_data=test),
        progress_callback=lambda r, rec: print(
            f"round {r:>3d}  avg train loss {rec.average_train_loss:.3f}"
            + (f"  test acc {rec.test_accuracy:.3f}" if rec.test_accuracy is not None else "")
        ),
    )

    epsilon_total, delta_total = algorithm.privacy_spent()
    print()
    print(f"final average training loss : {history.final_loss():.3f}")
    print(f"final test accuracy         : {history.final_test_accuracy:.3f}")
    print(f"privacy spent over the run  : epsilon={epsilon_total:.2f}, delta={delta_total:.2e} (advanced composition)")
    print(f"messages exchanged          : {algorithm.network.messages_sent}")


if __name__ == "__main__":
    main()
