"""Example: regenerate a panel of any paper figure or table from the command line.

Usage::

    python examples/reproduce_paper_figures.py --figure 1
    python examples/reproduce_paper_figures.py --figure 4 --agents 10 --epsilon 0.7
    python examples/reproduce_paper_figures.py --table 1 --topology ring --agents 10 --epsilon 0.1
    python examples/reproduce_paper_figures.py --figure 1 --scale paper   # full-size (slow)
    python examples/reproduce_paper_figures.py --figure 1 --scale paper --runs runs/ --workers 4

By default the reduced "fast" scale is used so a panel completes in seconds;
``--scale paper`` switches to the paper's CNN models, batch size 250 and full
round counts (hours on a laptop — provided for completeness).

With ``--runs DIR`` the panel goes through the experiment orchestrator
instead of the in-process harness: each algorithm becomes a job in a
content-addressed run directory, executed on a ``--workers``-sized process
pool with periodic checkpoints — so a killed full-scale regeneration resumes
from where it stopped (bit-identically) instead of restarting from round 0,
and re-running a finished panel just re-renders the stored histories.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import (
    ExperimentGrid,
    format_loss_curves,
    paper_figure_spec,
    paper_table_spec,
    run_comparison,
    run_grid,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--figure", type=int, choices=range(1, 7), help="paper figure number (1-6)")
    target.add_argument("--table", type=int, choices=(1, 2), help="paper table number (1 or 2)")
    parser.add_argument("--agents", type=int, default=10, help="number of agents M (default 10)")
    parser.add_argument("--epsilon", type=float, default=None, help="privacy budget (defaults to the figure's largest)")
    parser.add_argument("--topology", default="fully_connected", help="topology for --table runs")
    parser.add_argument("--rounds", type=int, default=None, help="override the number of communication rounds")
    parser.add_argument("--scale", choices=("fast", "paper"), default="fast", help="experiment scale")
    parser.add_argument(
        "--runs",
        default=None,
        help="run-store directory: execute through the orchestrator "
        "(durable, resumable, cached) instead of in-process",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="process-pool size with --runs (default 1)"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.figure is not None:
        spec = paper_figure_spec(args.figure, num_agents=args.agents, epsilon=args.epsilon, scale=args.scale)
        title = f"Figure {args.figure} panel (M={args.agents}, eps={spec.epsilon}, {spec.topology})"
    else:
        epsilon = args.epsilon if args.epsilon is not None else (0.3 if args.table == 1 else 1.0)
        spec = paper_table_spec(args.table, args.topology, args.agents, epsilon, scale=args.scale)
        title = f"Table {'I' if args.table == 1 else 'II'} cell ({args.topology}, M={args.agents}, eps={epsilon})"
    if args.rounds is not None:
        spec = spec.with_updates(num_rounds=args.rounds)

    print(f"running {title} at scale '{args.scale}' ({spec.num_rounds} rounds)...\n")
    if args.runs is not None:
        # One job per algorithm in a content-addressed run store: finished
        # algorithms are served from disk, interrupted ones resume from
        # their latest checkpoint, pending ones fan out over the pool.
        grid = ExperimentGrid(base=spec, algorithms=list(spec.algorithms))
        results = run_grid(grid, args.runs, workers=args.workers)
        histories = {result.job.algorithm: result.history for result in results}
    else:
        histories = run_comparison(spec, progress_callback=None)
    print(format_loss_curves(histories, title=f"{title}: average training loss per round", max_rows=12))
    print("\nfinal test accuracy:")
    for name, history in histories.items():
        print(f"  {name:>14s}  {history.final_test_accuracy:.3f}")


if __name__ == "__main__":
    main()
