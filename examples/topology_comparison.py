"""Example: PDSL across communication topologies of different density.

The paper evaluates fully connected, complete bipartite and ring graphs
(plus we add a 2-D torus and a random Erdős–Rényi graph for context).  This
example runs PDSL on each topology with identical data and privacy settings
and reports the spectral gap of the mixing matrix, the Theorem 1 noise floor,
the final accuracy and the total number of messages exchanged — showing the
accuracy/communication trade-off of denser graphs.

Run with::

    python examples/topology_comparison.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis import theorem1_sigma_bound
from repro.experiments import fast_spec
from repro.experiments.harness import build_algorithm, build_experiment_components
from repro.simulation import EvaluationConfig, run_decentralized

TOPOLOGIES = ("fully_connected", "bipartite", "ring", "grid", "erdos_renyi")


def main() -> None:
    num_agents = 9  # 9 agents so the grid topology is a 3x3 torus
    print(f"PDSL on {num_agents} agents, eps=0.3, Dirichlet(0.25), 18 rounds\n")
    header = (
        f"{'topology':>16s} {'spectral gap':>13s} {'thm1 sigma':>11s} "
        f"{'final loss':>11s} {'test acc':>9s} {'messages':>9s}"
    )
    print(header)

    for topology_name in TOPOLOGIES:
        spec = fast_spec(
            num_agents=num_agents, epsilon=0.3, topology=topology_name,
            num_rounds=18, algorithms=["PDSL"], seed=41,
        )
        components = build_experiment_components(spec)
        algorithm = build_algorithm("PDSL", components)
        history = run_decentralized(
            algorithm,
            spec.num_rounds,
            evaluation=EvaluationConfig(eval_every=spec.num_rounds, test_data=components.test),
        )
        sigma_floor = theorem1_sigma_bound(
            components.topology, epsilon=spec.epsilon, delta=spec.delta, clip_threshold=spec.clip_threshold
        )
        print(
            f"{topology_name:>16s} {components.topology.spectral_gap:>13.3f} {sigma_floor:>11.1f} "
            f"{history.final_loss():>11.3f} {history.final_test_accuracy:>9.3f} "
            f"{algorithm.network.messages_sent:>9d}"
        )

    print()
    print("Denser topologies (larger spectral gap) converge to better accuracy but cost")
    print("more messages per round; the Theorem 1 noise floor also grows for dense graphs")
    print("because the minimum mixing weight omega_min = 1/M shrinks.")


if __name__ == "__main__":
    main()
