#!/usr/bin/env python3
"""Check that relative markdown links in the docs resolve (stdlib only).

Walks ``README.md`` and every ``docs/*.md``, extracts ``[text](target)``
links, and verifies that each *relative* target exists on disk (anchors are
stripped; external ``http(s)://`` and ``mailto:`` targets are skipped — the
offline CI cannot verify them).  Exit 1 with a per-link report when anything
dangles::

    python scripts/check_links.py
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links; deliberately simple — fenced code blocks are
#: stripped first so example snippets cannot produce false positives.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"```.*?```", re.DOTALL)


def link_targets(path: Path) -> List[str]:
    text = FENCE.sub("", path.read_text())
    return LINK.findall(text)


def is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def check_file(path: Path) -> List[Tuple[str, str]]:
    """``(target, reason)`` for every broken relative link in ``path``."""
    broken = []
    for target in link_targets(path):
        if is_external(target):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            # relpath, not Path.relative_to: a link escaping the repo root
            # must report FAIL, not crash the checker.
            shown = os.path.relpath(resolved, REPO_ROOT)
            broken.append((target, f"missing: {shown}"))
    return broken


def main() -> int:
    files = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))
    total_links = 0
    failures = 0
    for path in files:
        if not path.exists():
            print(f"FAIL {path}: file itself is missing")
            failures += 1
            continue
        targets = [t for t in link_targets(path) if not is_external(t)]
        total_links += len(targets)
        for target, reason in check_file(path):
            print(f"FAIL {path.relative_to(REPO_ROOT)}: ({target}) {reason}")
            failures += 1
    print(
        f"checked {total_links} relative link(s) across {len(files)} file(s): "
        f"{failures} broken"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
