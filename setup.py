"""Legacy setup script (also the single source of project metadata).

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 660 editable installs cannot build their metadata wheel.  Keeping a
``setup.py`` (and no ``[build-system]`` table) lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path, which works without
``wheel``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-pdsl",
    version="0.7.0",
    description=(
        "Reproduction of PDSL (ICDCS 2025): Shapley-weighted, differentially "
        "private decentralized stochastic learning, with dense and sparse "
        "gossip engines, a resumable parallel experiment orchestrator and a "
        "first-class benchmark harness"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            # Durable/resumable experiment grids: run, resume, status, report.
            "repro-run=repro.experiments.cli:main",
            # Benchmark suites, BENCH_<n>.json artifacts, regression gate.
            "repro-bench=repro.bench.cli:main",
        ],
    },
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        # CSR mixing matrices, sparse-aware spectral diagnostics (eigsh)
        # and the DP-CGA min-norm QP.
        "scipy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
