"""Legacy setup shim.

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 660 editable installs cannot build their metadata wheel.  Keeping a
``setup.py`` (and omitting the ``[build-system]`` table from pyproject.toml)
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works without ``wheel``.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
