"""PDSL reproduction: privacy-preserved decentralized stochastic learning.

A from-scratch Python implementation of the system described in
"PDSL: Privacy-Preserved Decentralized Stochastic Learning with Heterogeneous
Data Distribution" (ICDCS 2025), including every substrate the algorithm
depends on:

* ``repro.nn`` — NumPy neural-network substrate (layers, models, losses);
* ``repro.data`` — synthetic datasets and non-IID (Dirichlet) partitioning;
* ``repro.topology`` — communication graphs and doubly stochastic mixing;
* ``repro.privacy`` — clipping, Gaussian mechanism, calibration, accounting;
* ``repro.game`` — cooperative games and (Monte-Carlo) Shapley values;
* ``repro.core`` — the PDSL algorithm (Algorithm 1 & 2);
* ``repro.baselines`` — DP-DPSGD, MUFFLIATO, DP-CGA, DP-NET-FLEET, DMSGD;
* ``repro.simulation`` — message-passing network, metrics and the round loop;
* ``repro.analysis`` — Theorem 1 / Theorem 2 / Corollary 1 bound evaluation;
* ``repro.experiments`` — the harness reproducing Figures 1–6 and Tables I–II.

Quickstart::

    from repro.experiments import fast_spec, run_comparison

    histories = run_comparison(fast_spec(num_agents=6, epsilon=0.3))
    for name, history in histories.items():
        print(name, history.final_loss(), history.final_test_accuracy)
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "topology",
    "privacy",
    "game",
    "core",
    "baselines",
    "simulation",
    "analysis",
    "experiments",
    "__version__",
]
