"""Theoretical-analysis helpers: Theorem 1, Theorem 2 and Corollary 1.

These functions evaluate the paper's closed-form bounds for a given
configuration so experiments can report the predicted privacy noise floor
and the predicted convergence envelope alongside the measured curves.
"""

from repro.analysis.privacy_bounds import theorem1_sigma_bound
from repro.analysis.convergence import (
    ConvergenceConstants,
    corollary1_rate,
    learning_rate_interval,
    theorem2_bound,
)

__all__ = [
    "theorem1_sigma_bound",
    "ConvergenceConstants",
    "learning_rate_interval",
    "theorem2_bound",
    "corollary1_rate",
]
