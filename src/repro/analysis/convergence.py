"""Theorem 2 and Corollary 1: the convergence bound of PDSL.

Theorem 2 bounds the running average of the squared gradient norm of the
network-average model:

    (1/T) sum_t E||grad F(x_bar^{t-1})||^2
        <= (F(x_bar^0) - F*) / (m1 T)
           + (m2 + m3 * gamma^2 alpha^2 / (1-alpha)^4 + m4)
             * (4C^2/omega_min^4 + 4 sigma^2 d / omega_min^4 + 2 zeta^2 / M)
           + m5 * ( 16 gamma^2 (C^2 + sigma^2 d) / (omega_min^4 (1-alpha)^2 (1-sqrt(rho))^2)
                    + 4 gamma^2 (7 zeta^2 + 13 kappa^2) / ((1-alpha)^2 (1-sqrt(rho))^2) )

with the constants ``m1..m5`` of eq. 33 and the learning-rate window of
eq. 31/85.  Corollary 1 specialises this to gamma = O(1/sqrt(T)) and yields
the ``O(1/sqrt(T) + sigma^2 d / sqrt(T) + ...)`` rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "ConvergenceConstants",
    "learning_rate_interval",
    "theorem2_bound",
    "corollary1_rate",
]


@dataclass(frozen=True)
class ConvergenceConstants:
    """Problem constants appearing in Assumptions 1–3 and Theorem 2.

    Attributes
    ----------
    smoothness:
        ``L`` — Lipschitz constant of the gradients (Assumption 1).
    gradient_variance:
        ``zeta^2`` — variance bound of the stochastic gradients (Assumption 2).
    heterogeneity:
        ``kappa^2`` — bound on the deviation between local and global
        gradients (Assumption 2); larger means more non-IID data.
    rho:
        ``rho`` from Assumption 3; ``sqrt(rho)`` is the second-largest
        eigenvalue magnitude of the mixing matrix.
    omega_min:
        Smallest positive mixing weight.
    """

    smoothness: float
    gradient_variance: float
    heterogeneity: float
    rho: float
    omega_min: float

    def __post_init__(self) -> None:
        if self.smoothness <= 0:
            raise ValueError("smoothness L must be positive")
        if self.gradient_variance < 0 or self.heterogeneity < 0:
            raise ValueError("variance constants must be non-negative")
        if not 0.0 <= self.rho < 1.0:
            raise ValueError("rho must lie in [0, 1)")
        if not 0.0 < self.omega_min <= 1.0:
            raise ValueError("omega_min must lie in (0, 1]")


def learning_rate_interval(
    constants: ConvergenceConstants, momentum: float
) -> Tuple[float, float]:
    """The (lower, upper) learning-rate window of eq. 31 / eq. 85.

    The lower endpoint ``(1-alpha)^2 / alpha`` comes from requiring ``m1 > 0``
    and the upper endpoint is the minimum of the two expressions in eq. 85.
    Returns ``(lower, upper)``.

    Reproduction note: as literally transcribed from the paper the window is
    *empty for every momentum value* — the eq. 84 root is bounded above by
    ``(1-alpha)^2 / (2 alpha)``, i.e. half the lower endpoint.  This appears
    to be an inconsistency in the published condition (see EXPERIMENTS.md);
    :func:`theorem2_bound` therefore only enforces the ``m1 > 0`` part.
    """
    if not 0.0 < momentum < 1.0:
        raise ValueError("momentum must lie in (0, 1) for the Theorem 2 window")
    l_const = constants.smoothness
    sqrt_rho = math.sqrt(constants.rho)
    one_minus = 1.0 - momentum
    lower = one_minus**2 / momentum
    upper_a = one_minus * (1.0 - sqrt_rho) / (2.0 * math.sqrt(26.0) * l_const)
    gap = 1.0 - sqrt_rho
    upper_b = (
        gap * math.sqrt(52.0 * l_const**2 * one_minus**2 + momentum**2 * gap**2)
        - momentum * gap**2
    ) / (52.0 * l_const**2)
    return lower, min(upper_a, upper_b)


def _m_constants(
    constants: ConvergenceConstants, learning_rate: float, momentum: float
) -> Tuple[float, float, float, float, float]:
    """The constants m1..m5 of eq. 33."""
    gamma = learning_rate
    alpha = momentum
    l_const = constants.smoothness
    one_minus = 1.0 - alpha
    m1 = gamma / (2.0 * one_minus) - one_minus / (2.0 * alpha)
    if m1 <= 0:
        raise ValueError(
            "m1 <= 0: the learning rate is below the Theorem 2 window "
            "(gamma must exceed (1-alpha)^2/alpha)"
        )
    m2 = (alpha * l_const * gamma**2 / (2.0 * one_minus**3) + l_const * gamma**2 / (2.0 * one_minus**2)) / m1
    m3 = l_const * one_minus / (2.0 * m1 * alpha)
    m4 = alpha * gamma**2 / (2.0 * m1 * one_minus**3)
    m5 = l_const**2 * gamma / (2.0 * m1 * one_minus)
    return m1, m2, m3, m4, m5


def theorem2_bound(
    constants: ConvergenceConstants,
    learning_rate: float,
    momentum: float,
    num_rounds: int,
    num_agents: int,
    clip_threshold: float,
    sigma: float,
    dimension: int,
    initial_gap: float,
) -> float:
    """Evaluate the right-hand side of Theorem 2 (eq. 32).

    Parameters
    ----------
    initial_gap:
        ``F(x_bar^0) - F*`` — the initial optimality gap.
    """
    if num_rounds <= 0 or num_agents <= 0 or dimension <= 0:
        raise ValueError("num_rounds, num_agents and dimension must be positive")
    if clip_threshold <= 0 or sigma < 0 or initial_gap < 0:
        raise ValueError("clip_threshold must be positive; sigma, initial_gap non-negative")
    gamma = learning_rate
    alpha = momentum
    m1, m2, m3, m4, m5 = _m_constants(constants, gamma, alpha)
    one_minus = 1.0 - alpha
    sqrt_rho = math.sqrt(constants.rho)
    gap = 1.0 - sqrt_rho
    omega4 = constants.omega_min**4

    term_initial = initial_gap / (m1 * num_rounds)
    noise_block = (
        4.0 * clip_threshold**2 / omega4
        + 4.0 * sigma**2 * dimension / omega4
        + 2.0 * constants.gradient_variance / num_agents
    )
    term_noise = (m2 + m3 * gamma**2 * alpha**2 / one_minus**4 + m4) * noise_block
    consensus_block = (
        16.0 * gamma**2 * (clip_threshold**2 + sigma**2 * dimension)
        / (omega4 * one_minus**2 * gap**2)
        + 4.0 * gamma**2 * (7.0 * constants.gradient_variance + 13.0 * constants.heterogeneity)
        / (one_minus**2 * gap**2)
    )
    term_consensus = m5 * consensus_block
    return float(term_initial + term_noise + term_consensus)


def corollary1_rate(
    num_rounds: int,
    num_agents: int,
    sigma: float,
    dimension: int,
    constant: float = 1.0,
) -> float:
    """The Corollary 1 envelope ``K (1/sqrt(T) + sigma^2 d/sqrt(T) + 1/(M sqrt(T)) + 1/T + sigma^2 d/T)``."""
    if num_rounds <= 0 or num_agents <= 0 or dimension <= 0:
        raise ValueError("num_rounds, num_agents and dimension must be positive")
    if sigma < 0 or constant <= 0:
        raise ValueError("sigma must be non-negative and constant positive")
    sqrt_t = math.sqrt(num_rounds)
    noise = sigma**2 * dimension
    return float(
        constant
        * (1.0 / sqrt_t + noise / sqrt_t + 1.0 / (num_agents * sqrt_t) + 1.0 / num_rounds + noise / num_rounds)
    )
