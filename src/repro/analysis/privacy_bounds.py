"""Theorem 1: the per-round noise floor guaranteeing (epsilon, delta)-DP.

This module is a thin, analysis-oriented wrapper around
:func:`repro.privacy.calibration.pdsl_sigma_for_topology` that also exposes
per-agent breakdowns, which the privacy ablation benchmark prints.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.privacy.calibration import pdsl_sigma_lower_bound
from repro.topology.graphs import Topology

__all__ = ["theorem1_sigma_bound"]


def theorem1_sigma_bound(
    topology: Topology,
    epsilon: float,
    delta: float,
    clip_threshold: float,
    phi_min: Optional[float] = None,
    per_agent: bool = False,
) -> float | Dict[int, float]:
    """Evaluate the Theorem 1 lower bound on sigma for a topology.

    Parameters
    ----------
    per_agent:
        If True, return the dictionary of per-agent bounds (the max of which
        is the Theorem 1 bound); otherwise return the max directly.
    phi_min:
        The smallest normalised Shapley share assumed; defaults to the
        uniform value ``1 / max_i |M_i|``.
    """
    omega_min = topology.min_weight()
    if phi_min is None:
        largest = max(
            len(topology.neighbors(i, include_self=True)) for i in range(topology.num_agents)
        )
        phi_min = 1.0 / float(largest)
    bounds: Dict[int, float] = {}
    for agent in range(topology.num_agents):
        neighbors = topology.neighbors(agent, include_self=True)
        weights = [topology.weight(agent, j) for j in neighbors]
        bounds[agent] = pdsl_sigma_lower_bound(
            epsilon=epsilon,
            delta=delta,
            clip_threshold=clip_threshold,
            neighbor_weights=weights,
            omega_min=omega_min,
            phi_min=phi_min,
        )
    if per_agent:
        return bounds
    return float(max(bounds.values()))
