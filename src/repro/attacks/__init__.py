"""Privacy attacks against exchanged gradients.

The paper motivates its DP mechanism with the observation that sharing
(cross-)gradient information leaks private data (Sec. I–II, citing
membership-inference [Shokri et al.], model-inversion [Fredrikson et al.] and
deep-leakage-from-gradients [Zhu et al.] attacks).  This package implements
lightweight versions of two such attacks so the defence can be evaluated
quantitatively inside this repository:

* :func:`gradient_inversion_attack` / :class:`GradientInversionAttack` —
  reconstruct the input features of a victim batch from an observed gradient
  by optimising a dummy batch whose gradient matches the observation (the
  "deep leakage from gradients" recipe, implemented with NumPy finite
  batches and analytic gradients).
* :func:`membership_inference_attack` — the classic loss-threshold attack
  (Yeom et al.): declare a sample a training member if the model's loss on
  it is below a threshold fitted on known member/non-member populations.
* :class:`FleetInversionAttack` / :func:`membership_inference_fleet` — the
  batched fleet-scale engines: all ``N`` victims attacked simultaneously
  through stacked ``(N, B, ...)`` model evaluations
  (:mod:`repro.nn.batched`), bit-identical to the per-victim loops thanks to
  per-victim RNG streams and bit-exact stacked chunking.

All attacks operate on exactly the artefacts PDSL exchanges (clipped,
optionally noised gradient vectors and model parameters), so the ablation
benchmark and the privacy-frontier campaign
(:mod:`repro.experiments.privacy_frontier`) can show attack success decaying
as the privacy budget shrinks.
"""

from repro.attacks.fleet import (
    INVERSION_STREAM_TAG,
    MEMBERSHIP_STREAM_TAG,
    FleetInversionAttack,
    FleetInversionResult,
    FleetMembershipResult,
    inversion_stream,
    membership_inference_fleet,
    membership_losses_fleet,
    membership_stream,
)
from repro.attacks.gradient_inversion import (
    GradientInversionAttack,
    InversionResult,
    gradient_inversion_attack,
    infer_label_counts,
    pairwise_reconstruction_distances,
    reconstruction_error,
)
from repro.attacks.membership_inference import (
    MembershipInferenceResult,
    membership_inference_attack,
    per_sample_losses,
    threshold_attack,
)

__all__ = [
    "GradientInversionAttack",
    "InversionResult",
    "gradient_inversion_attack",
    "infer_label_counts",
    "pairwise_reconstruction_distances",
    "reconstruction_error",
    "MembershipInferenceResult",
    "membership_inference_attack",
    "per_sample_losses",
    "threshold_attack",
    "INVERSION_STREAM_TAG",
    "MEMBERSHIP_STREAM_TAG",
    "FleetInversionAttack",
    "FleetInversionResult",
    "FleetMembershipResult",
    "inversion_stream",
    "membership_inference_fleet",
    "membership_losses_fleet",
    "membership_stream",
]
