"""Privacy attacks against exchanged gradients.

The paper motivates its DP mechanism with the observation that sharing
(cross-)gradient information leaks private data (Sec. I–II, citing
membership-inference [Shokri et al.], model-inversion [Fredrikson et al.] and
deep-leakage-from-gradients [Zhu et al.] attacks).  This package implements
lightweight versions of two such attacks so the defence can be evaluated
quantitatively inside this repository:

* :func:`gradient_inversion_attack` / :class:`GradientInversionAttack` —
  reconstruct the input features of a victim batch from an observed gradient
  by optimising a dummy batch whose gradient matches the observation (the
  "deep leakage from gradients" recipe, implemented with NumPy finite
  batches and analytic gradients).
* :func:`membership_inference_attack` — the classic loss-threshold attack
  (Yeom et al.): declare a sample a training member if the model's loss on
  it is below a threshold fitted on known member/non-member populations.

Both attacks operate on exactly the artefacts PDSL exchanges (clipped,
optionally noised gradient vectors and model parameters), so the ablation
benchmark can show attack success decaying as the privacy budget shrinks.
"""

from repro.attacks.gradient_inversion import (
    GradientInversionAttack,
    InversionResult,
    gradient_inversion_attack,
    reconstruction_error,
)
from repro.attacks.membership_inference import (
    MembershipInferenceResult,
    membership_inference_attack,
)

__all__ = [
    "GradientInversionAttack",
    "InversionResult",
    "gradient_inversion_attack",
    "reconstruction_error",
    "MembershipInferenceResult",
    "membership_inference_attack",
]
