"""Fleet-scale batched privacy attacks.

The per-victim attacks in :mod:`repro.attacks.gradient_inversion` and
:mod:`repro.attacks.membership_inference` cost one Python-level model
evaluation per victim per probe — O(N) interpreter round trips per SPSA
iteration across a fleet.  This module batches both through the stacked
engine (:class:`~repro.nn.batched.StackedSequential`):

* :class:`FleetInversionAttack` reconstructs all ``N`` victim batches
  simultaneously — each SPSA iteration issues three stacked ``(N, B, ...)``
  forward/backward passes instead of ``3 * N`` per-victim evaluations.
* :func:`membership_inference_fleet` scores per-example losses for many
  ``(agent, checkpoint)`` parameter rows in one
  :meth:`~repro.nn.batched.StackedSequential.per_example_losses` pass and
  fits the Yeom et al. loss threshold per row.

Both are **bit-identical** to running the per-victim attacks in a loop.
Two ingredients make that exact rather than approximate:

1. Per-victim RNG streams.  Victim ``v`` draws from
   ``np.random.default_rng([seed, tag, v])`` — the same independent-stream
   convention the compression codecs (``0xC0DEC``) and privacy mechanisms
   use — so batched and sequential runs consume identical random numbers
   regardless of scheduling.
2. Bit-exact stacked chunking.  ``StackedSequential`` evaluates an ``M``-row
   stack in row chunks whose results are independent of the chunk size, so
   the fleet's ``M = N`` evaluation equals ``N`` separate ``M = 1``
   evaluations bit for bit — and the single-victim attacks themselves route
   through ``M = 1`` stacked evaluation whenever the model is stackable.

Models the stacked engine cannot express (CNNs) fall back to looping the
single-victim attacks with the same per-victim streams, so equivalence holds
there too (just without the speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.attacks.gradient_inversion import (
    GradientInversionAttack,
    InversionResult,
    infer_label_counts,
    reconstruction_error,
)
from repro.attacks.membership_inference import (
    MembershipInferenceResult,
    per_sample_losses,
    threshold_attack,
)
from repro.data.dataset import Dataset
from repro.nn.batched import StackedSequential, supports_stacked
from repro.nn.model import Model

__all__ = [
    "INVERSION_STREAM_TAG",
    "MEMBERSHIP_STREAM_TAG",
    "FleetInversionResult",
    "FleetInversionAttack",
    "FleetMembershipResult",
    "membership_losses_fleet",
    "membership_inference_fleet",
]

# Domain-separation tags for the per-victim RNG streams, following the
# ``default_rng([seed, tag, agent])`` convention established by the
# compression codecs (0xC0DEC in repro/compression/state.py).
INVERSION_STREAM_TAG = 0xA77AC
MEMBERSHIP_STREAM_TAG = 0x313A


def inversion_stream(seed: int, victim: int) -> np.random.Generator:
    """The RNG stream victim ``victim`` consumes during fleet inversion."""
    return np.random.default_rng([int(seed), INVERSION_STREAM_TAG, int(victim)])


def membership_stream(seed: int, row: int) -> np.random.Generator:
    """The RNG stream parameter row ``row`` consumes during fleet membership."""
    return np.random.default_rng([int(seed), MEMBERSHIP_STREAM_TAG, int(row)])


# ----------------------------------------------------------------------
# Fleet gradient inversion
# ----------------------------------------------------------------------
@dataclass
class FleetInversionResult:
    """Outcome of a fleet-wide gradient-inversion attack."""

    reconstructed_inputs: np.ndarray  # (N, B, *input_shape)
    inferred_labels: np.ndarray  # (N, B)
    matching_losses: np.ndarray  # (N,)
    iterations: int

    @property
    def num_victims(self) -> int:
        return int(self.reconstructed_inputs.shape[0])

    def victim(self, index: int) -> InversionResult:
        """The per-victim view, matching ``GradientInversionAttack.run``."""
        return InversionResult(
            reconstructed_inputs=self.reconstructed_inputs[index],
            inferred_labels=self.inferred_labels[index],
            matching_loss=float(self.matching_losses[index]),
            iterations=self.iterations,
        )

    def errors_against(self, true_inputs: np.ndarray) -> np.ndarray:
        """Per-victim greedy-matched reconstruction MSE against the true batches."""
        true_inputs = np.asarray(true_inputs, dtype=np.float64)
        if true_inputs.shape[0] != self.num_victims:
            raise ValueError("true_inputs must provide one batch per victim")
        return np.array(
            [
                reconstruction_error(true_inputs[v], self.reconstructed_inputs[v])
                for v in range(self.num_victims)
            ]
        )


class FleetInversionAttack:
    """Reconstruct every victim batch of a fleet in one batched SPSA loop.

    Parameters
    ----------
    model:
        The shared architecture (every agent holds the same one).
    num_classes, learning_rate, iterations:
        As in :class:`~repro.attacks.gradient_inversion.GradientInversionAttack`.
    seed:
        Base seed of the per-victim streams
        ``default_rng([seed, INVERSION_STREAM_TAG, victim])``.
    """

    def __init__(
        self,
        model: Model,
        num_classes: int,
        learning_rate: float = 0.5,
        iterations: int = 200,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        if learning_rate <= 0 or iterations <= 0:
            raise ValueError("learning_rate and iterations must be positive")
        self.model = model
        self.num_classes = int(num_classes)
        self.learning_rate = float(learning_rate)
        self.iterations = int(iterations)
        self.seed = int(seed)
        self._stacked = StackedSequential(model) if supports_stacked(model) else None

    def victim_rng(self, victim: int) -> np.random.Generator:
        return inversion_stream(self.seed, victim)

    def single_attack(self, victim: int) -> GradientInversionAttack:
        """The sequential attack the fleet run is bit-identical to for ``victim``."""
        return GradientInversionAttack(
            self.model,
            num_classes=self.num_classes,
            learning_rate=self.learning_rate,
            iterations=self.iterations,
            rng=self.victim_rng(victim),
        )

    # ------------------------------------------------------------------
    def _fleet_matching_losses(
        self,
        params: np.ndarray,
        dummies: np.ndarray,
        labels: np.ndarray,
        targets: np.ndarray,
        input_shape: Tuple[int, ...],
    ) -> np.ndarray:
        """``(N,)`` gradient-matching losses, one stacked backward for the fleet."""
        n, batch_size = dummies.shape[:2]
        inputs = dummies.reshape((n, batch_size) + input_shape)
        _, grads = self._stacked.loss_and_gradients(params, inputs, labels)
        diffs = grads - targets
        # Per-row np.dot mirrors the scalar attack's reduction exactly.
        return np.array([float(np.dot(row, row)) for row in diffs])

    def run(
        self,
        observed_gradients: np.ndarray,
        params: np.ndarray,
        batch_size: int,
        input_shape: Tuple[int, ...],
    ) -> FleetInversionResult:
        """Attack all victims at once.

        Parameters
        ----------
        observed_gradients:
            ``(N, d)`` matrix; row ``v`` is the gradient observed from victim
            ``v``.
        params:
            Either one shared ``(d,)`` parameter vector or an ``(N, d)``
            matrix of per-victim parameters (e.g. each victim's model at the
            round the gradient was captured).
        batch_size, input_shape:
            Shape of each victim batch to reconstruct.
        """
        observed = np.asarray(observed_gradients, dtype=np.float64)
        dimension = self.model.num_params
        if observed.ndim != 2 or observed.shape[1] != dimension:
            raise ValueError(
                f"observed_gradients must have shape (N, {dimension}), got {observed.shape}"
            )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        n = observed.shape[0]
        if n == 0:
            raise ValueError("need at least one victim")
        params = np.asarray(params, dtype=np.float64)
        if params.ndim == 1:
            if params.shape != (dimension,):
                raise ValueError("shared params must match the model dimension")
            params = np.broadcast_to(params, (n, dimension))
        elif params.shape != (n, dimension):
            raise ValueError(
                f"params must have shape ({n}, {dimension}) or ({dimension},), got {params.shape}"
            )

        if self._stacked is None:
            # Non-stackable model: same per-victim streams, sequential engine.
            results = [
                self.single_attack(v).run(observed[v], params[v], batch_size, input_shape)
                for v in range(n)
            ]
            return FleetInversionResult(
                reconstructed_inputs=np.stack([r.reconstructed_inputs for r in results]),
                inferred_labels=np.stack([r.inferred_labels for r in results]),
                matching_losses=np.array([r.matching_loss for r in results]),
                iterations=self.iterations,
            )

        # iDLG label inference is deterministic — identical per victim either way.
        labels = np.stack(
            [
                np.repeat(
                    np.arange(self.num_classes),
                    infer_label_counts(observed[v], batch_size, self.num_classes),
                )[:batch_size]
                for v in range(n)
            ]
        )

        rngs = [self.victim_rng(v) for v in range(n)]
        flat_dim = int(np.prod(input_shape))
        dummies = np.stack(
            [rng.normal(0.0, 0.5, size=(batch_size, flat_dim)) for rng in rngs]
        )
        losses = self._fleet_matching_losses(params, dummies, labels, observed, input_shape)

        # Batched SPSA: every victim advances through the same schedule as its
        # sequential counterpart; accept/reject and step decay are elementwise.
        steps = np.full(n, self.learning_rate, dtype=np.float64)
        eps = 1e-3
        for _ in range(self.iterations):
            directions = np.stack([rng.normal(size=(batch_size, flat_dim)) for rng in rngs])
            # Per-victim Frobenius norm via the same np.linalg.norm call the
            # scalar attack makes, keeping the normalisation bit-identical.
            norms = np.array(
                [max(np.linalg.norm(direction), 1e-12) for direction in directions]
            )
            directions /= norms[:, None, None]
            plus = self._fleet_matching_losses(
                params, dummies + eps * directions, labels, observed, input_shape
            )
            minus = self._fleet_matching_losses(
                params, dummies - eps * directions, labels, observed, input_shape
            )
            derivatives = (plus - minus) / (2 * eps)
            candidates = dummies - (steps * derivatives)[:, None, None] * directions
            candidate_losses = self._fleet_matching_losses(
                params, candidates, labels, observed, input_shape
            )
            improved = candidate_losses < losses
            dummies = np.where(improved[:, None, None], candidates, dummies)
            losses = np.where(improved, candidate_losses, losses)
            steps = np.where(improved, steps, steps * 0.97)

        return FleetInversionResult(
            reconstructed_inputs=dummies.reshape((n, batch_size) + tuple(input_shape)),
            inferred_labels=labels,
            matching_losses=losses,
            iterations=self.iterations,
        )


# ----------------------------------------------------------------------
# Fleet membership inference
# ----------------------------------------------------------------------
@dataclass
class FleetMembershipResult:
    """Per-row membership-inference outcomes for a stack of parameter rows."""

    results: List[MembershipInferenceResult]
    member_losses: np.ndarray  # (M, n_members)
    non_member_losses: np.ndarray  # (M, n_non_members)

    @property
    def advantages(self) -> np.ndarray:
        """``(M,)`` membership advantages (TPR - FPR) per parameter row."""
        return np.array([r.advantage for r in self.results])

    @property
    def mean_advantage(self) -> float:
        return float(self.advantages.mean())

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([r.accuracy for r in self.results]))


def _stack_datasets(datasets: Sequence[Dataset], rows: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(M, B, ...)`` inputs and ``(M, B)`` labels for the stacked scorer."""
    if len(datasets) != rows:
        raise ValueError(f"expected one dataset per row ({rows}), got {len(datasets)}")
    sizes = {len(d) for d in datasets}
    if len(sizes) != 1:
        raise ValueError("all per-row datasets must have the same length to stack")
    inputs = np.stack([np.asarray(d.inputs, dtype=np.float64) for d in datasets])
    labels = np.stack([np.asarray(d.labels, dtype=np.int64) for d in datasets])
    return inputs, labels


def _broadcast_dataset(dataset: Dataset, rows: int) -> Tuple[np.ndarray, np.ndarray]:
    inputs = np.asarray(dataset.inputs, dtype=np.float64)
    labels = np.asarray(dataset.labels, dtype=np.int64)
    # Zero-stride views: the shared dataset is scored under every row without
    # copying it M times.
    return (
        np.broadcast_to(inputs[None, ...], (rows,) + inputs.shape),
        np.broadcast_to(labels[None, ...], (rows,) + labels.shape),
    )


def membership_losses_fleet(
    model: Model,
    params_rows: np.ndarray,
    dataset: Union[Dataset, Sequence[Dataset]],
) -> np.ndarray:
    """Per-example losses for many parameter rows in one stacked pass.

    Parameters
    ----------
    params_rows:
        ``(M, d)`` matrix of flat parameter vectors — e.g. one row per agent,
        or the same agent across checkpoints.
    dataset:
        One :class:`Dataset` scored under every row (broadcast without
        copying), or a sequence of ``M`` equally sized datasets (one per
        row, e.g. each agent's own shard).

    Returns
    -------
    ``(M, B)`` matrix where row ``k`` is bit-identical to
    :func:`repro.attacks.membership_inference.per_sample_losses` at
    ``params_rows[k]``.
    """
    params_rows = np.asarray(params_rows, dtype=np.float64)
    if params_rows.ndim != 2:
        raise ValueError(f"params_rows must be 2-D (M, d), got shape {params_rows.shape}")
    rows = params_rows.shape[0]
    if isinstance(dataset, Dataset):
        inputs, labels = _broadcast_dataset(dataset, rows)
        per_row: Optional[Sequence[Dataset]] = None
    else:
        per_row = list(dataset)
        inputs, labels = _stack_datasets(per_row, rows)
    if supports_stacked(model):
        engine = StackedSequential(model)
        return engine.per_example_losses(params_rows, inputs, labels)
    # Fallback for non-stackable models: per-row scoring, same values.
    datasets = per_row if per_row is not None else [dataset] * rows
    return np.stack(
        [per_sample_losses(model, params_rows[k], datasets[k]) for k in range(rows)]
    )


def membership_inference_fleet(
    model: Model,
    params_rows: np.ndarray,
    members: Union[Dataset, Sequence[Dataset]],
    non_members: Union[Dataset, Sequence[Dataset]],
    calibration_fraction: float = 0.5,
    seed: int = 0,
) -> FleetMembershipResult:
    """Loss-threshold membership inference against many parameter rows at once.

    Scores the member and non-member populations for all ``M`` rows with two
    stacked forward passes, then fits/evaluates the threshold per row.  Row
    ``k`` is bit-identical to
    :func:`~repro.attacks.membership_inference.membership_inference_attack`
    called with ``rng = membership_stream(seed, k)`` — the per-row stream
    convention that makes batched and sequential campaigns interchangeable.

    Parameters
    ----------
    members, non_members:
        Either one shared dataset or a sequence of ``M`` per-row datasets
        (members are typically each agent's own training shard).
    """
    params_rows = np.asarray(params_rows, dtype=np.float64)
    if params_rows.ndim != 2:
        raise ValueError(f"params_rows must be 2-D (M, d), got shape {params_rows.shape}")
    member_losses = membership_losses_fleet(model, params_rows, members)
    non_member_losses = membership_losses_fleet(model, params_rows, non_members)
    if member_losses.shape[1] < 4 or non_member_losses.shape[1] < 4:
        raise ValueError("need at least 4 member and 4 non-member examples")
    results = [
        threshold_attack(
            member_losses[row],
            non_member_losses[row],
            calibration_fraction=calibration_fraction,
            rng=membership_stream(seed, row),
        )
        for row in range(params_rows.shape[0])
    ]
    return FleetMembershipResult(
        results=results,
        member_losses=member_losses,
        non_member_losses=non_member_losses,
    )
