"""Gradient-inversion ("deep leakage from gradients") attack.

An honest-but-curious neighbour observes a victim's gradient ``g_victim``
(in PDSL: a cross-gradient returned by the victim, or the victim's local
gradient in a baseline algorithm) together with the model parameters at
which it was computed.  The attacker reconstructs the victim's batch by
optimising a *dummy* batch ``(X, y)`` so that the model's gradient on the
dummy batch matches the observation:

    minimise_X  || grad(params; X, y_guess) - g_victim ||^2

For classification models the label distribution of the batch can be
recovered directly from the sign structure of the output-layer bias gradient
(Zhao et al., "iDLG"), so the attack below first infers labels and then
optimises the inputs with simple gradient descent on the matching loss
(gradients of the matching loss with respect to the dummy inputs are
computed by finite differences in a low-dimensional random subspace to stay
framework-free; for the linear models used in the experiments the attack is
near-exact when no DP noise is added).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.batched import StackedSequential, supports_stacked
from repro.nn.model import Model

__all__ = [
    "InversionResult",
    "GradientInversionAttack",
    "gradient_inversion_attack",
    "infer_label_counts",
    "pairwise_reconstruction_distances",
    "reconstruction_error",
]


def pairwise_reconstruction_distances(
    original: np.ndarray, reconstructed: np.ndarray, max_block_elements: int = 4_000_000
) -> np.ndarray:
    """``(n, m)`` matrix of per-pair mean squared errors between flattened rows.

    Row blocks bound the ``(block, m, features)`` broadcast temporary so huge
    fleets don't materialise an ``n * m * f`` cube.  Each entry is computed
    with the same elementwise-then-mean reduction as a per-pair
    ``np.mean((a - b) ** 2)``, so the matrix is bit-identical to the scalar
    loop it replaces.
    """
    original = np.asarray(original, dtype=np.float64).reshape(len(original), -1)
    reconstructed = np.asarray(reconstructed, dtype=np.float64).reshape(len(reconstructed), -1)
    if original.shape[1] != reconstructed.shape[1]:
        raise ValueError("original and reconstructed rows must have the same size")
    n, m = original.shape[0], reconstructed.shape[0]
    features = max(1, original.shape[1])
    distances = np.empty((n, m), dtype=np.float64)
    block = max(1, max_block_elements // max(1, m * features))
    for start in range(0, n, block):
        stop = min(n, start + block)
        diff = original[start:stop, None, :] - reconstructed[None, :, :]
        distances[start:stop] = np.mean(diff**2, axis=2)
    return distances


def reconstruction_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between victim inputs and their reconstruction.

    Rows are matched greedily by nearest neighbour because gradient matching
    recovers the *set* of examples, not their order within the batch.  The
    pairwise distance matrix is precomputed in one vectorised pass; the greedy
    assignment (including argmin tie-breaking) visits pairs in exactly the
    order of the historical O(n^2) Python loop.
    """
    original = np.asarray(original, dtype=np.float64).reshape(len(original), -1)
    reconstructed = np.asarray(reconstructed, dtype=np.float64).reshape(len(reconstructed), -1)
    if original.shape[0] == 0 or reconstructed.shape[0] == 0:
        raise ValueError("both batches must be non-empty")
    distances = pairwise_reconstruction_distances(original, reconstructed)
    available = np.ones(reconstructed.shape[0], dtype=bool)
    errors = []
    for i in range(original.shape[0]):
        columns = np.flatnonzero(available)
        row = distances[i, columns]
        best = int(np.argmin(row))
        errors.append(float(row[best]))
        available[columns[best]] = False
        if not available.any():
            break
    return float(np.mean(errors))


def infer_label_counts(
    observed_gradient: np.ndarray, batch_size: int, num_classes: int
) -> np.ndarray:
    """Estimate how many examples of each class the victim batch contains.

    For a softmax classifier the gradient of the mean loss with respect to
    the output bias is ``mean(softmax - onehot)``; classes present in the
    batch therefore have markedly negative bias-gradient entries.  We
    allocate the batch to classes proportionally to the negative part
    (Zhao et al., "iDLG").  Deterministic, so the fleet attack and the
    sequential per-victim attack infer identical labels.
    """
    bias_grad = np.asarray(observed_gradient, dtype=np.float64)[-num_classes:]
    negative = np.clip(-bias_grad, 0.0, None)
    if negative.sum() <= 1e-12:
        # noise destroyed the signal: fall back to a uniform guess
        counts = np.full(num_classes, batch_size // num_classes, dtype=np.int64)
        counts[: batch_size - counts.sum()] += 1
        return counts
    proportions = negative / negative.sum()
    counts = np.floor(proportions * batch_size).astype(np.int64)
    while counts.sum() < batch_size:
        counts[int(np.argmax(proportions - counts / batch_size))] += 1
    return counts


@dataclass
class InversionResult:
    """Outcome of a gradient-inversion attack."""

    reconstructed_inputs: np.ndarray
    inferred_labels: np.ndarray
    matching_loss: float
    iterations: int

    def error_against(self, true_inputs: np.ndarray) -> float:
        return reconstruction_error(true_inputs, self.reconstructed_inputs)


class GradientInversionAttack:
    """Reconstruct a victim batch from an observed gradient.

    Parameters
    ----------
    model:
        The shared model architecture (the attacker knows it — in PDSL every
        agent holds the same architecture).
    num_classes:
        Number of output classes.
    learning_rate, iterations:
        Optimisation schedule for the dummy-input matching.
    rng:
        Randomness for the dummy initialisation.

    Notes
    -----
    When the model is stackable (``supports_stacked``) the matching loss is
    evaluated through a one-row :class:`~repro.nn.batched.StackedSequential`
    instead of ``Model.loss_and_gradient``.  Stacked chunking is bit-exact,
    so an ``M = N`` fleet evaluation decomposes into exactly these ``M = 1``
    evaluations — which is what makes
    :class:`~repro.attacks.fleet.FleetInversionAttack` bit-identical to ``N``
    sequential ``run`` calls.  Convolutional models fall back to the
    per-model path.
    """

    def __init__(
        self,
        model: Model,
        num_classes: int,
        learning_rate: float = 0.5,
        iterations: int = 200,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        if learning_rate <= 0 or iterations <= 0:
            raise ValueError("learning_rate and iterations must be positive")
        self.model = model
        self.num_classes = int(num_classes)
        self.learning_rate = float(learning_rate)
        self.iterations = int(iterations)
        self.rng = rng or np.random.default_rng(0)
        self._stacked = StackedSequential(model) if supports_stacked(model) else None

    # ------------------------------------------------------------------
    # Label inference (iDLG-style)
    # ------------------------------------------------------------------
    def infer_label_counts(self, observed_gradient: np.ndarray, batch_size: int) -> np.ndarray:
        """Per-class example counts of the victim batch (iDLG bias-gradient rule)."""
        return infer_label_counts(observed_gradient, batch_size, self.num_classes)

    def _matching_loss(
        self, params: np.ndarray, dummy_inputs: np.ndarray, dummy_labels: np.ndarray, target: np.ndarray
    ) -> float:
        if self._stacked is not None:
            _, grads = self._stacked.loss_and_gradients(
                np.asarray(params, dtype=np.float64)[None, :],
                np.asarray(dummy_inputs, dtype=np.float64)[None, ...],
                np.asarray(dummy_labels, dtype=np.int64)[None, :],
            )
            diff = grads[0] - target
        else:
            _, grad = self.model.loss_and_gradient(dummy_inputs, dummy_labels, params=params)
            diff = grad - target
        return float(np.dot(diff, diff))

    # ------------------------------------------------------------------
    # Input reconstruction
    # ------------------------------------------------------------------
    def run(
        self,
        observed_gradient: np.ndarray,
        params: np.ndarray,
        batch_size: int,
        input_shape: Tuple[int, ...],
    ) -> InversionResult:
        """Run the attack and return the reconstructed batch."""
        observed_gradient = np.asarray(observed_gradient, dtype=np.float64)
        if observed_gradient.shape != (self.model.num_params,):
            raise ValueError("observed_gradient must match the model dimension")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")

        counts = self.infer_label_counts(observed_gradient, batch_size)
        labels = np.repeat(np.arange(self.num_classes), counts)[:batch_size]

        flat_dim = int(np.prod(input_shape))
        dummy = self.rng.normal(0.0, 0.5, size=(batch_size, flat_dim))
        loss = self._matching_loss(params, dummy.reshape((batch_size,) + input_shape), labels, observed_gradient)

        # Coordinate-free descent: perturb along random Gaussian directions and
        # keep improvements (SPSA-style two-point estimate).  This keeps the
        # attack independent of the model internals while remaining effective
        # for the small models used in the experiments.
        step = self.learning_rate
        for iteration in range(self.iterations):
            direction = self.rng.normal(size=dummy.shape)
            direction /= max(np.linalg.norm(direction), 1e-12)
            eps = 1e-3
            plus = self._matching_loss(
                params, (dummy + eps * direction).reshape((batch_size,) + input_shape), labels, observed_gradient
            )
            minus = self._matching_loss(
                params, (dummy - eps * direction).reshape((batch_size,) + input_shape), labels, observed_gradient
            )
            directional_derivative = (plus - minus) / (2 * eps)
            candidate = dummy - step * directional_derivative * direction
            candidate_loss = self._matching_loss(
                params, candidate.reshape((batch_size,) + input_shape), labels, observed_gradient
            )
            if candidate_loss < loss:
                dummy, loss = candidate, candidate_loss
            else:
                step *= 0.97  # shrink the step when progress stalls
        return InversionResult(
            reconstructed_inputs=dummy.reshape((batch_size,) + input_shape),
            inferred_labels=labels,
            matching_loss=loss,
            iterations=self.iterations,
        )


def gradient_inversion_attack(
    model: Model,
    observed_gradient: np.ndarray,
    params: np.ndarray,
    batch_size: int,
    input_shape: Tuple[int, ...],
    num_classes: int,
    iterations: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> InversionResult:
    """Functional wrapper around :class:`GradientInversionAttack`."""
    attack = GradientInversionAttack(
        model, num_classes=num_classes, iterations=iterations, rng=rng
    )
    return attack.run(observed_gradient, params, batch_size, input_shape)
