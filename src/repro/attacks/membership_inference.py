"""Loss-threshold membership-inference attack (Yeom et al., 2018).

Given a (possibly privately trained) model, an attacker who can query the
model's loss decides whether a specific example was part of the training
set: members tend to have lower loss than non-members.  The attack here fits
a single threshold on a calibration split and reports its accuracy and
advantage (true-positive rate minus false-positive rate) on a held-out
evaluation split.  DP training bounds the achievable advantage, which is the
quantitative story the ablation benchmark tells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.batched import StackedSequential, supports_stacked
from repro.nn.losses import per_example_cross_entropy
from repro.nn.model import Model

__all__ = [
    "MembershipInferenceResult",
    "membership_inference_attack",
    "per_sample_losses",
    "threshold_attack",
]


@dataclass
class MembershipInferenceResult:
    """Outcome of the loss-threshold membership-inference attack."""

    threshold: float
    accuracy: float
    true_positive_rate: float
    false_positive_rate: float

    @property
    def advantage(self) -> float:
        """Membership advantage ``TPR - FPR`` (0 = no leakage, 1 = full leakage)."""
        return float(self.true_positive_rate - self.false_positive_rate)


def per_sample_losses(
    model: Model,
    params: np.ndarray,
    dataset: Dataset,
    engine: Optional[StackedSequential] = None,
) -> np.ndarray:
    """Per-example cross-entropy losses at the given parameters.

    Stackable models are scored through a one-row
    :class:`~repro.nn.batched.StackedSequential` forward (pass ``engine`` to
    reuse a prebuilt plan); because stacked chunking is bit-exact, the fleet
    scorer :func:`repro.attacks.fleet.membership_losses_fleet` reproduces
    these values row for row.  Other models fall back to ``Model.forward``.
    Both paths share :func:`repro.nn.losses.per_example_cross_entropy`.
    """
    params = np.asarray(params, dtype=np.float64)
    if engine is None and supports_stacked(model):
        engine = StackedSequential(model)
    if engine is not None:
        return engine.per_example_losses(
            params[None, :], dataset.inputs[None, ...], dataset.labels[None, :]
        )[0]
    restore = model.get_flat_params()
    model.set_flat_params(params)
    try:
        logits = model.forward(dataset.inputs, training=False)
        losses = per_example_cross_entropy(logits, dataset.labels)
    finally:
        model.set_flat_params(restore)
    return losses


# Historical private name, kept for callers that predate the public helper.
_per_sample_losses = per_sample_losses


def threshold_attack(
    member_losses: np.ndarray,
    non_member_losses: np.ndarray,
    calibration_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> MembershipInferenceResult:
    """Fit and evaluate the loss threshold on precomputed per-example losses.

    The model-free core of the Yeom et al. attack, shared between
    :func:`membership_inference_attack` (one parameter vector) and
    :func:`repro.attacks.fleet.membership_inference_fleet` (many parameter
    rows scored by one stacked pass).
    """
    member_losses = np.asarray(member_losses, dtype=np.float64)
    non_member_losses = np.asarray(non_member_losses, dtype=np.float64)
    if member_losses.size < 4 or non_member_losses.size < 4:
        raise ValueError("need at least 4 member and 4 non-member examples")
    if not 0.0 < calibration_fraction < 1.0:
        raise ValueError("calibration_fraction must lie in (0, 1)")
    rng = rng or np.random.default_rng(0)

    def split(losses: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        order = rng.permutation(losses.size)
        cut = max(1, int(losses.size * calibration_fraction))
        return losses[order[:cut]], losses[order[cut:]]

    member_cal, member_eval = split(member_losses)
    non_member_cal, non_member_eval = split(non_member_losses)

    # Choose the threshold maximising calibration accuracy over candidate cuts.
    candidates = np.unique(np.concatenate([member_cal, non_member_cal]))
    best_threshold, best_accuracy = float(candidates[0]), -1.0
    for threshold in candidates:
        tpr = float(np.mean(member_cal <= threshold))
        tnr = float(np.mean(non_member_cal > threshold))
        accuracy = 0.5 * (tpr + tnr)
        if accuracy > best_accuracy:
            best_accuracy, best_threshold = accuracy, float(threshold)

    true_positive = float(np.mean(member_eval <= best_threshold)) if member_eval.size else 0.0
    false_positive = float(np.mean(non_member_eval <= best_threshold)) if non_member_eval.size else 0.0
    eval_accuracy = 0.5 * (true_positive + (1.0 - false_positive))
    return MembershipInferenceResult(
        threshold=best_threshold,
        accuracy=float(eval_accuracy),
        true_positive_rate=true_positive,
        false_positive_rate=false_positive,
    )


def membership_inference_attack(
    model: Model,
    params: np.ndarray,
    members: Dataset,
    non_members: Dataset,
    calibration_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> MembershipInferenceResult:
    """Run the loss-threshold attack.

    Parameters
    ----------
    members:
        Examples that were used to train the model (the victim agent's shard).
    non_members:
        Held-out examples from the same distribution.
    calibration_fraction:
        Fraction of each population used to fit the threshold; the rest is
        used for the reported metrics.
    """
    if len(members) < 4 or len(non_members) < 4:
        raise ValueError("need at least 4 member and 4 non-member examples")
    engine = StackedSequential(model) if supports_stacked(model) else None
    member_losses = per_sample_losses(model, params, members, engine=engine)
    non_member_losses = per_sample_losses(model, params, non_members, engine=engine)
    return threshold_attack(
        member_losses,
        non_member_losses,
        calibration_fraction=calibration_fraction,
        rng=rng,
    )
