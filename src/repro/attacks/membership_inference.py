"""Loss-threshold membership-inference attack (Yeom et al., 2018).

Given a (possibly privately trained) model, an attacker who can query the
model's loss decides whether a specific example was part of the training
set: members tend to have lower loss than non-members.  The attack here fits
a single threshold on a calibration split and reports its accuracy and
advantage (true-positive rate minus false-positive rate) on a held-out
evaluation split.  DP training bounds the achievable advantage, which is the
quantitative story the ablation benchmark tells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.losses import softmax_cross_entropy
from repro.nn.model import Model

__all__ = ["MembershipInferenceResult", "membership_inference_attack"]


@dataclass
class MembershipInferenceResult:
    """Outcome of the loss-threshold membership-inference attack."""

    threshold: float
    accuracy: float
    true_positive_rate: float
    false_positive_rate: float

    @property
    def advantage(self) -> float:
        """Membership advantage ``TPR - FPR`` (0 = no leakage, 1 = full leakage)."""
        return float(self.true_positive_rate - self.false_positive_rate)


def _per_sample_losses(model: Model, params: np.ndarray, dataset: Dataset) -> np.ndarray:
    """Per-example cross-entropy losses at the given parameters."""
    restore = model.get_flat_params()
    model.set_flat_params(params)
    try:
        logits = model.forward(dataset.inputs, training=False)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        losses = -log_probs[np.arange(len(dataset)), dataset.labels]
    finally:
        model.set_flat_params(restore)
    return losses


def membership_inference_attack(
    model: Model,
    params: np.ndarray,
    members: Dataset,
    non_members: Dataset,
    calibration_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> MembershipInferenceResult:
    """Run the loss-threshold attack.

    Parameters
    ----------
    members:
        Examples that were used to train the model (the victim agent's shard).
    non_members:
        Held-out examples from the same distribution.
    calibration_fraction:
        Fraction of each population used to fit the threshold; the rest is
        used for the reported metrics.
    """
    if len(members) < 4 or len(non_members) < 4:
        raise ValueError("need at least 4 member and 4 non-member examples")
    if not 0.0 < calibration_fraction < 1.0:
        raise ValueError("calibration_fraction must lie in (0, 1)")
    rng = rng or np.random.default_rng(0)

    member_losses = _per_sample_losses(model, params, members)
    non_member_losses = _per_sample_losses(model, params, non_members)

    def split(losses: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        order = rng.permutation(losses.size)
        cut = max(1, int(losses.size * calibration_fraction))
        return losses[order[:cut]], losses[order[cut:]]

    member_cal, member_eval = split(member_losses)
    non_member_cal, non_member_eval = split(non_member_losses)

    # Choose the threshold maximising calibration accuracy over candidate cuts.
    candidates = np.unique(np.concatenate([member_cal, non_member_cal]))
    best_threshold, best_accuracy = float(candidates[0]), -1.0
    for threshold in candidates:
        tpr = float(np.mean(member_cal <= threshold))
        tnr = float(np.mean(non_member_cal > threshold))
        accuracy = 0.5 * (tpr + tnr)
        if accuracy > best_accuracy:
            best_accuracy, best_threshold = accuracy, float(threshold)

    true_positive = float(np.mean(member_eval <= best_threshold)) if member_eval.size else 0.0
    false_positive = float(np.mean(non_member_eval <= best_threshold)) if non_member_eval.size else 0.0
    eval_accuracy = 0.5 * (true_positive + (1.0 - false_positive))
    return MembershipInferenceResult(
        threshold=best_threshold,
        accuracy=float(eval_accuracy),
        true_positive_rate=true_positive,
        false_positive_rate=false_positive,
    )
