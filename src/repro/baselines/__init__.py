"""Reference algorithms the paper compares against (Sec. VI-B).

All baselines share the :class:`~repro.core.base.DecentralizedAlgorithm`
infrastructure (identical initial model, same per-agent batch samplers, same
clipping and Gaussian-noise mechanisms, same mixing matrix), so differences
in the experiment results come from the algorithmic updates only.

* :class:`DPDPSGD` — differentially private decentralized parallel SGD, the
  synchronous analogue of A(DP)²SGD [Xu et al. 2022]: perturbed local
  gradient step followed by one gossip-averaging step.
* :class:`Muffliato` — local Gaussian noise injection followed by multiple
  gossip steps for privacy amplification [Cyffers et al. 2022].
* :class:`DPCGA` — Cross-Gradient Aggregation [Esfandiari et al. 2021] with
  DP perturbation of the shared cross-gradients; the cross-gradients are
  combined through the minimum-norm convex combination (quadratic program)
  that CGA uses for projection.
* :class:`DPNetFleet` — NET-FLEET [Zhang et al. 2022] with recursive gradient
  correction (gradient tracking) and multiple local updates per round, with
  Gaussian perturbation of the exchanged quantities.
* :class:`DPSGDNonPrivate` / :class:`DMSGD` — non-private D-PSGD / momentum
  D-PSGD references used by the ablation benchmarks.
"""

from repro.baselines.dp_dpsgd import DPDPSGD, DPSGDNonPrivate
from repro.baselines.muffliato import Muffliato
from repro.baselines.dp_cga import DPCGA
from repro.baselines.dp_netfleet import DPNetFleet
from repro.baselines.dmsgd import DMSGD

__all__ = [
    "DPDPSGD",
    "DPSGDNonPrivate",
    "Muffliato",
    "DPCGA",
    "DPNetFleet",
    "DMSGD",
]
