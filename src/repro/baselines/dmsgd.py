"""DMSGD: decentralized momentum SGD (non-private reference).

The momentum version of D-PSGD [Yu, Jin & Yang, ICML 2019]: each agent takes
a momentum step with its (optionally clipped / perturbed) local gradient and
then gossip-averages the model.  With ``sigma = 0`` this is the classic
non-private algorithm; with noise enabled it is a "DP but heterogeneity
oblivious with momentum" ablation point between DP-DPSGD and PDSL.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.base import DecentralizedAlgorithm

__all__ = ["DMSGD"]


class DMSGD(DecentralizedAlgorithm):
    """Decentralized momentum SGD with one gossip-averaging step per round."""

    name = "DMSGD"

    def _step_loop(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        alpha = self.config.momentum
        batches = self.draw_batches()

        provisional: List[np.ndarray] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                # Inactive agents take no step and their momentum does not
                # decay; the round topology's identity row keeps their model.
                provisional.append(self.params[agent].copy())
                continue
            gradient = self.local_gradient(agent, self.params[agent], batches[agent])
            perturbed = self.privatize(agent, gradient)
            self.momenta[agent] = alpha * self.momenta[agent] + perturbed
            provisional.append(self.params[agent] - gamma * self.momenta[agent])
            neighbors = self.topology.neighbors(agent, include_self=False)
            self.network.broadcast(agent, neighbors, "model", provisional[agent].copy())

        new_params: List[np.ndarray] = []
        for agent in range(self.num_agents):
            received = self.network.receive_by_sender(agent, "model")
            received[agent] = provisional[agent]
            acc = np.zeros(self.dimension, dtype=np.float64)
            for j, value in received.items():
                acc += self.topology.weight(agent, j) * value
            new_params.append(acc)
        self.params = new_params

    def _step_vectorized(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        alpha = self.config.momentum
        batches = self.draw_batches()
        gradients = self.fleet_gradients(self.state, batches)
        perturbed = self.privatize_rows(gradients)
        self.momentum_state = self.freeze_inactive_rows(
            alpha * self.momentum_state + perturbed, self.momentum_state
        )
        provisional = self.freeze_inactive_rows(
            self.state - gamma * self.momentum_state, self.state
        )
        self.record_fleet_exchange("model", self.dimension)
        self.state = self.mix_rows(provisional)
