"""DMSGD: decentralized momentum SGD (non-private reference).

The momentum version of D-PSGD [Yu, Jin & Yang, ICML 2019]: each agent takes
a momentum step with its (optionally clipped / perturbed) local gradient and
then gossip-averages the model.  With ``sigma = 0`` this is the classic
non-private algorithm; with noise enabled it is a "DP but heterogeneity
oblivious with momentum" ablation point between DP-DPSGD and PDSL.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.base import DecentralizedAlgorithm

__all__ = ["DMSGD"]


class DMSGD(DecentralizedAlgorithm):
    """Decentralized momentum SGD with one gossip-averaging step per round."""

    name = "DMSGD"

    def _step_loop(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        alpha = self.config.momentum
        communicate = self.gossip_now(round_index)
        batches = self.draw_batches()

        provisional: List[np.ndarray] = []
        shared: List[np.ndarray] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                # Inactive agents take no step and their momentum does not
                # decay; the round topology's identity row keeps their model.
                provisional.append(self.params[agent].copy())
                shared.append(provisional[agent])
                continue
            gradient = self.local_gradient(agent, self.params[agent], batches[agent])
            perturbed = self.privatize(agent, gradient)
            self.momenta[agent] = alpha * self.momenta[agent] + perturbed
            provisional.append(self.params[agent] - gamma * self.momenta[agent])
            if communicate:
                shared.append(self.gossip_broadcast(agent, "model", provisional[agent]))

        if not communicate:
            # Off-interval round: purely local steps, nothing on the wire.
            self.params = provisional
            return

        new_params: List[np.ndarray] = []
        for agent in range(self.num_agents):
            received = self.gossip_receive(agent, "model")
            received[agent] = shared[agent]
            acc = np.zeros(self.dimension, dtype=np.float64)
            for j, value in received.items():
                acc += self.topology.weight(agent, j) * value
            new_params.append(acc)
        self.params = new_params

    def _step_streamed(self, round_index: int) -> None:
        """Blocked twin of :meth:`_step_vectorized` (bit-identical by design).

        Each row block draws its agents' batches, evaluates + privatizes
        gradients, applies the momentum and provisional steps in place, and
        stages its gossip payload — so the round's transient working set is
        one block plus the reusable gossip scratch, at any fleet size.
        """
        gamma = self.config.learning_rate
        alpha = self.config.momentum
        communicate = self.gossip_now(round_index)
        momentum = self.momentum_state
        shared = (
            self._round_scratch("gossip", self._gossip_dtype(self._dtype))
            if communicate
            else None
        )
        if communicate:
            self._prepare_gossip_channels("model")

        def run(start: int, stop: int) -> None:
            perturbed = self._block_perturbed_gradients(start, stop)
            momentum[start:stop] = self._freeze_block(
                alpha * momentum[start:stop] + perturbed,
                momentum[start:stop],
                start,
                stop,
            )
            provisional = self._freeze_block(
                self.state[start:stop] - gamma * momentum[start:stop],
                self.state[start:stop],
                start,
                stop,
            )
            if shared is None:
                self.state[start:stop] = provisional
            else:
                shared[start:stop] = self._compress_block(
                    "model", provisional, start, stop
                )

        self._scheduler.map(run, self._fleet_blocks(), serial=self._stacked is None)
        if shared is None:
            return
        values, wire_bytes = self.gossip_wire_cost()
        self.record_fleet_exchange("model", values, wire_bytes)
        self._mix_into(shared, self.state)

    def _step_vectorized(self, round_index: int) -> None:
        if self._streamed:
            self._step_streamed(round_index)
            return
        gamma = self.config.learning_rate
        alpha = self.config.momentum
        batches = self.draw_batches()
        gradients = self.fleet_gradients(self.state, batches)
        perturbed = self.privatize_rows(gradients)
        self.momentum_state = self.freeze_inactive_rows(
            alpha * self.momentum_state + perturbed, self.momentum_state
        )
        provisional = self.freeze_inactive_rows(
            self.state - gamma * self.momentum_state, self.state
        )
        if not self.gossip_now(round_index):
            self.state = provisional
            return
        shared = self.compress_gossip_rows("model", provisional)
        values, wire_bytes = self.gossip_wire_cost()
        self.record_fleet_exchange("model", values, wire_bytes)
        self.state = self.mix_rows(shared)
