"""DP-CGA: Cross-Gradient Aggregation with differentially private exchanges.

CGA [Esfandiari et al., ICML 2021] has every agent collect the gradients of
its *own model* evaluated on each neighbour's *local data* (cross-gradients)
and project them onto a single update direction by solving the minimum-norm
quadratic program over their convex hull; the projected gradient then drives
a momentum update followed by gossip averaging.  The paper's DP-CGA baseline
perturbs each cross-gradient with Gaussian noise before it is shared.

The quadratic program is

    minimise   || sum_k lambda_k g_k ||^2
    subject to lambda_k >= 0,  sum_k lambda_k = 1

solved here with SciPy's SLSQP (the neighbourhood sizes are tiny, so the QP
has at most a couple of dozen variables).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
from scipy.optimize import minimize

from repro.core.base import DecentralizedAlgorithm
from repro.core.config import CGAConfig

__all__ = ["DPCGA", "min_norm_combination"]


def min_norm_combination(gradients: List[np.ndarray]) -> np.ndarray:
    """Convex-combination weights minimising the norm of the combined gradient.

    Returns the weight vector ``lambda`` (not the combined gradient) so tests
    can check the simplex constraints directly.  Falls back to uniform
    weights if the optimiser fails.
    """
    k = len(gradients)
    if k == 0:
        raise ValueError("need at least one gradient")
    if k == 1:
        return np.ones(1, dtype=np.float64)
    stacked = np.stack(gradients, axis=0)
    gram = stacked @ stacked.T

    def objective(lam: np.ndarray) -> float:
        return float(lam @ gram @ lam)

    def gradient(lam: np.ndarray) -> np.ndarray:
        return 2.0 * gram @ lam

    initial = np.full(k, 1.0 / k)
    constraints = [{"type": "eq", "fun": lambda lam: lam.sum() - 1.0}]
    bounds = [(0.0, 1.0)] * k
    result = minimize(
        objective,
        initial,
        jac=gradient,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 100, "ftol": 1e-10},
    )
    if not result.success or not np.all(np.isfinite(result.x)):
        return initial
    lam = np.clip(result.x, 0.0, None)
    total = lam.sum()
    if total <= 0:
        return initial
    return lam / total


class DPCGA(DecentralizedAlgorithm):
    """Cross-gradient aggregation via a min-norm QP, with DP-perturbed exchanges."""

    name = "DP-CGA"

    def __init__(self, model, topology, shards, config, validation=None) -> None:
        if not isinstance(config, CGAConfig):
            raise TypeError("DPCGA requires a CGAConfig")
        super().__init__(model, topology, shards, config, validation=validation)
        self.config: CGAConfig = config

    def _step_loop(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        alpha = self.config.momentum
        batches = self.draw_batches()

        # Broadcast models so neighbours can compute cross-gradients.
        for agent in range(self.num_agents):
            neighbors = self.topology.neighbors(agent, include_self=False)
            self.network.broadcast(agent, neighbors, "model", self.params[agent].copy())

        # Compute DP-perturbed cross-gradients of each received model on local data
        # and send them back to the model's owner.  Inactive agents received
        # no models (the round topology gives them no neighbours) and draw
        # neither batches nor noise.
        own_perturbed: List[Optional[np.ndarray]] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                own_perturbed.append(None)
                continue
            local_grad = self.local_gradient(agent, self.params[agent], batches[agent])
            own_perturbed.append(self.privatize(agent, local_grad))
            received_models = self.network.receive_by_sender(agent, "model")
            for neighbor, neighbor_params in received_models.items():
                cross = self.local_gradient(agent, neighbor_params, batches[agent])
                self.network.send(agent, neighbor, "cross_grad", self.privatize(agent, cross))

        # Aggregate the returned cross-gradients with the min-norm QP, take a
        # momentum step, and share the provisional model for gossip averaging.
        # As in PDSL, the gradient exchanges above stay full precision; only
        # the model gossip goes through the codec and the interval.
        communicate = self.gossip_now(round_index)
        provisional: List[np.ndarray] = []
        shared: List[np.ndarray] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                provisional.append(self.params[agent].copy())
                shared.append(provisional[agent])
                continue
            returned: Dict[int, np.ndarray] = self.network.receive_by_sender(agent, "cross_grad")
            returned[agent] = own_perturbed[agent]
            ordered = [returned[j] for j in sorted(returned)]
            lam = min_norm_combination(ordered)
            combined = np.zeros(self.dimension, dtype=np.float64)
            for weight, grad in zip(lam, ordered):
                combined += weight * grad
            self.momenta[agent] = alpha * self.momenta[agent] + combined
            provisional.append(self.params[agent] - gamma * self.momenta[agent])
            if communicate:
                shared.append(self.gossip_broadcast(agent, "mix", provisional[agent]))

        if not communicate:
            # Off-interval round: keep the local update, skip the gossip.
            self.params = provisional
            return

        # Gossip-average the provisional models.
        new_params: List[np.ndarray] = []
        for agent in range(self.num_agents):
            received = self.gossip_receive(agent, "mix")
            received[agent] = shared[agent]
            acc = np.zeros(self.dimension, dtype=np.float64)
            for j, value in received.items():
                acc += self.topology.weight(agent, j) * value
            new_params.append(acc)
        self.params = new_params

    def _step_vectorized(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        alpha = self.config.momentum

        # Local gradients, privatized in agent order (first draw per agent,
        # matching the loop backend's per-agent noise streams).  The streamed
        # pipeline evaluates them block by block into a reusable scratch
        # (bit-identical; see the base class); cross-gradients below stream
        # through evaluator-aligned chunks inside fleet_cross_gradients.
        if self._streamed:
            batches, own_perturbed = self._streamed_local_perturbed()
        else:
            batches = self.draw_batches()
            own = self.fleet_gradients(self.state, batches)
            own_perturbed = self.privatize_rows(own)
        self.record_fleet_exchange("model", self.dimension)

        # Cross-gradients for every directed pair (evaluator i, model owner j):
        # agent i's data, agent j's model.
        cross_perturbed, pair_rows = self.fleet_cross_gradients(batches)
        self.record_fleet_exchange("cross_grad", self.dimension)

        # Min-norm QP per agent over the returned cross-gradients (sorted by
        # contributor id, self included, as in the loop backend).  Inactive
        # agents run no QP and keep their momentum and model frozen.
        combined = np.zeros_like(self.state)
        for agent in self.active_agents:
            contributors = self.topology.neighbors(agent, include_self=True)
            ordered = [
                own_perturbed[agent]
                if j == agent
                else cross_perturbed[pair_rows[(j, agent)]]
                for j in contributors
            ]
            lam = min_norm_combination(ordered)
            acc = np.zeros(self.dimension, dtype=np.float64)
            for weight, grad in zip(lam, ordered):
                acc += weight * grad
            combined[agent] = acc

        self.momentum_state = self.freeze_inactive_rows(
            alpha * self.momentum_state + combined, self.momentum_state
        )
        provisional = self.freeze_inactive_rows(
            self.state - gamma * self.momentum_state, self.state
        )
        if not self.gossip_now(round_index):
            self.state = provisional
            return
        shared = self.compress_gossip_rows("mix", provisional)
        values, wire_bytes = self.gossip_wire_cost()
        self.record_fleet_exchange("mix", values, wire_bytes)
        self.state = self.mix_rows(shared)
