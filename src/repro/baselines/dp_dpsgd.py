"""DP-DPSGD: differentially private decentralized parallel SGD.

This is the synchronous counterpart of A(DP)²SGD [Xu, Zhang & Wang, 2022]
used as a baseline in the paper: each agent takes a gradient step with its
clipped-and-perturbed *local* gradient, then performs one gossip-averaging
step with the mixing matrix.  It does not use cross-gradients or any
contribution weighting, so it is the reference point for the cost of
ignoring data heterogeneity.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.base import DecentralizedAlgorithm

__all__ = ["DPDPSGD", "DPSGDNonPrivate"]


class DPDPSGD(DecentralizedAlgorithm):
    """Perturbed local gradient step followed by one gossip-averaging step."""

    name = "DP-DPSGD"

    def _step_loop(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        batches = self.draw_batches()

        # Local DP-SGD step on each agent's own model and data.  Inactive
        # agents (churn/stragglers) sit the round out: no gradient, no noise
        # draw, no broadcast — their provisional model is just their current
        # one, which the round topology's identity mixing row preserves.
        communicate = self.gossip_now(round_index)
        provisional: List[np.ndarray] = []
        shared: List[np.ndarray] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                provisional.append(self.params[agent].copy())
                shared.append(provisional[agent])
                continue
            gradient = self.local_gradient(agent, self.params[agent], batches[agent])
            perturbed = self.privatize(agent, gradient)
            provisional.append(self.params[agent] - gamma * perturbed)
            if communicate:
                shared.append(self.gossip_broadcast(agent, "model", provisional[agent]))

        if not communicate:
            # Off-interval round: purely local steps, nothing on the wire.
            self.params = provisional
            return

        # Gossip-average the provisional models with the mixing matrix.
        new_params: List[np.ndarray] = []
        for agent in range(self.num_agents):
            received = self.gossip_receive(agent, "model")
            received[agent] = shared[agent]
            mixed = np.zeros(self.dimension, dtype=np.float64)
            for j, params in received.items():
                mixed += self.topology.weight(agent, j) * params
            new_params.append(mixed)
        self.params = new_params

    def _step_streamed(self, round_index: int) -> None:
        """Blocked twin of :meth:`_step_vectorized` (bit-identical by design).

        The provisional step is float64 (state minus a float64 perturbed
        gradient), exactly like the one-shot path, so the gossip scratch is
        always float64 here.
        """
        gamma = self.config.learning_rate
        communicate = self.gossip_now(round_index)
        shared = self._round_scratch("gossip", np.float64) if communicate else None
        if communicate:
            self._prepare_gossip_channels("model")

        def run(start: int, stop: int) -> None:
            perturbed = self._block_perturbed_gradients(start, stop)
            provisional = self.state[start:stop] - gamma * perturbed
            if shared is None:
                self.state[start:stop] = provisional
            else:
                shared[start:stop] = self._compress_block(
                    "model", provisional, start, stop
                )

        self._scheduler.map(run, self._fleet_blocks(), serial=self._stacked is None)
        if shared is None:
            return
        values, wire_bytes = self.gossip_wire_cost()
        self.record_fleet_exchange("model", values, wire_bytes)
        self._mix_into(shared, self.state)

    def _step_vectorized(self, round_index: int) -> None:
        if self._streamed:
            self._step_streamed(round_index)
            return
        gamma = self.config.learning_rate
        batches = self.draw_batches()
        # Inactive agents' rows are exactly zero after the masked gradient
        # and noise paths, so the provisional step leaves them at their
        # current parameters and the identity mixing row keeps them there.
        gradients = self.fleet_gradients(self.state, batches)
        perturbed = self.privatize_rows(gradients)
        provisional = self.state - gamma * perturbed
        if not self.gossip_now(round_index):
            self.state = provisional
            return
        shared = self.compress_gossip_rows("model", provisional)
        values, wire_bytes = self.gossip_wire_cost()
        self.record_fleet_exchange("model", values, wire_bytes)
        self.state = self.mix_rows(shared)


class DPSGDNonPrivate(DPDPSGD):
    """D-PSGD without clipping noise — a non-private reference for ablations.

    Construct it with a config whose ``sigma`` is 0 (the class simply fixes
    the name so experiment reports distinguish it from the DP variant).
    """

    name = "D-PSGD"
