"""DP-NET-FLEET: recursive gradient correction with local steps, plus DP noise.

NET-FLEET [Zhang et al., MobiHoc 2022] tackles heterogeneous data in fully
decentralized federated learning with a *recursive gradient correction*
(a gradient-tracking variable ``y_i`` that estimates the global gradient)
and multiple local updates between communication rounds.  The paper's
baseline adds Gaussian perturbation to the quantities agents exchange.

Per communication round each agent:

1. runs ``local_steps`` SGD steps using its corrected gradient estimate
   ``y_i`` in place of the raw local gradient;
2. gossip-averages its model with the mixing matrix;
3. updates the tracking variable with the freshly computed local gradient:
   ``y_i <- sum_j w_ij y_j + (g_i_new - g_i_old)`` where both the tracking
   variables and the models exchanged are clipped and perturbed for DP.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.base import DecentralizedAlgorithm
from repro.core.config import NetFleetConfig

__all__ = ["DPNetFleet"]


class DPNetFleet(DecentralizedAlgorithm):
    """Gradient-tracking decentralized SGD with local steps and DP perturbation."""

    name = "DP-NET-FLEET"

    def __init__(self, model, topology, shards, config, validation=None) -> None:
        if not isinstance(config, NetFleetConfig):
            raise TypeError("DPNetFleet requires a NetFleetConfig")
        super().__init__(model, topology, shards, config, validation=validation)
        self.config: NetFleetConfig = config
        # Gradient-tracking state: y_i (the corrected gradient estimate) and
        # the previous local gradient used in the recursive correction.
        self.tracking: List[np.ndarray] = [
            np.zeros(self.dimension, dtype=np.float64) for _ in range(self.num_agents)
        ]
        self.previous_gradient: List[np.ndarray] = [
            np.zeros(self.dimension, dtype=np.float64) for _ in range(self.num_agents)
        ]
        self._initialized = False

    def _perturbed_local_gradient(self, agent: int, params: np.ndarray) -> np.ndarray:
        """A fresh clipped + noised local gradient at the given parameters."""
        batch = self.samplers[agent].next_batch()
        gradient = self.local_gradient(agent, params, batch)
        return self.privatize(agent, gradient)

    def step(self, round_index: int) -> None:
        gamma = self.config.learning_rate

        # Lazy initialisation of the tracking variable with the first gradients.
        if not self._initialized:
            for agent in range(self.num_agents):
                grad = self._perturbed_local_gradient(agent, self.params[agent])
                self.tracking[agent] = grad
                self.previous_gradient[agent] = grad
            self._initialized = True

        # 1. One DP gradient release per round, reused by every local step.
        #    Each round, agent i publishes a single clipped-and-perturbed local
        #    gradient; the recursive correction and the local steps are
        #    post-processing of that release (plus the already-released
        #    tracking variables), so the per-round privacy cost matches the
        #    other baselines.
        local_params: List[np.ndarray] = []
        for agent in range(self.num_agents):
            # Gradient-tracking descent: the update direction is the tracking
            # variable y_i (the running estimate of the network-average
            # gradient), re-clipped so accumulated noise cannot inflate the
            # step size.
            corrected = self.clip(self.tracking[agent])
            params = self.params[agent].copy()
            for _ in range(self.config.local_steps):
                params = params - gamma * corrected
            local_params.append(params)

        # 2. Exchange models and tracking variables with neighbours.  The
        #    tracking variable is a post-processing of already clipped-and-
        #    perturbed gradients, so no additional noise is required for DP.
        for agent in range(self.num_agents):
            neighbors = self.topology.neighbors(agent, include_self=False)
            payload = (local_params[agent].copy(), self.tracking[agent].copy())
            self.network.broadcast(agent, neighbors, "state", payload)

        # 3. Gossip averaging + recursive gradient correction
        #    y_i <- sum_j w_ij y_j + (g_i^{t} - g_i^{t-1}).
        new_params: List[np.ndarray] = []
        new_tracking: List[np.ndarray] = []
        for agent in range(self.num_agents):
            received = self.network.receive_by_sender(agent, "state")
            received[agent] = (local_params[agent], self.tracking[agent])
            params_acc = np.zeros(self.dimension, dtype=np.float64)
            tracking_acc = np.zeros(self.dimension, dtype=np.float64)
            for j, (params_j, tracking_j) in received.items():
                weight = self.topology.weight(agent, j)
                params_acc += weight * params_j
                tracking_acc += weight * tracking_j
            # Recursive correction with a fresh DP gradient at the mixed model:
            # y_i <- sum_j w_ij y_j + (g_i^{t} - g_i^{t-1}).
            fresh = self._perturbed_local_gradient(agent, params_acc)
            tracking_acc = tracking_acc + fresh - self.previous_gradient[agent]
            self.previous_gradient[agent] = fresh
            new_params.append(params_acc)
            new_tracking.append(tracking_acc)

        self.params = new_params
        self.tracking = new_tracking
