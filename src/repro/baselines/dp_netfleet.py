"""DP-NET-FLEET: recursive gradient correction with local steps, plus DP noise.

NET-FLEET [Zhang et al., MobiHoc 2022] tackles heterogeneous data in fully
decentralized federated learning with a *recursive gradient correction*
(a gradient-tracking variable ``y_i`` that estimates the global gradient)
and multiple local updates between communication rounds.  The paper's
baseline adds Gaussian perturbation to the quantities agents exchange.

Per communication round each agent:

1. runs ``local_steps`` SGD steps using its corrected gradient estimate
   ``y_i`` in place of the raw local gradient;
2. gossip-averages its model with the mixing matrix;
3. updates the tracking variable with the freshly computed local gradient:
   ``y_i <- sum_j w_ij y_j + (g_i_new - g_i_old)`` where both the tracking
   variables and the models exchanged are clipped and perturbed for DP.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.base import AgentRows, DecentralizedAlgorithm
from repro.core.config import NetFleetConfig
from repro.privacy.mechanisms import clip_rows_by_l2_norm

__all__ = ["DPNetFleet"]


class DPNetFleet(DecentralizedAlgorithm):
    """Gradient-tracking decentralized SGD with local steps and DP perturbation."""

    name = "DP-NET-FLEET"
    # Gossip carries a (model, tracking) pair per message.
    num_gossip_channels = 2

    def __init__(self, model, topology, shards, config, validation=None) -> None:
        if not isinstance(config, NetFleetConfig):
            raise TypeError("DPNetFleet requires a NetFleetConfig")
        super().__init__(model, topology, shards, config, validation=validation)
        self.config: NetFleetConfig = config
        # Gradient-tracking state: y_i (the corrected gradient estimate) and
        # the previous local gradient used in the recursive correction, one
        # row per agent like the base class's parameter state.  Under
        # ``storage="memmap"`` both live in memmap-backed FleetStates
        # (always float64, their canonical dtype on the vectorized path) and
        # assignments stream into them block by block.
        self._tracking_state: np.ndarray = self._alloc_fleet_matrix(
            "tracking_state", dtype=np.float64
        )
        self._previous_gradient_state: np.ndarray = self._alloc_fleet_matrix(
            "previous_gradient_state", dtype=np.float64
        )
        self._initialized = False

    @property
    def tracking_state(self) -> np.ndarray:
        """The ``(num_agents, dimension)`` gradient-tracking matrix ``y``."""
        return self._tracking_state

    @tracking_state.setter
    def tracking_state(self, value: np.ndarray) -> None:
        if self._pinned:
            self._store_blocked(self._tracking_state, value)
        else:
            self._tracking_state = np.asarray(value)

    @property
    def previous_gradient_state(self) -> np.ndarray:
        """The ``(num_agents, dimension)`` previous-local-gradient matrix."""
        return self._previous_gradient_state

    @previous_gradient_state.setter
    def previous_gradient_state(self, value: np.ndarray) -> None:
        if self._pinned:
            self._store_blocked(self._previous_gradient_state, value)
        else:
            self._previous_gradient_state = np.asarray(value)

    @property
    def tracking(self) -> AgentRows:
        """Per-agent tracking variables as a list-like view."""
        return AgentRows(self.tracking_state)

    @tracking.setter
    def tracking(self, value) -> None:
        self.tracking_state = self._as_state_matrix(value)

    @property
    def previous_gradient(self) -> AgentRows:
        """Per-agent previous local gradients as a list-like view."""
        return AgentRows(self.previous_gradient_state)

    @previous_gradient.setter
    def previous_gradient(self, value) -> None:
        self.previous_gradient_state = self._as_state_matrix(value)

    def _extra_state(self, copy: bool = True):
        return {
            "tracking_state": (
                self.tracking_state.copy() if copy else self.tracking_state
            ),
            "previous_gradient_state": (
                self.previous_gradient_state.copy()
                if copy
                else self.previous_gradient_state
            ),
            "initialized": self._initialized,
        }

    def _load_extra_state(self, payload) -> None:
        if self._pinned:
            # Stream the (possibly memmap-backed) checkpoint payload straight
            # into the pinned float64 tracking buffers block by block — no
            # second in-RAM fleet copy on an out-of-core resume.
            self.tracking_state = np.asarray(payload["tracking_state"])
            self.previous_gradient_state = np.asarray(
                payload["previous_gradient_state"]
            )
        else:
            self.tracking_state = self._as_state_matrix(payload["tracking_state"])
            self.previous_gradient_state = self._as_state_matrix(
                payload["previous_gradient_state"]
            )
        self._initialized = bool(payload["initialized"])

    def _perturbed_local_gradient(self, agent: int, params: np.ndarray) -> np.ndarray:
        """A fresh clipped + noised local gradient at the given parameters."""
        batch = self.samplers[agent].next_batch()
        gradient = self.local_gradient(agent, params, batch)
        return self.privatize(agent, gradient)

    def _fresh_fleet_gradients(self, param_rows: np.ndarray) -> np.ndarray:
        """One fresh perturbed gradient per agent at the given parameter rows.

        Draws batches and noise in agent order, matching the per-agent
        sampler and mechanism streams the loop backend consumes.
        """
        gradients = self.fleet_gradients(param_rows, self.draw_batches())
        return self.privatize_rows(gradients)

    def _step_loop(self, round_index: int) -> None:
        gamma = self.config.learning_rate

        # Lazy initialisation of the tracking variable with the first
        # gradients.  Agents inactive in the very first round start from a
        # zero tracking estimate instead (they draw no batch and no noise);
        # it bootstraps through the recursive correction once they rejoin.
        if not self._initialized:
            for agent in range(self.num_agents):
                if not self.is_active(agent):
                    continue
                grad = self._perturbed_local_gradient(agent, self.params[agent])
                self.tracking[agent] = grad
                self.previous_gradient[agent] = grad
            self._initialized = True

        # 1. One DP gradient release per round, reused by every local step.
        #    Each round, agent i publishes a single clipped-and-perturbed local
        #    gradient; the recursive correction and the local steps are
        #    post-processing of that release (plus the already-released
        #    tracking variables), so the per-round privacy cost matches the
        #    other baselines.
        local_params: List[np.ndarray] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                # Inactive agents take no local steps this round.
                local_params.append(self.params[agent].copy())
                continue
            # Gradient-tracking descent: the update direction is the tracking
            # variable y_i (the running estimate of the network-average
            # gradient), re-clipped so accumulated noise cannot inflate the
            # step size.
            corrected = self.clip(self.tracking[agent])
            params = self.params[agent].copy()
            for _ in range(self.config.local_steps):
                params = params - gamma * corrected
            local_params.append(params)

        # 2. Exchange models and tracking variables with neighbours.  The
        #    tracking variable is a post-processing of already clipped-and-
        #    perturbed gradients, so no additional noise is required for DP.
        #    Off-interval rounds exchange nothing: each agent keeps its own
        #    local model and tracking estimate, and the recursive correction
        #    below still refreshes the gradient difference.
        communicate = self.gossip_now(round_index)
        shared: List[Tuple[np.ndarray, np.ndarray]] = []
        if communicate:
            for agent in range(self.num_agents):
                shared.append(
                    self.gossip_broadcast(
                        agent, "state", (local_params[agent], self.tracking[agent])
                    )
                )

        # 3. Gossip averaging + recursive gradient correction
        #    y_i <- sum_j w_ij y_j + (g_i^{t} - g_i^{t-1}).
        new_params: List[np.ndarray] = []
        new_tracking: List[np.ndarray] = []
        for agent in range(self.num_agents):
            if communicate:
                received = self.gossip_receive(agent, "state")
                received[agent] = shared[agent]
                params_acc = np.zeros(self.dimension, dtype=np.float64)
                tracking_acc = np.zeros(self.dimension, dtype=np.float64)
                for j, (params_j, tracking_j) in received.items():
                    weight = self.topology.weight(agent, j)
                    params_acc += weight * params_j
                    tracking_acc += weight * tracking_j
            else:
                params_acc = local_params[agent].copy()
                tracking_acc = self.tracking[agent].copy()
            # Recursive correction with a fresh DP gradient at the mixed model:
            # y_i <- sum_j w_ij y_j + (g_i^{t} - g_i^{t-1}).  Inactive agents
            # draw no fresh gradient; their accumulators already equal their
            # frozen model and tracking (identity mixing row).
            if self.is_active(agent):
                fresh = self._perturbed_local_gradient(agent, params_acc)
                tracking_acc = tracking_acc + fresh - self.previous_gradient[agent]
                self.previous_gradient[agent] = fresh
            new_params.append(params_acc)
            new_tracking.append(tracking_acc)

        self.params = new_params
        self.tracking = new_tracking

    def _step_streamed(self, round_index: int) -> None:
        """Blocked twin of :meth:`_step_vectorized` (bit-identical by design).

        All four fleet matrices (state, tracking, previous gradient, the
        local-step output) are touched strictly block by block; on
        off-interval rounds the "mixed" quantities alias the local ones,
        exactly like the one-shot path, and the update phase computes each
        block's new tracking value before overwriting it, so the aliasing
        is safe under any block order.
        """
        gamma = self.config.learning_rate
        clip = self.config.clip_threshold
        blocks = self._fleet_blocks()
        serial = self._stacked is None
        tracking = self._tracking_state
        previous = self._previous_gradient_state

        if not self._initialized:

            def init_block(start: int, stop: int) -> None:
                grad = self._block_perturbed_gradients(start, stop)
                tracking[start:stop] = grad
                previous[start:stop] = grad

            self._scheduler.map(init_block, blocks, serial=serial)
            self._initialized = True

        # 1. Local steps along the re-clipped tracking direction.
        local = self._round_scratch("netfleet.local", np.float64)

        def local_block(start: int, stop: int) -> None:
            corrected = clip_rows_by_l2_norm(tracking[start:stop], clip)
            params = self.state[start:stop].copy()
            for _ in range(self.config.local_steps):
                params = params - gamma * corrected
            local[start:stop] = self._freeze_block(
                params, self.state[start:stop], start, stop
            )

        self._scheduler.map(local_block, blocks)

        # 2. (model, tracking) gossip; off-interval rounds alias the local
        #    quantities instead (nothing on the wire).
        if self.gossip_now(round_index):
            values, wire_bytes = self.gossip_wire_cost(self.num_gossip_channels)
            mixed_params = self._round_scratch("netfleet.mixed0", np.float64)
            mixed_tracking = self._round_scratch("netfleet.mixed1", np.float64)
            if self._compression_state is None:
                self.record_fleet_exchange("state", values, wire_bytes)
                self._mix_into(local, mixed_params)
                self._mix_into(tracking, mixed_tracking)
            else:
                params_shared = self._round_scratch("netfleet.shared0", np.float64)
                tracking_shared = self._round_scratch("netfleet.shared1", np.float64)
                self._prepare_gossip_channels("state.0", "state.1")

                def encode(start: int, stop: int) -> None:
                    params_shared[start:stop] = self._compress_block(
                        "state.0", local[start:stop], start, stop
                    )
                    tracking_shared[start:stop] = self._compress_block(
                        "state.1", tracking[start:stop], start, stop
                    )

                self._scheduler.map(encode, blocks)
                self.record_fleet_exchange("state", values, wire_bytes)
                self._mix_into(params_shared, mixed_params)
                self._mix_into(tracking_shared, mixed_tracking)
        else:
            mixed_params = local
            mixed_tracking = tracking

        # 3. Recursive gradient correction with a fresh DP gradient at the
        #    mixed model, then the state store — one pass per block.
        def update_block(start: int, stop: int) -> None:
            fresh = self._block_perturbed_gradients(
                start, stop, mixed_params[start:stop]
            )
            new_tracking = self._freeze_block(
                mixed_tracking[start:stop] + fresh - previous[start:stop],
                tracking[start:stop],
                start,
                stop,
            )
            tracking[start:stop] = new_tracking
            previous[start:stop] = self._freeze_block(
                fresh, previous[start:stop], start, stop
            )
            self.state[start:stop] = mixed_params[start:stop]

        self._scheduler.map(update_block, blocks, serial=serial)

    def _step_vectorized(self, round_index: int) -> None:
        if self._streamed:
            self._step_streamed(round_index)
            return
        gamma = self.config.learning_rate

        if not self._initialized:
            # The masked gradient path leaves agents inactive in the first
            # round at a zero tracking estimate, as in the loop engine.
            initial = self._fresh_fleet_gradients(self.state)
            self.tracking_state = initial
            self.previous_gradient_state = initial.copy()
            self._initialized = True

        # 1. Local steps along the re-clipped tracking direction (inactive
        #    agents take none).
        corrected = clip_rows_by_l2_norm(self.tracking_state, self.config.clip_threshold)
        local_params = self.state.copy()
        for _ in range(self.config.local_steps):
            local_params = local_params - gamma * corrected
        local_params = self.freeze_inactive_rows(local_params, self.state)

        # 2. One (model, tracking) exchange per directed edge; off-interval
        #    rounds exchange nothing and keep each agent's own estimates.
        # 3. Gossip averaging + recursive gradient correction.  Inactive
        #    agents draw no fresh gradient and keep their tracking state and
        #    previous gradient frozen.
        if self.gossip_now(round_index):
            params_shared = self.compress_gossip_rows("state.0", local_params)
            tracking_shared = self.compress_gossip_rows("state.1", self.tracking_state)
            values, wire_bytes = self.gossip_wire_cost(self.num_gossip_channels)
            self.record_fleet_exchange("state", values, wire_bytes)
            mixed_params = self.mix_rows(params_shared)
            mixed_tracking = self.mix_rows(tracking_shared)
        else:
            mixed_params = local_params
            mixed_tracking = self.tracking_state
        fresh = self._fresh_fleet_gradients(mixed_params)
        self.tracking_state = self.freeze_inactive_rows(
            mixed_tracking + fresh - self.previous_gradient_state, self.tracking_state
        )
        self.previous_gradient_state = self.freeze_inactive_rows(
            fresh, self.previous_gradient_state
        )
        self.state = mixed_params
