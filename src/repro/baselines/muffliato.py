"""MUFFLIATO: local Gaussian noise injection followed by multi-step gossiping.

Cyffers et al. (NeurIPS 2022) alternate a locally perturbed gradient step
with several rounds of gossip averaging; the repeated gossip amplifies
privacy because each individual contribution gets diluted across the graph
before anyone can inspect it.  As in the paper's evaluation it does not model
data heterogeneity explicitly.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.base import DecentralizedAlgorithm
from repro.core.config import MuffliatoConfig

__all__ = ["Muffliato"]


class Muffliato(DecentralizedAlgorithm):
    """Perturbed local step + ``gossip_steps`` rounds of model averaging."""

    name = "MUFFLIATO"

    def __init__(self, model, topology, shards, config, validation=None) -> None:
        if not isinstance(config, MuffliatoConfig):
            raise TypeError("Muffliato requires a MuffliatoConfig")
        super().__init__(model, topology, shards, config, validation=validation)
        self.config: MuffliatoConfig = config

    def _one_gossip_exchange(self, vectors: List[np.ndarray], tag: str) -> List[np.ndarray]:
        """A single gossip round executed through the message-passing network."""
        shared: List[np.ndarray] = [
            self.gossip_broadcast(agent, tag, vectors[agent])
            for agent in range(self.num_agents)
        ]
        mixed: List[np.ndarray] = []
        for agent in range(self.num_agents):
            received = self.gossip_receive(agent, tag)
            received[agent] = shared[agent]
            acc = np.zeros(self.dimension, dtype=np.float64)
            for j, value in received.items():
                acc += self.topology.weight(agent, j) * value
            mixed.append(acc)
        return mixed

    def _step_loop(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        batches = self.draw_batches()

        # Local gradient step with clipped + noised gradient.  Inactive
        # agents take no step; the gossip exchanges below leave them
        # untouched because the round topology gives them no neighbours and
        # an identity mixing row.
        updated: List[np.ndarray] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                updated.append(self.params[agent].copy())
                continue
            gradient = self.local_gradient(agent, self.params[agent], batches[agent])
            perturbed = self.privatize(agent, gradient)
            updated.append(self.params[agent] - gamma * perturbed)

        # Multiple gossip steps for privacy amplification / better consensus.
        # Off-interval rounds skip the whole gossip cascade: the perturbed
        # local step stands alone until the next communication round.
        if self.gossip_now(round_index):
            for gossip_round in range(self.config.gossip_steps):
                updated = self._one_gossip_exchange(updated, tag=f"gossip_{gossip_round}")

        self.params = updated

    def _step_streamed(self, round_index: int) -> None:
        """Blocked twin of :meth:`_step_vectorized` (bit-identical by design).

        The gossip cascade ping-pongs between two float64 fleet scratches
        (the one-shot path's ``updated`` is float64 throughout: the local
        step subtracts a float64 perturbed gradient and every mix preserves
        it), so ``gossip_steps`` rounds of mixing allocate nothing.
        """
        gamma = self.config.learning_rate
        current = self._round_scratch("gossip.a", np.float64)
        blocks = self._fleet_blocks()

        def local_step(start: int, stop: int) -> None:
            perturbed = self._block_perturbed_gradients(start, stop)
            current[start:stop] = self.state[start:stop] - gamma * perturbed

        self._scheduler.map(local_step, blocks, serial=self._stacked is None)
        if self.gossip_now(round_index):
            other = self._round_scratch("gossip.b", np.float64)
            for gossip_round in range(self.config.gossip_steps):
                tag = f"gossip_{gossip_round}"
                values, wire_bytes = self.gossip_wire_cost()
                if self._compression_state is None:
                    self.record_fleet_exchange(tag, values, wire_bytes)
                    self._mix_into(current, other)
                    current, other = other, current
                else:
                    self._prepare_gossip_channels(tag)
                    source = current

                    def encode(start: int, stop: int) -> None:
                        other[start:stop] = self._compress_block(
                            tag, source[start:stop], start, stop
                        )

                    self._scheduler.map(encode, blocks)
                    self.record_fleet_exchange(tag, values, wire_bytes)
                    self._mix_into(other, current)
        self._store_blocked(self.state, current)

    def _step_vectorized(self, round_index: int) -> None:
        if self._streamed:
            self._step_streamed(round_index)
            return
        gamma = self.config.learning_rate
        batches = self.draw_batches()
        gradients = self.fleet_gradients(self.state, batches)
        perturbed = self.privatize_rows(gradients)
        # Inactive rows are exactly zero in ``perturbed`` and have identity
        # mixing rows, so they ride through the step and gossip unchanged.
        updated = self.state - gamma * perturbed
        if self.gossip_now(round_index):
            for gossip_round in range(self.config.gossip_steps):
                tag = f"gossip_{gossip_round}"
                shared = self.compress_gossip_rows(tag, updated)
                values, wire_bytes = self.gossip_wire_cost()
                self.record_fleet_exchange(tag, values, wire_bytes)
                updated = self.mix_rows(shared)
        self.state = updated
