"""First-class benchmarking: registered suites, perf artifacts, regression gate.

The subsystem has four layers (see ``docs/BENCHMARKING.md`` for the user
guide):

* :mod:`repro.bench.timer` / :mod:`repro.bench.guard` — shared measurement
  (wall clock + peak RSS, repeat-with-min) and the uniform "arm the floor?"
  guard every speed assertion routes through;
* :mod:`repro.bench.registry` — the ``@benchmark`` registry and the
  setup/run/teardown suite lifecycle;
* :mod:`repro.bench.suites` — the registered suites covering the hot paths
  (engines, gossip kernels, topology cache, orchestrator pool, checkpoints,
  Shapley, DP noise);
* :mod:`repro.bench.artifact` / :mod:`repro.bench.report` /
  :mod:`repro.bench.cli` — schema-versioned ``BENCH_<n>.json`` artifacts,
  the markdown performance page, and the ``repro-bench`` CLI
  (``list`` / ``run`` / ``compare`` / ``report``).
"""

from repro.bench.guard import FloorDecision, arm_floor, available_cpus
from repro.bench.registry import (
    Benchmark,
    BenchResult,
    FloorSpec,
    assert_floor,
    benchmark,
    check_floor,
    create_benchmark,
    registered_benchmarks,
    run_benchmark,
    select_benchmarks,
)
from repro.bench.timer import Measurement, Timer

__all__ = [
    "Benchmark",
    "BenchResult",
    "FloorSpec",
    "FloorDecision",
    "Measurement",
    "Timer",
    "arm_floor",
    "assert_floor",
    "available_cpus",
    "benchmark",
    "check_floor",
    "create_benchmark",
    "registered_benchmarks",
    "run_benchmark",
    "select_benchmarks",
]
