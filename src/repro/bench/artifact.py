"""Schema-versioned benchmark artifacts and the regression comparator.

``repro-bench run --out BENCH_<n>.json`` persists every suite's
:class:`~repro.bench.registry.BenchResult` into one JSON artifact at the
repository root — the perf-history record a future PR's numbers are compared
against.  The schema is versioned (:data:`ARTIFACT_SCHEMA` /
:data:`ARTIFACT_VERSION`) so a layout change can be detected and refused
with a clear error instead of silently misread.

:func:`compare_artifacts` implements the regression gate along two axes —
per-suite wall-clock deltas on ``best_seconds``, *and*, for floor-asserted
suites, the drop in the recorded floor metric (the dimensionless speedup
ratio that is the quantity the suite exists to protect: a 10x CSR
regression barely moves a suite's wall clock, which is dominated by the
slow baseline side, but collapses its speedup ratio).  Verdicts:

* ``fail`` — on a **floor-asserted** suite, either a wall-clock regression
  beyond ``fail_threshold`` (default +25%) with a baseline above the noise
  floor, or the floor metric dropping by more than ``fail_threshold``;
* ``warn`` — beyond ``warn_threshold`` (default 10%) on either axis,
  anywhere;
* ``ok`` / ``faster`` otherwise;
* ``skipped`` — the suites ran with different parameters (CI smoke vs a
  full-scale baseline) or only one artifact contains the suite, so the
  numbers are not comparable.

Only ``fail`` rows make :func:`comparison_exit_code` non-zero — the gate is
deliberately *soft* everywhere else, because wall-clock numbers from
different machines or loaded CI runners are evidence, not verdicts.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.guard import available_cpus
from repro.bench.registry import BenchResult
from repro.simulation.checkpoint import atomic_write_text

__all__ = [
    "ARTIFACT_SCHEMA",
    "ARTIFACT_VERSION",
    "DEFAULT_WARN_THRESHOLD",
    "DEFAULT_FAIL_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
    "results_to_artifact",
    "write_artifact",
    "load_artifact",
    "SuiteComparison",
    "Comparison",
    "compare_artifacts",
    "comparison_exit_code",
    "format_comparison",
]

PathLike = Union[str, Path]

#: Artifact family identifier (never changes) and layout version (bumped on
#: any breaking change to the JSON structure).
ARTIFACT_SCHEMA = "repro-bench"
ARTIFACT_VERSION = 1

DEFAULT_WARN_THRESHOLD = 0.10
DEFAULT_FAIL_THRESHOLD = 0.25
#: Baselines faster than this are inside timer/scheduler noise; regressions
#: on them never fail the gate (they still warn).
DEFAULT_MIN_SECONDS = 0.005


def _result_payload(result: BenchResult) -> Dict[str, object]:
    return {
        "description": result.description,
        "wall_seconds": result.wall_seconds,
        "best_seconds": result.best_seconds,
        "mean_seconds": result.mean_seconds,
        "std_seconds": result.std_seconds,
        "rss_peak_bytes": result.rss_peak_bytes,
        "repeats": result.repeats,
        "warmup": result.warmup,
        "metrics": result.metrics,
        "params": result.params,
        "floor": result.floor,
        "skipped": result.skipped,
        "skip_reason": result.skip_reason,
        "notes": result.notes,
    }


def results_to_artifact(results: Sequence[BenchResult]) -> Dict[str, object]:
    """Assemble the schema-versioned artifact dict for a set of suite results."""
    return {
        "schema": ARTIFACT_SCHEMA,
        "schema_version": ARTIFACT_VERSION,
        "created_unix": time.time(),
        "host": {
            "cpus": available_cpus(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "suites": {result.name: _result_payload(result) for result in results},
    }


def write_artifact(path: PathLike, artifact: Dict[str, object]) -> Path:
    """Persist an artifact atomically (sorted keys, stable diffs)."""
    return atomic_write_text(
        Path(path), json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )


def load_artifact(path: PathLike) -> Dict[str, object]:
    """Read and validate an artifact written by :func:`write_artifact`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except ValueError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(f"{path} is not a {ARTIFACT_SCHEMA} artifact")
    if payload.get("schema_version") != ARTIFACT_VERSION:
        raise ValueError(
            f"{path} has schema version {payload.get('schema_version')!r}; "
            f"this code reads version {ARTIFACT_VERSION}"
        )
    if not isinstance(payload.get("suites"), dict):
        raise ValueError(f"{path} has no 'suites' table")
    return payload


@dataclass
class SuiteComparison:
    """One suite's baseline-vs-candidate verdict."""

    name: str
    status: str  # "ok" | "faster" | "warn" | "fail" | "skipped"
    old_seconds: Optional[float] = None
    new_seconds: Optional[float] = None
    delta: Optional[float] = None  # (new - old) / old, on best_seconds
    floored: bool = False
    note: str = ""
    #: Drop of the floor metric (e.g. the speedup ratio) relative to the
    #: baseline: ``(old - new) / old``; positive = the protected headroom
    #: shrank.  ``None`` for floorless suites or non-numeric floor values.
    metric_drop: Optional[float] = None


@dataclass
class Comparison:
    """The full comparison: per-suite rows plus the thresholds that judged them."""

    rows: List[SuiteComparison] = field(default_factory=list)
    warn_threshold: float = DEFAULT_WARN_THRESHOLD
    fail_threshold: float = DEFAULT_FAIL_THRESHOLD

    @property
    def failures(self) -> List[SuiteComparison]:
        return [row for row in self.rows if row.status == "fail"]

    @property
    def warnings(self) -> List[SuiteComparison]:
        return [row for row in self.rows if row.status == "warn"]


def compare_artifacts(
    old: Dict[str, object],
    new: Dict[str, object],
    warn_threshold: float = DEFAULT_WARN_THRESHOLD,
    fail_threshold: float = DEFAULT_FAIL_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Comparison:
    """Compare two artifacts suite by suite (wall clock + floor metric).

    A wall-clock ``fail`` requires all of: the suite is floor-asserted, its
    parameters match between artifacts, the baseline is above
    ``min_seconds``, and the slowdown exceeds ``fail_threshold``.  A
    floor-metric ``fail`` requires a floor-asserted suite whose recorded
    floor metric (the protected speedup ratio — recorded even when the
    floor is disarmed) dropped by more than ``fail_threshold``; ratios are
    dimensionless, so this axis keeps protecting the fast kernels whose
    absolute times are a rounding error of the suite's wall clock.
    Anything beyond ``warn_threshold`` on either axis warns; wall-clock
    improvements beyond ``warn_threshold`` are labelled ``faster`` so
    speedups are visible in the output too.
    """
    if not 0 <= warn_threshold <= fail_threshold:
        raise ValueError("need 0 <= warn_threshold <= fail_threshold")
    comparison = Comparison(
        warn_threshold=warn_threshold, fail_threshold=fail_threshold
    )
    old_suites: Dict[str, Dict[str, object]] = old["suites"]  # type: ignore[assignment]
    new_suites: Dict[str, Dict[str, object]] = new["suites"]  # type: ignore[assignment]
    for name in sorted(set(old_suites) | set(new_suites)):
        before, after = old_suites.get(name), new_suites.get(name)
        if before is None or after is None:
            comparison.rows.append(
                SuiteComparison(
                    name,
                    "skipped",
                    note="present in only one artifact",
                )
            )
            continue
        floored = after.get("floor") is not None
        if before.get("skipped") or after.get("skipped"):
            side = "baseline" if before.get("skipped") else "candidate"
            if before.get("skipped") and after.get("skipped"):
                side = "both runs"
            reason = (after if after.get("skipped") else before).get("skip_reason")
            comparison.rows.append(
                SuiteComparison(
                    name,
                    "skipped",
                    floored=floored,
                    note=f"{side} skipped"
                    + (f": {reason}" if reason else ""),
                )
            )
            continue
        if before.get("params") != after.get("params"):
            comparison.rows.append(
                SuiteComparison(
                    name,
                    "skipped",
                    floored=floored,
                    note="parameters differ (not comparable)",
                )
            )
            continue
        old_s = float(before["best_seconds"])
        new_s = float(after["best_seconds"])
        delta = (new_s - old_s) / old_s if old_s > 0 else float("inf")
        if delta > fail_threshold and floored and old_s >= min_seconds:
            status, note = "fail", f"regression beyond {fail_threshold:.0%} (floored suite)"
        elif delta > warn_threshold:
            status = "warn"
            note = (
                f"regression beyond {warn_threshold:.0%}"
                if floored and old_s >= min_seconds
                else f"regression beyond {warn_threshold:.0%} (informational suite)"
                if not floored
                else f"baseline {old_s:.4f}s below the {min_seconds}s noise floor"
            )
        elif delta < -warn_threshold:
            status, note = "faster", ""
        else:
            status, note = "ok", ""

        # Second axis: the floor metric (the suite's protected speedup
        # ratio).  The value is recorded even when the floor is disarmed,
        # and a ratio is host-comparable in a way absolute seconds are not.
        metric_drop = _floor_metric_drop(before, after)
        if floored and metric_drop is not None:
            metric_name = after["floor"].get("metric", "metric")  # type: ignore[union-attr]
            if metric_drop > fail_threshold:
                status = "fail"
                note = (
                    f"floor metric '{metric_name}' dropped {metric_drop:.0%} "
                    f"(beyond {fail_threshold:.0%})"
                )
            elif metric_drop > warn_threshold and status not in ("fail",):
                status = "warn"
                note = (
                    f"floor metric '{metric_name}' dropped {metric_drop:.0%} "
                    f"(beyond {warn_threshold:.0%})"
                )
        comparison.rows.append(
            SuiteComparison(
                name, status, old_s, new_s, delta, floored, note, metric_drop
            )
        )
    return comparison


def _floor_metric_drop(
    before: Dict[str, object], after: Dict[str, object]
) -> Optional[float]:
    """Relative drop of the recorded floor metric, or ``None`` if unavailable."""
    old_floor, new_floor = before.get("floor"), after.get("floor")
    if not isinstance(old_floor, dict) or not isinstance(new_floor, dict):
        return None
    old_value, new_value = old_floor.get("value"), new_floor.get("value")
    if not isinstance(old_value, (int, float)) or not isinstance(
        new_value, (int, float)
    ):
        return None
    if old_value <= 0:
        return None
    return (float(old_value) - float(new_value)) / float(old_value)


def comparison_exit_code(comparison: Comparison) -> int:
    """0 when no suite failed the gate, 1 otherwise (warnings stay soft)."""
    return 1 if comparison.failures else 0


def format_comparison(comparison: Comparison) -> str:
    """Plain-text comparison table (what ``repro-bench compare`` prints)."""
    lines = [
        f"{'suite':<26s}{'baseline':>12s}{'candidate':>12s}{'delta':>9s}"
        f"{'gate':>9s}  note",
    ]
    for row in comparison.rows:
        old_s = "-" if row.old_seconds is None else f"{row.old_seconds:.5f}"
        new_s = "-" if row.new_seconds is None else f"{row.new_seconds:.5f}"
        delta = "-" if row.delta is None else f"{row.delta:+.1%}"
        lines.append(
            f"{row.name:<26s}{old_s:>12s}{new_s:>12s}{delta:>9s}"
            f"{row.status:>9s}  {row.note}"
        )
    lines.append(
        f"{len(comparison.failures)} failure(s), {len(comparison.warnings)} "
        f"warning(s) (warn > {comparison.warn_threshold:.0%}, fail > "
        f"{comparison.fail_threshold:.0%} on floor-asserted suites)"
    )
    return "\n".join(lines)
