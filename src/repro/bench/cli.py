"""``repro-bench`` — the command-line surface of the benchmark harness.

Four subcommands::

    repro-bench list                                   # registered suites
    repro-bench run --out BENCH_5.json                 # run suites, emit artifact
    repro-bench run --filter gossip --repeats 5        # subset, more repeats
    repro-bench compare BENCH_5.json BENCH_6.json      # regression gate
    repro-bench report BENCH_5.json --check            # docs/PERFORMANCE.md freshness

``run --scale smoke`` applies the reduced CI knob set
(:data:`repro.bench.suites.SMOKE_SCALE`) so every suite finishes in seconds
with every floor disarmed; explicit ``REPRO_BENCH_*`` environment settings
always win over the scale preset.

Exit status: ``run`` is 0 unless a suite raises (or, with
``--strict-floors``, an armed floor fails); ``compare`` is 0 unless a
floor-asserted suite regressed beyond ``--max-regression``; ``report
--check`` is 0 when the rendered page matches the file on disk.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bench import suites as _suites  # noqa: F401 - registers the suites
from repro.bench.artifact import (
    DEFAULT_FAIL_THRESHOLD,
    DEFAULT_MIN_SECONDS,
    DEFAULT_WARN_THRESHOLD,
    compare_artifacts,
    comparison_exit_code,
    format_comparison,
    load_artifact,
    results_to_artifact,
    write_artifact,
)
from repro.bench.registry import (
    BenchResult,
    create_benchmark,
    registered_benchmarks,
    run_benchmark,
    select_benchmarks,
)
from repro.bench.report import render_markdown
from repro.bench.suites import SMOKE_SCALE, apply_scale
from repro.simulation.checkpoint import atomic_write_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Registered benchmark suites, perf-history artifacts and "
        "the regression gate for the PDSL reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered benchmark suites")

    run = subparsers.add_parser(
        "run", help="run suites and emit a schema-versioned BENCH_<n>.json"
    )
    run.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="only run suites whose name contains SUBSTR (repeatable)",
    )
    run.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repetitions per suite (default: each suite's own setting)",
    )
    run.add_argument(
        "--scale",
        choices=("default", "smoke"),
        default="default",
        help="knob preset: 'smoke' applies the reduced CI scale "
        "(explicit REPRO_BENCH_* env settings still win)",
    )
    run.add_argument(
        "--out", default=None, metavar="PATH", help="write the JSON artifact here"
    )
    run.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also render the markdown performance page to PATH",
    )
    run.add_argument(
        "--strict-floors",
        action="store_true",
        help="exit 1 when an armed speed floor fails (default: report only)",
    )

    compare = subparsers.add_parser(
        "compare", help="gate a candidate artifact against a baseline"
    )
    compare.add_argument("baseline", help="baseline BENCH_<n>.json")
    compare.add_argument("candidate", help="candidate BENCH_<n>.json")
    compare.add_argument(
        "--warn",
        type=float,
        default=DEFAULT_WARN_THRESHOLD,
        help="warn on slowdowns beyond this fraction (default: %(default)s)",
    )
    compare.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_FAIL_THRESHOLD,
        help="fail floor-asserted suites beyond this fraction "
        "(default: %(default)s)",
    )
    compare.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="baselines faster than this never fail the gate "
        "(timer-noise floor; default: %(default)s)",
    )

    report = subparsers.add_parser(
        "report", help="render (or freshness-check) docs/PERFORMANCE.md"
    )
    report.add_argument("artifact", help="BENCH_<n>.json to render")
    report.add_argument(
        "--out",
        default="docs/PERFORMANCE.md",
        help="markdown destination (default: %(default)s)",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="do not write; exit 1 if the rendered page differs from --out",
    )
    return parser


def _format_rss(num_bytes: Optional[int]) -> str:
    if num_bytes is None:
        return "n/a"
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} TiB"  # pragma: no cover - unreachable


def _print_result(result: BenchResult) -> None:
    if result.skipped:
        print(f"[{result.name}] SKIPPED: {result.skip_reason}")
        return
    print(f"[{result.name}] best {result.best_seconds:.5f}s over "
          f"{result.repeats} repeat(s) (mean {result.mean_seconds:.5f}s "
          f"± {result.std_seconds:.5f}s, peak RSS "
          f"{_format_rss(result.rss_peak_bytes)})")
    for key in sorted(result.metrics):
        print(f"    {key:<28s} {result.metrics[key]:.6g}")
    for key in sorted(result.notes):
        print(f"    {key:<28s} {result.notes[key]}")
    if result.floor is not None:
        floor = result.floor
        if floor["armed"]:
            verdict = "PASS" if floor["passed"] else "FAIL"
            print(
                f"    floor: {floor['metric']} >= {floor['minimum']} -> "
                f"{floor['value']:.2f} [{verdict}]"
            )
        else:
            print(f"    floor: not armed ({floor['reason']})")


def _cmd_list() -> int:
    for name in registered_benchmarks():
        bench = create_benchmark(name)
        floored = " [floored]" if bench.floor is not None else ""
        print(f"{name:<26s} {bench.description}{floored}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.scale == "smoke":
        apply_scale(SMOKE_SCALE)
    names = select_benchmarks(args.filter)
    if not names:
        print(f"repro-bench: no suites match {args.filter!r}", file=sys.stderr)
        return 2
    results: List[BenchResult] = []
    for name in names:
        bench = create_benchmark(name)
        print(f"running {name} ({bench.description}) ...", flush=True)
        results.append(run_benchmark(bench, repeats=args.repeats))
        _print_result(results[-1])
    artifact = results_to_artifact(results)
    if args.out:
        path = write_artifact(args.out, artifact)
        print(f"wrote {path} ({len(results)} suite(s))")
    if args.report:
        source = Path(args.out).name if args.out else "<unsaved run>"
        atomic_write_text(Path(args.report), render_markdown(artifact, source))
        print(f"wrote {args.report}")
    if args.strict_floors:
        failed = [
            r.name
            for r in results
            if r.floor is not None and r.floor["armed"] and not r.floor["passed"]
        ]
        if failed:
            print(f"repro-bench: floor failures: {', '.join(failed)}", file=sys.stderr)
            return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    comparison = compare_artifacts(
        load_artifact(args.baseline),
        load_artifact(args.candidate),
        warn_threshold=args.warn,
        fail_threshold=args.max_regression,
        min_seconds=args.min_seconds,
    )
    print(format_comparison(comparison))
    return comparison_exit_code(comparison)


def _cmd_report(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    rendered = render_markdown(artifact, Path(args.artifact).name)
    out = Path(args.out)
    if args.check:
        current = out.read_text() if out.exists() else ""
        if current != rendered:
            print(
                f"repro-bench: {out} is stale — regenerate with "
                f"'repro-bench report {args.artifact} --out {out}'",
                file=sys.stderr,
            )
            return 1
        print(f"{out} is up to date with {args.artifact}")
        return 0
    atomic_write_text(out, rendered)
    print(f"wrote {out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-bench`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        # No blanket except here: anything a suite raises propagates with
        # its traceback — a failing benchmark is a bug to debug, not a
        # usage error to summarise.
        return _cmd_run(args)
    try:
        if args.command == "compare":
            return _cmd_compare(args)
        return _cmd_report(args)
    except (ValueError, FileNotFoundError) as error:
        # Input errors: unreadable/foreign artifacts, bad thresholds.
        print(f"repro-bench: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
