"""The shared "arm the floor?" guard for benchmark assertions.

Speed floors ("the vectorized engine must be ≥5x faster at 256 agents")
turn benchmarks into regression tests — but a wall-clock assertion is only
meaningful when the measurement is trustworthy.  Three conditions gate
every floor in the suite, uniformly, instead of ad-hoc per-file copies:

* **full scale** — reduced-scale smoke runs (CI's small ``REPRO_BENCH_*``
  settings) measure correctness, not headroom; the floor arms only when the
  benchmark ran at the scale the floor was calibrated for;
* **enough CPUs** — comparisons that need parallel hardware (the
  orchestrator's process pool) or simply a core to themselves cannot beat
  their baseline on a 1-CPU machine, so each floor declares the CPUs it
  needs;
* **enough signal** — when the *baseline* side of the comparison completes
  in microseconds, the ratio measures timer noise and dispatch overhead,
  not the optimisation; the floor arms only once the baseline measurement
  exceeds a per-floor minimum duration.

A disarmed floor is not a silent skip: :func:`arm_floor` returns the reason,
and both the pytest wrappers and ``repro-bench`` print it.

The guard also has a **memory arm** for the large-``N`` scaling suites: a
suite that would allocate more RAM than the machine can spare is *skipped*
(not failed) via :func:`check_memory`, and the skip reason lands in the
benchmark artifact — so a laptop run of the sweep records "N=262144 skipped:
needs 6.0 GiB, 2.1 GiB available" instead of getting OOM-killed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FloorDecision",
    "MemoryDecision",
    "available_cpus",
    "available_memory_bytes",
    "arm_floor",
    "check_memory",
]


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware on Linux)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def available_memory_bytes() -> Optional[int]:
    """Memory the kernel estimates is available without swapping, in bytes.

    Reads ``MemAvailable`` from ``/proc/meminfo`` (Linux).  Returns ``None``
    when the estimate cannot be obtained — callers must treat that as
    "unknown", not "unlimited" or "zero".
    """
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        pass
    return None


@dataclass(frozen=True)
class FloorDecision:
    """Whether a speed floor should be asserted, and why (not)."""

    armed: bool
    reason: str

    def __bool__(self) -> bool:
        return self.armed


def arm_floor(
    *,
    full_scale: bool,
    min_cpus: int = 2,
    baseline_seconds: Optional[float] = None,
    min_baseline_seconds: float = 0.0,
) -> FloorDecision:
    """Decide whether a benchmark's speed floor should be asserted.

    Parameters
    ----------
    full_scale:
        ``True`` when the benchmark ran at the scale the floor was
        calibrated for (e.g. "the agent sweep reached N = 4096").  Reduced
        smoke scales never arm.
    min_cpus:
        Minimum CPUs the comparison needs to be fair (default 2: one for
        the benchmark, one for the rest of the machine; pool benchmarks
        pass their worker count).
    baseline_seconds:
        Measured duration of the comparison's *slow* side, when there is
        one.  ``None`` skips the signal check.
    min_baseline_seconds:
        The baseline duration below which the ratio is considered noise.
    """
    if not full_scale:
        return FloorDecision(False, "reduced scale (floor calibrated for full scale)")
    cpus = available_cpus()
    if cpus < min_cpus:
        return FloorDecision(
            False, f"only {cpus} CPU(s) available (floor needs >= {min_cpus})"
        )
    if baseline_seconds is not None and baseline_seconds < min_baseline_seconds:
        return FloorDecision(
            False,
            f"baseline measurement {baseline_seconds:.3f}s < "
            f"{min_baseline_seconds:.3f}s (too short to assert a ratio)",
        )
    return FloorDecision(True, "armed")


@dataclass(frozen=True)
class MemoryDecision:
    """Whether a memory-hungry benchmark (or sweep point) fits in RAM."""

    fits: bool
    reason: str
    required_bytes: int
    available_bytes: Optional[int]

    def __bool__(self) -> bool:
        return self.fits


def _format_bytes(num_bytes: float) -> str:
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} TiB"  # pragma: no cover - unreachable


def check_memory(required_bytes: int, safety_factor: float = 1.5) -> MemoryDecision:
    """Decide whether a workload needing ``required_bytes`` of RAM should run.

    The decision is **skip, not fail**: a machine too small for a scaling
    point is an environment fact, not a regression.  ``safety_factor``
    covers transient copies (gossip products, checkpoint buffers) beyond the
    caller's steady-state estimate.  An unknown availability (non-Linux, no
    ``/proc/meminfo``) errs on the side of running — the caller asked, the
    kernel would not answer.
    """
    if required_bytes < 0:
        raise ValueError("required_bytes must be non-negative")
    if safety_factor < 1.0:
        raise ValueError("safety_factor must be >= 1.0")
    available = available_memory_bytes()
    needed = int(required_bytes * safety_factor)
    if available is None:
        return MemoryDecision(
            True, "memory availability unknown; running", required_bytes, None
        )
    if needed > available:
        return MemoryDecision(
            False,
            f"needs {_format_bytes(needed)} "
            f"(incl. {safety_factor:g}x headroom), "
            f"{_format_bytes(available)} available",
            required_bytes,
            available,
        )
    return MemoryDecision(
        True,
        f"fits: needs {_format_bytes(needed)}, "
        f"{_format_bytes(available)} available",
        required_bytes,
        available,
    )
