"""The shared "arm the floor?" guard for benchmark assertions.

Speed floors ("the vectorized engine must be ≥5x faster at 256 agents")
turn benchmarks into regression tests — but a wall-clock assertion is only
meaningful when the measurement is trustworthy.  Three conditions gate
every floor in the suite, uniformly, instead of ad-hoc per-file copies:

* **full scale** — reduced-scale smoke runs (CI's small ``REPRO_BENCH_*``
  settings) measure correctness, not headroom; the floor arms only when the
  benchmark ran at the scale the floor was calibrated for;
* **enough CPUs** — comparisons that need parallel hardware (the
  orchestrator's process pool) or simply a core to themselves cannot beat
  their baseline on a 1-CPU machine, so each floor declares the CPUs it
  needs;
* **enough signal** — when the *baseline* side of the comparison completes
  in microseconds, the ratio measures timer noise and dispatch overhead,
  not the optimisation; the floor arms only once the baseline measurement
  exceeds a per-floor minimum duration.

A disarmed floor is not a silent skip: :func:`arm_floor` returns the reason,
and both the pytest wrappers and ``repro-bench`` print it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = ["FloorDecision", "available_cpus", "arm_floor"]


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware on Linux)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class FloorDecision:
    """Whether a speed floor should be asserted, and why (not)."""

    armed: bool
    reason: str

    def __bool__(self) -> bool:
        return self.armed


def arm_floor(
    *,
    full_scale: bool,
    min_cpus: int = 2,
    baseline_seconds: Optional[float] = None,
    min_baseline_seconds: float = 0.0,
) -> FloorDecision:
    """Decide whether a benchmark's speed floor should be asserted.

    Parameters
    ----------
    full_scale:
        ``True`` when the benchmark ran at the scale the floor was
        calibrated for (e.g. "the agent sweep reached N = 4096").  Reduced
        smoke scales never arm.
    min_cpus:
        Minimum CPUs the comparison needs to be fair (default 2: one for
        the benchmark, one for the rest of the machine; pool benchmarks
        pass their worker count).
    baseline_seconds:
        Measured duration of the comparison's *slow* side, when there is
        one.  ``None`` skips the signal check.
    min_baseline_seconds:
        The baseline duration below which the ratio is considered noise.
    """
    if not full_scale:
        return FloorDecision(False, "reduced scale (floor calibrated for full scale)")
    cpus = available_cpus()
    if cpus < min_cpus:
        return FloorDecision(
            False, f"only {cpus} CPU(s) available (floor needs >= {min_cpus})"
        )
    if baseline_seconds is not None and baseline_seconds < min_baseline_seconds:
        return FloorDecision(
            False,
            f"baseline measurement {baseline_seconds:.3f}s < "
            f"{min_baseline_seconds:.3f}s (too short to assert a ratio)",
        )
    return FloorDecision(True, "armed")
