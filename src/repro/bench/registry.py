"""The benchmark registry: suites as first-class, discoverable objects.

A benchmark suite is a class with a ``setup`` / ``run`` / ``teardown``
lifecycle, registered under a stable ``group/name`` identifier with the
:func:`benchmark` decorator.  The harness (:func:`run_benchmark`) drives the
lifecycle uniformly — optional warm-up call, ``repeats`` timed calls through
the shared :class:`~repro.bench.timer.Timer`, best/mean±std/RSS capture —
and every suite comes out as a :class:`BenchResult` that the artifact layer
(:mod:`repro.bench.artifact`) serialises into schema-versioned
``BENCH_<n>.json`` files.

Speed floors are declared, not asserted inline: a suite carries a
:class:`FloorSpec` naming the metric, the minimum, and the arming
requirements, and :func:`check_floor` routes the decision through the shared
guard (:mod:`repro.bench.guard`) so every floor in the repository uses the
same "full scale + enough CPUs + enough signal" rule.  The pytest wrappers
under ``benchmarks/`` call :func:`assert_floor`; ``repro-bench run`` reports
floor status in the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.bench.guard import FloorDecision, arm_floor, check_memory
from repro.bench.timer import Measurement, Timer

__all__ = [
    "FloorSpec",
    "Benchmark",
    "BenchResult",
    "benchmark",
    "registered_benchmarks",
    "create_benchmark",
    "select_benchmarks",
    "run_benchmark",
    "check_floor",
    "assert_floor",
]


@dataclass(frozen=True)
class FloorSpec:
    """A declared speed floor: ``metrics[metric] >= minimum`` when armed.

    ``min_cpus`` and ``min_baseline_seconds`` parameterise the shared guard;
    whether the run was *full scale* (and what the baseline duration was) is
    suite-specific, so suites report it through
    :meth:`Benchmark.floor_context`.
    """

    metric: str
    minimum: float
    min_cpus: int = 2
    min_baseline_seconds: float = 0.0


class Benchmark:
    """Base class for a registered benchmark suite.

    Subclasses set the class attributes and implement :meth:`run` (the timed
    body, returning a metrics dict); :meth:`setup` / :meth:`teardown` bracket
    the timed calls and are untimed.  ``default_repeats`` / ``default_warmup``
    let expensive suites (a whole orchestrator grid) opt out of repetition.
    """

    #: Stable identifier, ``group/name`` (e.g. ``"gossip/sparse"``).
    name: str = ""
    #: One-line description shown by ``repro-bench list`` and in reports.
    description: str = ""
    #: Declared speed floor, or ``None`` for purely informational suites.
    floor: Optional[FloorSpec] = None
    default_repeats: int = 3
    default_warmup: bool = True

    def params(self) -> Dict[str, object]:
        """The knob values this instance resolved (recorded in the artifact)."""
        return {}

    def required_memory_bytes(self) -> Optional[int]:
        """Steady-state RAM this suite needs, or ``None`` for "no declared need".

        Suites that allocate fleet-scale matrices declare their footprint so
        :func:`run_benchmark` can *skip* (not fail) them on machines too
        small to hold it — the skip and its reason are recorded in the
        artifact.  Sweep-style suites that guard per point internally (see
        the scaling sweep) should return ``None`` here and use
        :func:`~repro.bench.guard.check_memory` themselves.
        """
        return None

    def notes(self) -> Dict[str, str]:
        """Free-form annotations recorded in the artifact after :meth:`run`.

        The scaling sweep uses this for per-point memory skips
        (``"skip@262144" -> "needs 6.0 GiB, ..."``) so a partially-guarded
        sweep documents exactly which points it dropped and why.
        """
        return {}

    def setup(self) -> None:
        """Build inputs; untimed."""

    def run(self) -> Dict[str, float]:
        """The timed body; returns suite metrics (ratios, per-size timings)."""
        raise NotImplementedError

    def teardown(self) -> None:
        """Release resources; untimed."""

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        """``(full_scale, baseline_seconds)`` for the shared floor guard.

        Default: full scale (no scale knob), no baseline signal check.
        """
        return True, None


@dataclass
class BenchResult:
    """One suite's outcome: timings, metrics, parameters and floor status."""

    name: str
    description: str
    wall_seconds: List[float]
    best_seconds: float
    mean_seconds: float
    std_seconds: float
    rss_peak_bytes: Optional[int]
    repeats: int
    warmup: bool
    metrics: Dict[str, float] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)
    floor: Optional[Dict[str, object]] = None
    skipped: bool = False
    skip_reason: Optional[str] = None
    notes: Dict[str, str] = field(default_factory=dict)

    @property
    def floored(self) -> bool:
        """Whether this suite declares a speed floor (the regression-gate set)."""
        return self.floor is not None


_REGISTRY: Dict[str, Type[Benchmark]] = {}


def benchmark(cls: Type[Benchmark]) -> Type[Benchmark]:
    """Class decorator: register a suite under its ``name``.

    Names must be unique and non-empty; registration order is irrelevant
    (listings are sorted).
    """
    if not issubclass(cls, Benchmark):
        raise TypeError(f"@benchmark expects a Benchmark subclass, got {cls!r}")
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty 'name'")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"benchmark name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def registered_benchmarks() -> List[str]:
    """All registered suite names, sorted."""
    return sorted(_REGISTRY)


def create_benchmark(name: str) -> Benchmark:
    """Instantiate the suite registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no benchmark named {name!r}; known: {', '.join(sorted(_REGISTRY)) or '-'}"
        ) from None
    return cls()


def select_benchmarks(filters: Sequence[str] = ()) -> List[str]:
    """Suite names matching any of the substring ``filters`` (all when empty)."""
    names = registered_benchmarks()
    if not filters:
        return names
    return [name for name in names if any(f in name for f in filters)]


def run_benchmark(
    bench: Benchmark,
    repeats: Optional[int] = None,
    warmup: Optional[bool] = None,
) -> BenchResult:
    """Drive one suite's lifecycle and measure it.

    ``setup`` → optional untimed warm-up ``run`` → ``repeats`` timed ``run``
    calls → ``teardown`` (always, even when a timed call raises).  The
    metrics dict from the *last* timed call is kept — suites are expected to
    produce stable metrics across repeats (their internal comparisons do
    their own best-of timing where it matters).
    """
    repeats = bench.default_repeats if repeats is None else max(1, int(repeats))
    warmup = bench.default_warmup if warmup is None else bool(warmup)
    required = bench.required_memory_bytes()
    if required is not None:
        decision = check_memory(required)
        if not decision.fits:
            # Skip, don't fail: a machine too small for the suite's fleet
            # is an environment fact, and the artifact records why.
            return BenchResult(
                name=bench.name,
                description=bench.description,
                wall_seconds=[],
                best_seconds=0.0,
                mean_seconds=0.0,
                std_seconds=0.0,
                rss_peak_bytes=None,
                repeats=0,
                warmup=False,
                metrics={},
                params=bench.params(),
                floor=None,
                skipped=True,
                skip_reason=decision.reason,
            )
    measurement = Measurement()
    metrics: Dict[str, float] = {}
    bench.setup()
    try:
        if warmup:
            bench.run()
        for _ in range(repeats):
            with Timer(measurement):
                metrics = dict(bench.run() or {})
    finally:
        bench.teardown()
    decision, floor_payload = check_floor(bench, metrics)
    del decision  # recorded inside the payload; assert_floor re-derives it
    return BenchResult(
        name=bench.name,
        description=bench.description,
        wall_seconds=list(measurement.wall_seconds),
        best_seconds=measurement.best_seconds,
        mean_seconds=measurement.mean_seconds,
        std_seconds=measurement.std_seconds,
        rss_peak_bytes=measurement.rss_peak_bytes,
        repeats=repeats,
        warmup=warmup,
        metrics=metrics,
        params=bench.params(),
        floor=floor_payload,
        notes=bench.notes(),
    )


def check_floor(
    bench: Benchmark, metrics: Dict[str, float]
) -> Tuple[Optional[FloorDecision], Optional[Dict[str, object]]]:
    """Evaluate a suite's floor against its metrics through the shared guard.

    Returns ``(decision, payload)`` where ``payload`` is the JSON-ready floor
    record stored in the artifact (``None`` for floorless suites).
    """
    spec = bench.floor
    if spec is None:
        return None, None
    full_scale, baseline_seconds = bench.floor_context(metrics)
    decision = arm_floor(
        full_scale=full_scale,
        min_cpus=spec.min_cpus,
        baseline_seconds=baseline_seconds,
        min_baseline_seconds=spec.min_baseline_seconds,
    )
    value = metrics.get(spec.metric)
    passed: Optional[bool] = None
    if decision.armed:
        passed = value is not None and value >= spec.minimum
    payload: Dict[str, object] = {
        "metric": spec.metric,
        "minimum": spec.minimum,
        "value": value,
        "armed": decision.armed,
        "reason": decision.reason,
        "passed": passed,
    }
    return decision, payload


def assert_floor(result: BenchResult) -> None:
    """Raise ``AssertionError`` when an armed floor failed; print disarm reasons.

    The single assertion path every pytest benchmark wrapper shares: armed
    and below the floor fails loudly; disarmed floors report why and pass.
    """
    floor = result.floor
    if floor is None:
        return
    if not floor["armed"]:
        print(f"[{result.name}] floor not armed: {floor['reason']}")
        return
    assert floor["passed"], (
        f"[{result.name}] {floor['metric']} = {floor['value']} fell below the "
        f"declared floor {floor['minimum']} (armed: {floor['reason']})"
    )
