"""The registered benchmark suites.

Each suite packages one hot path of the system behind the
:class:`~repro.bench.registry.Benchmark` lifecycle:

* ``engine/round`` — loop vs vectorized engine, seconds per DP-DPSGD round;
* ``engine/round-streamed`` — one full streamed round (blocked gradients,
  noise, codec, gossip; memmap state) across fleet sizes up to a million
  agents, memory-guarded, streamed-vs-one-shot bit-identity asserted;
* ``gossip/sparse`` — dense vs CSR gossip kernels (bit-identity checked);
* ``gossip/compressed`` — dense vs top-k vs int8 gossip wire bytes
  (identity-codec bit-identity checked);
* ``gossip/scaling-sweep`` — gossip kernels (one-shot, blocked, float32,
  mixed-precision, hierarchical two-level) across fleet sizes up to the
  machine's memory ceiling, with too-large points skipped via the shared
  memory guard;
* ``engine/async-round`` — the event-driven time model: event throughput
  and simulated-vs-real time ratio of barrier and async rounds on a
  heterogeneous trace fleet (unit-trace bit-identity checked);
* ``topology/dynamic-cache`` — schedule snapshot LRU vs naive rebuild;
* ``orchestrator/pool`` — process-pool grid vs serial (plus warm store);
* ``checkpoint/roundtrip`` — ``state_dict`` → save → load → restore;
* ``game/shapley-mc`` — the vectorized Monte-Carlo Shapley estimator plus
  the fleet-scale prefix walk (axiom-checked in-sweep);
* ``privacy/noise-rows`` — batched per-owner Gaussian noise rows;
* ``attacks/inversion-fleet`` — fleet gradient inversion vs the sequential
  per-victim loop (bit-identity checked);
* ``attacks/membership`` — fleet membership-loss scoring vs per-row calls
  (bit-identity checked).

Scales resolve from the same ``REPRO_BENCH_*`` environment knobs the pytest
wrappers under ``benchmarks/`` have always used, so one configuration drives
both surfaces; :data:`SMOKE_SCALE` is the reduced setting CI applies via
``repro-bench run --scale smoke``.  Suites embed their correctness checks
(bit-identical kernels, serial-vs-pooled history equality, cache
bookkeeping): a benchmark that silently compares different computations is
worse than no benchmark.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.registry import Benchmark, FloorSpec, benchmark
from repro.bench.timer import peak_rss_bytes

__all__ = [
    "SMOKE_SCALE",
    "apply_scale",
    "EngineRoundSuite",
    "StreamedRoundSuite",
    "AsyncRoundSuite",
    "SparseGossipSuite",
    "CompressedGossipSuite",
    "GossipScalingSweepSuite",
    "DynamicTopologyCacheSuite",
    "OrchestratorPoolSuite",
    "CheckpointRoundtripSuite",
    "MonteCarloShapleySuite",
    "NoiseRowsSuite",
    "FleetInversionSuite",
    "MembershipFleetSuite",
]

#: Reduced-scale knob values for CI smoke runs: every suite executes every
#: code path in seconds, and every floor stays disarmed (the shared guard
#: sees the reduced scale).  Applied with :func:`apply_scale`.
SMOKE_SCALE: Dict[str, str] = {
    "REPRO_BENCH_ENGINE_AGENTS": "16,64",
    "REPRO_BENCH_ENGINE_ROUNDS": "1",
    "REPRO_BENCH_ROUND_AGENTS": "64,256",
    "REPRO_BENCH_ROUND_WORKERS": "2",
    "REPRO_BENCH_ROUND_BATCH": "8",
    "REPRO_BENCH_ASYNC_AGENTS": "128",
    "REPRO_BENCH_ASYNC_ROUNDS": "2",
    "REPRO_BENCH_SPARSE_AGENTS": "256",
    "REPRO_BENCH_SPARSE_ROUNDS": "1",
    "REPRO_BENCH_COMPRESS_AGENTS": "64",
    "REPRO_BENCH_COMPRESS_ROUNDS": "1",
    "REPRO_BENCH_DYNTOPO_AGENTS": "128",
    "REPRO_BENCH_DYNTOPO_ROUNDS": "20",
    "REPRO_BENCH_DYNTOPO_PERIOD": "5",
    "REPRO_BENCH_ORCH_JOBS": "4",
    "REPRO_BENCH_ORCH_ROUNDS": "8",
    "REPRO_BENCH_ORCH_AGENTS": "5",
    "REPRO_BENCH_CKPT_AGENTS": "16",
    "REPRO_BENCH_CKPT_ROUNDS": "2",
    "REPRO_BENCH_SHAPLEY_PLAYERS": "8",
    "REPRO_BENCH_SHAPLEY_PERMS": "50",
    "REPRO_BENCH_SHAPLEY_FLEET": "256",
    "REPRO_BENCH_SHAPLEY_FLEET_PERMS": "1",
    "REPRO_BENCH_NOISE_AGENTS": "256",
    "REPRO_BENCH_NOISE_DIM": "32",
    "REPRO_BENCH_SWEEP_AGENTS": "64,256",
    "REPRO_BENCH_ATTACK_AGENTS": "16",
    "REPRO_BENCH_ATTACK_ITERS": "4",
    "REPRO_BENCH_ATTACK_BATCH": "4",
    "REPRO_BENCH_MEMBER_ROWS": "64",
    "REPRO_BENCH_MEMBER_SAMPLES": "16",
}


def apply_scale(scale: Dict[str, str]) -> None:
    """Install scale knobs into the environment (explicit settings win)."""
    for key, value in scale.items():
        os.environ.setdefault(key, value)


def _env_ints(name: str, default: str) -> List[int]:
    raw = os.environ.get(name, default)
    return [int(part) for part in raw.split(",") if part.strip()]


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    return max(minimum, int(os.environ.get(name, default)))


def _timed(apply, *args, rounds: int = 1, warm: bool = True) -> float:
    """Best-effort seconds per call: one warm-up, then ``rounds`` timed calls."""
    if warm:
        apply(*args)
    started = time.perf_counter()
    for _ in range(rounds):
        apply(*args)
    return (time.perf_counter() - started) / rounds


# ---------------------------------------------------------------------------
# engine/round
# ---------------------------------------------------------------------------
@benchmark
class EngineRoundSuite(Benchmark):
    """Loop vs vectorized engine: seconds per DP-DPSGD communication round."""

    name = "engine/round"
    description = "loop vs vectorized engine, seconds per DP-DPSGD round"
    floor = FloorSpec(
        metric="speedup", minimum=5.0, min_cpus=2, min_baseline_seconds=0.2
    )
    default_repeats = 1
    default_warmup = False
    FULL_SCALE_AGENTS = 256

    def __init__(self) -> None:
        self.agent_counts = _env_ints("REPRO_BENCH_ENGINE_AGENTS", "16,64,256")
        self.rounds = _env_int("REPRO_BENCH_ENGINE_ROUNDS", 2)

    def params(self) -> Dict[str, object]:
        return {"agents": self.agent_counts, "rounds": self.rounds}

    @staticmethod
    def build(num_agents: int, backend: str):
        """One DP-DPSGD instance on the synthetic classification task."""
        from repro.baselines import DPDPSGD
        from repro.core.config import AlgorithmConfig
        from repro.data.partition import partition_iid
        from repro.data.synthetic import make_classification_dataset
        from repro.nn.zoo import make_linear_classifier
        from repro.topology.graphs import fully_connected_graph

        data = make_classification_dataset(
            num_samples=max(2048, 8 * num_agents),
            num_features=16,
            num_classes=4,
            cluster_std=1.0,
            seed=0,
        )
        shards = partition_iid(data, num_agents, np.random.default_rng(0)).shards
        topology = fully_connected_graph(num_agents)
        model = make_linear_classifier(16, 4, seed=0)
        config = AlgorithmConfig(
            learning_rate=0.05,
            sigma=0.5,
            clip_threshold=1.0,
            batch_size=8,
            seed=0,
            backend=backend,
        )
        return DPDPSGD(model, topology, shards, config)

    def run(self) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        for num_agents in self.agent_counts:
            loop_s = _timed(
                self.build(num_agents, "loop").run_round, rounds=self.rounds
            )
            vec_s = _timed(
                self.build(num_agents, "vectorized").run_round, rounds=self.rounds
            )
            metrics[f"loop_s@{num_agents}"] = loop_s
            metrics[f"vectorized_s@{num_agents}"] = vec_s
            metrics[f"speedup@{num_agents}"] = loop_s / vec_s
        largest = max(self.agent_counts)
        metrics["speedup"] = metrics[f"speedup@{largest}"]
        return metrics

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        largest = max(self.agent_counts)
        baseline = metrics.get(f"loop_s@{largest}")
        total = None if baseline is None else baseline * self.rounds
        return largest >= self.FULL_SCALE_AGENTS, total


# ---------------------------------------------------------------------------
# engine/async-round
# ---------------------------------------------------------------------------
@benchmark
class AsyncRoundSuite(Benchmark):
    """The event-driven time model's overhead and throughput.

    For ``N`` in ``REPRO_BENCH_ASYNC_AGENTS`` (default 4096) on a ring:

    * ``barrier_events_per_s@N`` / ``async_events_per_s@N`` — discrete
      events processed per real second in each mode;
    * ``sim_real_ratio@N`` — simulated seconds produced per real second of
      simulation (how much faster than reality the simulator runs on the
      heterogeneous trace fleet);
    * ``barrier_overhead@N`` — barrier-mode wall time over the bare
      synchronous round (the cost of simulating time at all).

    Correctness is embedded: before timing, a small unit-trace barrier run
    is checked bit-identical to the bare vectorized engine.
    """

    name = "engine/async-round"
    description = "event-driven time model: events/sec and simulated-vs-real ratio"
    default_repeats = 1
    default_warmup = False
    FULL_SCALE_AGENTS = 4096

    def __init__(self) -> None:
        self.agent_counts = _env_ints("REPRO_BENCH_ASYNC_AGENTS", "4096")
        self.rounds = _env_int("REPRO_BENCH_ASYNC_ROUNDS", 3)

    def params(self) -> Dict[str, object]:
        return {"agents": self.agent_counts, "rounds": self.rounds}

    @staticmethod
    def build(num_agents: int, wrap: str = "bare"):
        """A ring DP-DPSGD fleet: bare, barrier-wrapped, or async-wrapped."""
        from repro.baselines import DPDPSGD
        from repro.core.config import AlgorithmConfig
        from repro.data.partition import partition_iid
        from repro.data.synthetic import make_classification_dataset
        from repro.nn.zoo import make_linear_classifier
        from repro.simulation.events import (
            AsyncEngine,
            synthetic_traces,
            uniform_traces,
        )
        from repro.topology.graphs import ring_graph

        data = make_classification_dataset(
            num_samples=max(2048, 4 * num_agents),
            num_features=16,
            num_classes=4,
            cluster_std=1.0,
            seed=0,
        )
        shards = partition_iid(data, num_agents, np.random.default_rng(0)).shards
        model = make_linear_classifier(16, 4, seed=0)
        config = AlgorithmConfig(
            learning_rate=0.05,
            sigma=0.5,
            clip_threshold=1.0,
            batch_size=4,
            seed=0,
            backend="vectorized",
        )
        algorithm = DPDPSGD(model, ring_graph(num_agents), shards, config)
        if wrap == "bare":
            return algorithm
        if wrap == "barrier":
            return AsyncEngine(algorithm, traces=uniform_traces(num_agents))
        if wrap == "async":
            return AsyncEngine(
                algorithm,
                traces=synthetic_traces(num_agents, seed=1),
                async_mode=True,
            )
        raise ValueError(f"unknown wrap mode {wrap!r}")

    def _check_bit_identity(self) -> None:
        """Unit-trace barrier mode must reproduce the bare engine exactly."""
        check_agents = min(64, min(self.agent_counts))
        bare = self.build(check_agents, "bare")
        wrapped = self.build(check_agents, "barrier")
        for _ in range(2):
            bare.run_round()
            wrapped.run_round()
        np.testing.assert_array_equal(bare.state, wrapped.state)

    def run(self) -> Dict[str, float]:
        self._check_bit_identity()
        metrics: Dict[str, float] = {}
        for num_agents in self.agent_counts:
            bare_s = _timed(
                self.build(num_agents, "bare").run_round,
                rounds=self.rounds,
                warm=False,
            )
            barrier = self.build(num_agents, "barrier")
            barrier_s = _timed(barrier.run_round, rounds=self.rounds, warm=False)
            async_engine = self.build(num_agents, "async")
            started = time.perf_counter()
            for _ in range(self.rounds):
                async_engine.run_round()
            async_total = time.perf_counter() - started
            metrics[f"bare_s@{num_agents}"] = bare_s
            metrics[f"barrier_s@{num_agents}"] = barrier_s
            metrics[f"barrier_overhead@{num_agents}"] = (
                barrier_s / bare_s if bare_s > 0 else float("inf")
            )
            metrics[f"barrier_events_per_s@{num_agents}"] = (
                barrier.events_processed / (barrier_s * self.rounds)
                if barrier_s > 0
                else float("inf")
            )
            metrics[f"async_s@{num_agents}"] = async_total / self.rounds
            metrics[f"async_events_per_s@{num_agents}"] = (
                async_engine.events_processed / async_total
                if async_total > 0
                else float("inf")
            )
            metrics[f"sim_real_ratio@{num_agents}"] = (
                async_engine.simulated_time / async_total
                if async_total > 0
                else float("inf")
            )
            metrics[f"utilization@{num_agents}"] = async_engine.mean_utilization()
        largest = max(self.agent_counts)
        metrics["async_events_per_s"] = metrics[f"async_events_per_s@{largest}"]
        metrics["sim_real_ratio"] = metrics[f"sim_real_ratio@{largest}"]
        return metrics

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        largest = max(self.agent_counts)
        return largest >= self.FULL_SCALE_AGENTS, metrics.get(f"async_s@{largest}")


# ---------------------------------------------------------------------------
# engine/round-streamed
# ---------------------------------------------------------------------------
def _csr_ring_topology(num_agents: int):
    """A Metropolis-weighted ring built directly as CSR, no networkx.

    ``networkx`` graph construction is O(N) Python objects — at a million
    agents that alone dwarfs the round being measured.  Every entry of the
    ring's Metropolis–Hastings matrix is 1/3 (uniform degree 2), so the CSR
    arrays can be written down directly; the graph object only has to answer
    ``number_of_nodes()`` for :class:`~repro.topology.graphs.Topology`
    (connectivity validation is skipped via ``require_connected=False`` —
    a ring is connected by construction).
    """
    import scipy.sparse as sp

    from repro.topology.graphs import Topology

    if num_agents < 3:
        raise ValueError("a ring needs at least 3 agents")

    class _RingNodes:
        def __init__(self, n: int) -> None:
            self._n = n

        def number_of_nodes(self) -> int:
            return self._n

    n = num_agents
    agents = np.arange(n, dtype=np.int64)
    indices = np.empty(3 * n, dtype=np.int64)
    indices[0::3] = (agents - 1) % n
    indices[1::3] = agents
    indices[2::3] = (agents + 1) % n
    indptr = 3 * np.arange(n + 1, dtype=np.int64)
    data = np.full(3 * n, 1.0 / 3.0)
    matrix = sp.csr_array((data, indices, indptr), shape=(n, n))
    return Topology(
        _RingNodes(n), matrix, name=f"ring-{n}", require_connected=False
    )


@benchmark
class StreamedRoundSuite(Benchmark):
    """A full streamed DP-DPSGD round across fleet sizes up to a million agents.

    Where ``gossip/scaling-sweep`` times the mixing kernel in isolation,
    this suite times one *complete* communication round — blocked batch
    drawing, stacked gradient passes, per-agent clip + Gaussian noise, codec
    and gossip — through the streamed pipeline (``block_rows`` +
    ``storage="memmap"``), on a CSR ring with one shared data shard and a
    small linear model so the per-agent bookkeeping (samplers, mechanisms,
    RNG streams) dominates exactly as it does at fleet scale.

    Metrics per ``N`` in ``REPRO_BENCH_ROUND_AGENTS``:

    * ``round_s@N`` — seconds for one streamed serial round;
    * ``workersK_s@N`` — the same round with ``block_workers=K``
      (``REPRO_BENCH_ROUND_WORKERS``), numerically identical by
      construction;
    * ``oneshot_s@N`` — the in-RAM one-shot round, only at sizes where the
      bit-identity check runs (streamed vs one-shot state asserted equal).

    Too-large points are skipped (never failed) through the shared memory
    guard, with reasons recorded in the artifact notes; ``max_agents``
    reports the ceiling actually reached.
    """

    name = "engine/round-streamed"
    description = "full streamed round (gradients+noise+gossip) across N, memory-guarded"
    default_repeats = 1
    default_warmup = False
    #: Streamed-vs-one-shot bit-identity is asserted in-sweep up to this N
    #: (cheap); beyond it the property-test grid owns the guarantee.
    BIT_CHECK_MAX_AGENTS = 4096
    NUM_FEATURES = 4
    NUM_CLASSES = 2

    def __init__(self) -> None:
        self.agent_counts = _env_ints(
            "REPRO_BENCH_ROUND_AGENTS", "4096,65536,262144,1048576"
        )
        self.block_workers = _env_int("REPRO_BENCH_ROUND_WORKERS", 4, minimum=1)
        self.batch_size = _env_int("REPRO_BENCH_ROUND_BATCH", 16)
        self._sizes: List[int] = []
        self._notes: Dict[str, str] = {}
        self._dataset = None

    def params(self) -> Dict[str, object]:
        return {
            "agents": self.agent_counts,
            "block_workers": self.block_workers,
            "batch_size": self.batch_size,
        }

    def notes(self) -> Dict[str, str]:
        return dict(self._notes)

    def point_memory_bytes(self, num_agents: int) -> int:
        """Steady-state estimate for one sweep point.

        Dominated by the per-agent Python objects (~1 kB each for
        ``BatchSampler``, ``GaussianMechanism`` and the agent RNG, plus the
        network mailbox and the 3-entry CSR row); the memmap-backed fleet
        buffers (state, momentum, gradient and gossip scratch) stay resident
        as dirty page cache until writeback, so they count too.
        """
        dimension = (
            self.NUM_FEATURES * self.NUM_CLASSES + self.NUM_CLASSES
        )
        return num_agents * (3400 + 6 * dimension * 8) + (64 << 20)

    def setup(self) -> None:
        from repro.bench.guard import check_memory
        from repro.data.synthetic import make_classification_dataset

        self._sizes = []
        self._notes = {}
        for num_agents in self.agent_counts:
            decision = check_memory(self.point_memory_bytes(num_agents))
            if not decision.fits:
                self._notes[f"skip@{num_agents}"] = decision.reason
                continue
            self._sizes.append(num_agents)
        # One tiny shard shared by every agent: the suite measures the round
        # pipeline, not data loading, and a per-agent shard list at N = 10^6
        # would cost more memory than the fleet state itself.
        self._dataset = make_classification_dataset(
            num_samples=64,
            num_features=self.NUM_FEATURES,
            num_classes=self.NUM_CLASSES,
            cluster_std=1.0,
            seed=0,
        )

    def teardown(self) -> None:
        self._dataset = None

    def _build(self, num_agents: int, **overrides):
        from repro.baselines import DPDPSGD
        from repro.core.config import AlgorithmConfig
        from repro.nn.zoo import make_linear_classifier

        config = AlgorithmConfig(
            learning_rate=0.05,
            sigma=0.5,
            clip_threshold=1.0,
            batch_size=self.batch_size,
            seed=0,
            backend="vectorized",
            **overrides,
        )
        model = make_linear_classifier(self.NUM_FEATURES, self.NUM_CLASSES, seed=0)
        return DPDPSGD(
            model,
            _csr_ring_topology(num_agents),
            [self._dataset] * num_agents,
            config,
        )

    def _round_seconds(self, num_agents: int, **overrides) -> Tuple[float, np.ndarray]:
        algorithm = self._build(num_agents, **overrides)
        try:
            started = time.perf_counter()
            algorithm.run_round()
            elapsed = time.perf_counter() - started
            state = (
                np.array(algorithm.state)
                if num_agents <= self.BIT_CHECK_MAX_AGENTS
                else np.empty(0)
            )
        finally:
            close = getattr(algorithm, "close", None)
            if close is not None:
                close()
        return elapsed, state

    def run(self) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        for num_agents in self._sizes:
            # ~4 blocks at small N (so the sweep exercises real block
            # boundaries), capped at 64k rows per block at fleet scale.
            streamed = dict(
                block_rows=min(65536, max(1, num_agents // 4)),
                storage="memmap",
            )
            seconds, state = self._round_seconds(num_agents, **streamed)
            metrics[f"round_s@{num_agents}"] = seconds
            if self.block_workers > 1:
                workers_s, workers_state = self._round_seconds(
                    num_agents, block_workers=self.block_workers, **streamed
                )
                metrics[f"workers{self.block_workers}_s@{num_agents}"] = workers_s
                if state.size:
                    np.testing.assert_array_equal(state, workers_state)
            if num_agents <= self.BIT_CHECK_MAX_AGENTS:
                oneshot_s, oneshot_state = self._round_seconds(num_agents)
                metrics[f"oneshot_s@{num_agents}"] = oneshot_s
                # The streamed round is bit-identical to the historic
                # one-shot path — asserted in-sweep, every run.
                np.testing.assert_array_equal(state, oneshot_state)
        metrics["max_agents"] = float(max(self._sizes, default=0))
        peak = peak_rss_bytes()
        if peak is not None:
            metrics["peak_rss_bytes"] = float(peak)
        return metrics


# ---------------------------------------------------------------------------
# gossip/sparse
# ---------------------------------------------------------------------------
@benchmark
class SparseGossipSuite(Benchmark):
    """Dense vs CSR mixing kernels (bit-identity asserted every run)."""

    name = "gossip/sparse"
    description = "dense vs CSR gossip kernels, seconds per W @ X apply"
    floor = FloorSpec(
        metric="speedup", minimum=10.0, min_cpus=2, min_baseline_seconds=0.05
    )
    default_repeats = 1
    default_warmup = False
    FULL_SCALE_AGENTS = 4096

    def __init__(self) -> None:
        self.agent_counts = _env_ints("REPRO_BENCH_SPARSE_AGENTS", "1024,4096")
        self.rounds = _env_int("REPRO_BENCH_SPARSE_ROUNDS", 2)
        self.dimension = _env_int("REPRO_BENCH_SPARSE_DIM", 64)

    def params(self) -> Dict[str, object]:
        return {
            "agents": self.agent_counts,
            "rounds": self.rounds,
            "dimension": self.dimension,
        }

    @staticmethod
    def topology_labels(num_agents: int) -> List[str]:
        """Metric-key labels for one agent count — string math, no graphs built."""
        side = max(3, int(round(math.sqrt(num_agents))))
        return [f"ring/{num_agents}", f"torus/{side * side}"]

    @staticmethod
    def build_topologies(num_agents: int):
        from repro.topology.graphs import ring_graph, torus_graph

        ring_label, torus_label = SparseGossipSuite.topology_labels(num_agents)
        side = max(3, int(round(math.sqrt(num_agents))))
        return [
            (ring_label, ring_graph(num_agents)),
            (torus_label, torus_graph(side)),
        ]

    def run(self) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        for num_agents in self.agent_counts:
            for label, topology in self.build_topologies(num_agents):
                dense_op = topology.mixing_operator("dense")
                csr_op = topology.mixing_operator("csr")
                dense_w = dense_op.toarray()
                rng = np.random.default_rng(0)
                state = rng.normal(size=(topology.num_agents, self.dimension))
                # The comparison is only meaningful while both kernels compute
                # the same gossip step, bit for bit.
                np.testing.assert_array_equal(
                    dense_op.apply(state), csr_op.apply(state)
                )
                dense_s = _timed(dense_op.apply, state, rounds=self.rounds)
                csr_s = _timed(csr_op.apply, state, rounds=self.rounds)
                blas_s = _timed(lambda x: dense_w @ x, state, rounds=self.rounds)
                metrics[f"nnz@{label}"] = float(csr_op.nnz)
                metrics[f"dense_s@{label}"] = dense_s
                metrics[f"blas_s@{label}"] = blas_s
                metrics[f"csr_s@{label}"] = csr_s
                metrics[f"speedup@{label}"] = dense_s / csr_s
        largest = max(self.agent_counts)
        metrics["speedup"] = metrics[f"speedup@ring/{largest}"]
        return metrics

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        largest = max(self.agent_counts)
        baseline = metrics.get(f"dense_s@ring/{largest}")
        total = None if baseline is None else baseline * self.rounds
        return largest >= self.FULL_SCALE_AGENTS, total


# ---------------------------------------------------------------------------
# gossip/compressed
# ---------------------------------------------------------------------------
@benchmark
class CompressedGossipSuite(Benchmark):
    """Dense vs compressed gossip: wire bytes and seconds per DP-DPSGD round.

    The headline metric is ``bytes_reduction`` — dense network bytes divided
    by top-k (``k = d // 10``) network bytes on a ring fleet — with int8
    quantization reported alongside.  The identity codec is also run and
    asserted bit-identical (states and byte counters) to the uncompressed
    path, so the compressed engine cannot silently diverge from the
    trajectory every other suite measures.
    """

    name = "gossip/compressed"
    description = "dense vs top-k vs int8 gossip, wire bytes per round"
    floor = FloorSpec(
        metric="bytes_reduction", minimum=4.0, min_cpus=1, min_baseline_seconds=0.0
    )
    default_repeats = 1
    default_warmup = False
    FULL_SCALE_AGENTS = 1024

    def __init__(self) -> None:
        self.agent_counts = _env_ints("REPRO_BENCH_COMPRESS_AGENTS", "1024")
        self.rounds = _env_int("REPRO_BENCH_COMPRESS_ROUNDS", 2)

    def params(self) -> Dict[str, object]:
        return {"agents": self.agent_counts, "rounds": self.rounds}

    @staticmethod
    def build(num_agents: int, compression: Optional[Dict[str, object]]):
        """One vectorized DP-DPSGD instance on a ring, optionally compressed."""
        from repro.baselines import DPDPSGD
        from repro.core.config import AlgorithmConfig
        from repro.data.partition import partition_iid
        from repro.data.synthetic import make_classification_dataset
        from repro.nn.zoo import make_linear_classifier
        from repro.topology.graphs import ring_graph

        data = make_classification_dataset(
            num_samples=max(2048, 8 * num_agents),
            num_features=16,
            num_classes=4,
            cluster_std=1.0,
            seed=0,
        )
        shards = partition_iid(data, num_agents, np.random.default_rng(0)).shards
        topology = ring_graph(num_agents)
        model = make_linear_classifier(16, 4, seed=0)
        config = AlgorithmConfig(
            learning_rate=0.05,
            sigma=0.5,
            clip_threshold=1.0,
            batch_size=8,
            seed=0,
            backend="vectorized",
            compression=compression,
        )
        return DPDPSGD(model, topology, shards, config)

    def _measure(self, num_agents: int, compression) -> Tuple[float, float]:
        """(seconds per round, network bytes per round) for one variant."""
        algorithm = self.build(num_agents, compression)
        seconds = _timed(algorithm.run_round, rounds=self.rounds, warm=False)
        total_rounds = self.rounds  # no warm-up call above
        return seconds, algorithm.network.bytes_sent / total_rounds

    def run(self) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        for num_agents in self.agent_counts:
            # Identity codec must be bit-identical to the uncompressed path:
            # same trajectory, same float and byte counters.
            plain = self.build(num_agents, None)
            identity = self.build(num_agents, {"codec": "identity"})
            for _ in range(self.rounds):
                plain.run_round()
                identity.run_round()
            np.testing.assert_array_equal(plain.state, identity.state)
            assert plain.network.floats_sent == identity.network.floats_sent
            assert plain.network.bytes_sent == identity.network.bytes_sent

            dense_s, dense_b = self._measure(num_agents, None)
            topk_s, topk_b = self._measure(num_agents, {"codec": "topk"})
            int8_s, int8_b = self._measure(num_agents, {"codec": "int8"})
            metrics[f"dense_s@{num_agents}"] = dense_s
            metrics[f"topk_s@{num_agents}"] = topk_s
            metrics[f"int8_s@{num_agents}"] = int8_s
            metrics[f"dense_bytes@{num_agents}"] = dense_b
            metrics[f"topk_bytes@{num_agents}"] = topk_b
            metrics[f"int8_bytes@{num_agents}"] = int8_b
            metrics[f"bytes_reduction@{num_agents}"] = dense_b / topk_b
            metrics[f"bytes_reduction_int8@{num_agents}"] = dense_b / int8_b
        largest = max(self.agent_counts)
        metrics["bytes_reduction"] = metrics[f"bytes_reduction@{largest}"]
        metrics["bytes_reduction_int8"] = metrics[f"bytes_reduction_int8@{largest}"]
        return metrics

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        largest = max(self.agent_counts)
        baseline = metrics.get(f"dense_s@{largest}")
        total = None if baseline is None else baseline * self.rounds
        return largest >= self.FULL_SCALE_AGENTS, total


# ---------------------------------------------------------------------------
# gossip/scaling-sweep
# ---------------------------------------------------------------------------
@benchmark
class GossipScalingSweepSuite(Benchmark):
    """Gossip kernels across fleet sizes, up to the machine's memory ceiling.

    For every ``N`` in ``REPRO_BENCH_SWEEP_AGENTS`` the suite times the
    kernels the million-agent scaling work added, on a ring fleet:

    * ``seconds@N`` — one-shot auto-backend ``W @ X`` (the historic path);
    * ``blocked_s@N`` — :meth:`MixingOperator.mix_rows_blocked` with the
      auto-sized row block (bit-identity vs one-shot asserted at N <= 4096);
    * ``f32_s@N`` / ``mixed_s@N`` — float32 state through the dtype-aware
      kernel and the mixed-precision (float64-accumulate) kernel;
    * ``two_level_s@N`` — the factored hierarchical operator
      (:class:`~repro.topology.hierarchical.TwoLevelMixingOperator`), which
      never materialises the blown-up matrix.

    Points that would not fit in RAM are **skipped, not failed**, through
    the shared memory guard; each skip's reason is recorded in the
    artifact's ``notes`` (``"skip@262144": "needs ..."``), and
    ``max_agents`` reports the ceiling the sweep actually reached.
    """

    name = "gossip/scaling-sweep"
    description = "gossip kernels across N (blocked/f32/mixed/two-level), memory-guarded"
    default_repeats = 3
    #: Bit-identity of the blocked kernel is asserted up to this N (cheap);
    #: beyond it the property tests own the guarantee.
    BIT_CHECK_MAX_AGENTS = 4096

    def __init__(self) -> None:
        self.agent_counts = _env_ints(
            "REPRO_BENCH_SWEEP_AGENTS", "256,1024,4096,16384,65536,262144"
        )
        self.dimension = _env_int("REPRO_BENCH_SPARSE_DIM", 64)
        self._cases: List[Dict[str, object]] = []
        self._notes: Dict[str, str] = {}

    def params(self) -> Dict[str, object]:
        return {"agents": self.agent_counts, "dimension": self.dimension}

    def notes(self) -> Dict[str, str]:
        return dict(self._notes)

    def point_memory_bytes(self, num_agents: int) -> int:
        """Steady-state estimate for one sweep point.

        float64 state + transient output (16 B/coord), float32 state +
        output (8 B/coord), the mixed kernel's block accumulator (bounded),
        the ring CSR (~3 nonzeros/row) plus its cached float32 cast.
        """
        return num_agents * self.dimension * 24 + num_agents * 64

    def setup(self) -> None:
        # Graph/operator construction is not what this suite measures —
        # build once, outside the timed lifecycle, so repeats denoise the
        # apply timings instead of re-timing construction.  Each point is
        # memory-guarded here: too-large Ns are dropped with their reason
        # noted, never attempted.
        import networkx as nx

        from repro.bench.guard import check_memory
        from repro.sharding import resolve_block_rows
        from repro.topology.graphs import ring_graph
        from repro.topology.hierarchical import (
            TwoLevelMixingOperator,
            default_cluster_size,
        )
        from repro.topology.mixing import metropolis_hastings_weights

        self._cases = []
        self._notes = {}
        for num_agents in self.agent_counts:
            decision = check_memory(self.point_memory_bytes(num_agents))
            if not decision.fits:
                self._notes[f"skip@{num_agents}"] = decision.reason
                continue
            operator = ring_graph(num_agents).mixing_operator()  # auto format
            state = np.random.default_rng(0).normal(
                size=(num_agents, self.dimension)
            )
            block_rows = resolve_block_rows(num_agents, self.dimension)
            two_level = None
            if num_agents >= 4:
                cluster_size = default_cluster_size(num_agents)
                num_clusters = num_agents // cluster_size
                if num_clusters >= 3:
                    cluster_w = metropolis_hastings_weights(
                        nx.cycle_graph(num_clusters), sparse=True
                    )
                    two_level = TwoLevelMixingOperator(cluster_w, cluster_size)
            if num_agents <= self.BIT_CHECK_MAX_AGENTS:
                np.testing.assert_array_equal(
                    operator.apply(state),
                    operator.mix_rows_blocked(state, block_rows),
                )
            self._cases.append(
                {
                    "num_agents": num_agents,
                    "operator": operator,
                    "state": state,
                    "state_f32": state.astype(np.float32),
                    "block_rows": block_rows,
                    "two_level": two_level,
                }
            )

    def teardown(self) -> None:
        self._cases = []

    def run(self) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        for case in self._cases:
            num_agents = case["num_agents"]
            operator = case["operator"]
            state = case["state"]
            state_f32 = case["state_f32"]
            block_rows = case["block_rows"]
            metrics[f"seconds@{num_agents}"] = _timed(operator.apply, state)
            metrics[f"blocked_s@{num_agents}"] = _timed(
                operator.mix_rows_blocked, state, block_rows
            )
            metrics[f"f32_s@{num_agents}"] = _timed(operator.apply, state_f32)
            metrics[f"mixed_s@{num_agents}"] = _timed(
                operator.apply_mixed, state_f32, block_rows
            )
            if case["two_level"] is not None:
                metrics[f"two_level_s@{num_agents}"] = _timed(
                    case["two_level"].apply, state
                )
            metrics[f"nnz@{num_agents}"] = float(operator.nnz)
            metrics[f"block_rows@{num_agents}"] = float(block_rows)
        metrics["max_agents"] = float(
            max((case["num_agents"] for case in self._cases), default=0)
        )
        return metrics


# ---------------------------------------------------------------------------
# topology/dynamic-cache
# ---------------------------------------------------------------------------
@benchmark
class DynamicTopologyCacheSuite(Benchmark):
    """Snapshot LRU vs naive rebuild: seconds per ``operator_at(t)``."""

    name = "topology/dynamic-cache"
    description = "schedule snapshot LRU vs naive rebuild, seconds per round"
    floor = FloorSpec(
        metric="speedup", minimum=5.0, min_cpus=2, min_baseline_seconds=0.05
    )
    default_repeats = 1
    default_warmup = False
    FULL_SCALE_AGENTS = 1024

    def __init__(self) -> None:
        self.agent_counts = _env_ints("REPRO_BENCH_DYNTOPO_AGENTS", "256,1024")
        self.rounds = _env_int("REPRO_BENCH_DYNTOPO_ROUNDS", 60, minimum=2)
        self.period = _env_int("REPRO_BENCH_DYNTOPO_PERIOD", 20)

    def params(self) -> Dict[str, object]:
        return {
            "agents": self.agent_counts,
            "rounds": self.rounds,
            "period": self.period,
        }

    @staticmethod
    def naive(base, rewire_every: int, seed: int):
        """A schedule with the snapshot cache defeated: rebuild every round."""
        from repro.topology.schedule import DynamicTopologySchedule

        class NaiveRebuildSchedule(DynamicTopologySchedule):
            def topology_at(self, round_index: int):
                return self._build(self._key_at(round_index))

        return NaiveRebuildSchedule(base, rewire_every=rewire_every, seed=seed)

    @staticmethod
    def _seconds_per_round(schedule, rounds: int) -> float:
        started = time.perf_counter()
        for t in range(rounds):
            schedule.operator_at(t)
        return (time.perf_counter() - started) / rounds

    def run(self) -> Dict[str, float]:
        from repro.topology.graphs import ring_graph
        from repro.topology.schedule import (
            periodic_rewiring_schedule,
            straggler_schedule,
        )

        metrics: Dict[str, float] = {}
        for num_agents in self.agent_counts:
            base = ring_graph(num_agents)
            cached = periodic_rewiring_schedule(
                base, rewire_every=self.period, seed=0
            )
            naive = self.naive(base, rewire_every=self.period, seed=0)
            worst = straggler_schedule(base, straggler_fraction=0.1, seed=0)
            # Prime allocators and the scipy/networkx code paths on a
            # throwaway schedule so neither measured variant pays cold-start
            # costs for the other.
            self._seconds_per_round(
                self.naive(base, rewire_every=1, seed=99), min(self.rounds, 5)
            )
            cached_s = self._seconds_per_round(cached, self.rounds)
            naive_s = self._seconds_per_round(naive, self.rounds)
            worst_s = self._seconds_per_round(worst, self.rounds)
            # Epochs are visited contiguously, so the cache builds each
            # distinct graph exactly once: misses = ceil(rounds / period).
            info = cached.cache_info()
            assert info["misses"] == -(-self.rounds // self.period)
            assert info["hits"] + info["misses"] == self.rounds
            metrics[f"cached_s@{num_agents}"] = cached_s
            metrics[f"naive_s@{num_agents}"] = naive_s
            metrics[f"allmiss_s@{num_agents}"] = worst_s
            metrics[f"speedup@{num_agents}"] = naive_s / cached_s
        largest = max(self.agent_counts)
        metrics["speedup"] = metrics[f"speedup@{largest}"]
        return metrics

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        largest = max(self.agent_counts)
        baseline = metrics.get(f"naive_s@{largest}")
        total = None if baseline is None else baseline * self.rounds
        return largest >= self.FULL_SCALE_AGENTS, total


# ---------------------------------------------------------------------------
# orchestrator/pool
# ---------------------------------------------------------------------------
@benchmark
class OrchestratorPoolSuite(Benchmark):
    """Serial vs pooled grid execution (identical histories asserted)."""

    name = "orchestrator/pool"
    description = "process-pool grid vs serial execution, plus the warm store"
    floor = FloorSpec(
        metric="speedup", minimum=2.0, min_cpus=4, min_baseline_seconds=1.0
    )
    default_repeats = 1
    default_warmup = False

    def __init__(self) -> None:
        self.jobs = _env_int("REPRO_BENCH_ORCH_JOBS", 8, minimum=2)
        self.rounds = _env_int("REPRO_BENCH_ORCH_ROUNDS", 150)
        self.agents = _env_int("REPRO_BENCH_ORCH_AGENTS", 12, minimum=2)
        self.workers = _env_int("REPRO_BENCH_ORCH_WORKERS", 4, minimum=2)
        self._root: Optional[str] = None

    def params(self) -> Dict[str, object]:
        # Deliberately excludes the host CPU count: params are the
        # *comparability key* for `repro-bench compare` and the host is
        # already recorded in the artifact's `host` block — keying on CPUs
        # would exempt this suite from the gate across machines.
        return {
            "jobs": self.jobs,
            "rounds": self.rounds,
            "agents": self.agents,
            "workers": self.workers,
        }

    def build_grid(self):
        """2 algorithms x (jobs/2) seeds: the paper's comparison shape."""
        from repro.experiments.specs import ExperimentGrid, fast_spec

        algorithms = ["DMSGD", "DP-DPSGD"]
        seeds = list(range(7, 7 + self.jobs // len(algorithms)))
        base = fast_spec(
            num_agents=self.agents,
            num_rounds=self.rounds,
            algorithms=algorithms,
        )
        # Strided evaluation keeps the benchmark training-bound rather than
        # evaluation-bound, like a real sweep.
        base = base.with_updates(eval_every=max(1, self.rounds // 3))
        return ExperimentGrid(base=base, algorithms=algorithms, seeds=seeds)

    def setup(self) -> None:
        self._root = tempfile.mkdtemp(prefix="repro-bench-orch-")

    def teardown(self) -> None:
        if self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None

    def run(self) -> Dict[str, float]:
        from pathlib import Path

        from repro.experiments.orchestrator import run_grid
        from repro.simulation.metrics import histories_equal

        assert self._root is not None, "setup() must run first"
        root = Path(self._root)
        # Fresh stores every call so repeats never hit a warm directory.
        for stale in root.iterdir():
            shutil.rmtree(stale, ignore_errors=True)

        started = time.perf_counter()
        serial = run_grid(self.build_grid(), root / "serial", workers=1)
        serial_s = time.perf_counter() - started

        started = time.perf_counter()
        pooled = run_grid(self.build_grid(), root / "pooled", workers=self.workers)
        pooled_s = time.perf_counter() - started

        started = time.perf_counter()
        cached = run_grid(self.build_grid(), root / "serial", workers=1)
        cached_s = time.perf_counter() - started

        # Correctness before speed: worker placement must not change any
        # cell, and the warm pass must serve the identical stored histories.
        assert [r.status for r in serial] == ["done"] * self.jobs
        assert [r.status for r in pooled] == ["done"] * self.jobs
        assert [r.status for r in cached] == ["cached"] * self.jobs
        for a, b in zip(serial, pooled):
            assert histories_equal(a.history, b.history)
        for a, b in zip(serial, cached):
            assert histories_equal(a.history, b.history)
        assert cached_s < serial_s, "cached pass should skip all training"

        return {
            "serial_s": serial_s,
            "pooled_s": pooled_s,
            "cached_s": cached_s,
            "speedup": serial_s / pooled_s if pooled_s > 0 else float("inf"),
        }

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        return True, metrics.get("serial_s")


# ---------------------------------------------------------------------------
# checkpoint/roundtrip
# ---------------------------------------------------------------------------
@benchmark
class CheckpointRoundtripSuite(Benchmark):
    """``state_dict`` → ``save_checkpoint`` → ``load_checkpoint`` → restore."""

    name = "checkpoint/roundtrip"
    description = "checkpoint save/load round-trip of a trained fleet"
    default_repeats = 3

    def __init__(self) -> None:
        self.agents = _env_int("REPRO_BENCH_CKPT_AGENTS", 64, minimum=2)
        self.trained_rounds = _env_int("REPRO_BENCH_CKPT_ROUNDS", 2)
        self._algorithm = None
        self._dir: Optional[str] = None

    def params(self) -> Dict[str, object]:
        return {"agents": self.agents, "trained_rounds": self.trained_rounds}

    def setup(self) -> None:
        self._algorithm = EngineRoundSuite.build(self.agents, "vectorized")
        for _ in range(self.trained_rounds):
            self._algorithm.run_round()
        self._dir = tempfile.mkdtemp(prefix="repro-bench-ckpt-")

    def teardown(self) -> None:
        self._algorithm = None
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def run(self) -> Dict[str, float]:
        import os as _os

        from repro.simulation.checkpoint import load_checkpoint, save_checkpoint

        assert self._algorithm is not None and self._dir is not None
        path = _os.path.join(self._dir, "round_000002.ckpt")

        started = time.perf_counter()
        state = self._algorithm.state_dict()
        save_checkpoint(path, {"algorithm_state": state})
        save_s = time.perf_counter() - started

        started = time.perf_counter()
        payload = load_checkpoint(path)
        self._algorithm.load_state_dict(payload["algorithm_state"])
        load_s = time.perf_counter() - started

        return {
            "save_s": save_s,
            "load_s": load_s,
            "roundtrip_s": save_s + load_s,
            "checkpoint_bytes": float(_os.path.getsize(path)),
        }


# ---------------------------------------------------------------------------
# game/shapley-mc
# ---------------------------------------------------------------------------
@benchmark
class MonteCarloShapleySuite(Benchmark):
    """Permutation-sampling Shapley: the small-game estimator and the fleet walk.

    Two regimes share the suite: the neighbourhood-sized games PDSL plays
    every round (``REPRO_BENCH_SHAPLEY_PLAYERS`` players through
    :func:`~repro.game.shapley.monte_carlo_shapley`), and fleet-scale player
    counts (``REPRO_BENCH_SHAPLEY_FLEET``) through the prefix-walk
    :func:`~repro.game.shapley.monte_carlo_shapley_fleet`, which drops the
    coalition canonicalisation/memoisation bookkeeping that dominates once
    every prefix is unique.  The fleet estimator is cross-validated in-sweep:
    exact stream agreement with the generic estimator at a small N, and at
    the largest N the efficiency axiom (the estimates telescope to
    ``v(grand) - v(empty)`` exactly per permutation) plus per-player
    exactness on an additive game.
    """

    name = "game/shapley-mc"
    description = "Monte-Carlo Shapley: small games and the fleet prefix walk"
    default_repeats = 3
    #: Exact-agreement cross-check between the two estimators runs at this
    #: player count (the generic estimator's sequential walk is O(N^3) with
    #: set hashing, so fleet sizes are out of its reach by construction).
    CROSS_CHECK_PLAYERS = 128

    def __init__(self) -> None:
        self.players = _env_int("REPRO_BENCH_SHAPLEY_PLAYERS", 12, minimum=2)
        self.permutations = _env_int("REPRO_BENCH_SHAPLEY_PERMS", 200)
        self.fleet_players = _env_ints("REPRO_BENCH_SHAPLEY_FLEET", "4096,16384")
        self.fleet_permutations = _env_int("REPRO_BENCH_SHAPLEY_FLEET_PERMS", 2)
        self._weights: Optional[np.ndarray] = None
        self._notes: Dict[str, str] = {}

    def params(self) -> Dict[str, object]:
        return {
            "players": self.players,
            "permutations": self.permutations,
            "fleet_players": self.fleet_players,
            "fleet_permutations": self.fleet_permutations,
        }

    def notes(self) -> Dict[str, str]:
        return dict(self._notes)

    def setup(self) -> None:
        self._weights = np.random.default_rng(3).normal(size=self.players) ** 2
        self._notes = {}

    @staticmethod
    def _fleet_characteristic(weights: np.ndarray):
        def characteristic(members) -> float:
            members = np.asarray(members, dtype=np.int64)
            return float(weights[members].sum()) + 0.01 * len(members) ** 2

        return characteristic

    def run(self) -> Dict[str, float]:
        from repro.bench.guard import check_memory
        from repro.game.cooperative import CooperativeGame
        from repro.game.shapley import monte_carlo_shapley, monte_carlo_shapley_fleet

        weights = self._weights
        assert weights is not None

        def characteristic(coalition) -> float:
            members = np.fromiter(coalition, dtype=np.int64)
            linear = float(weights[members].sum())
            return linear + 0.01 * len(members) ** 2  # superadditive interaction

        # A fresh game per call: memoisation must not carry across repeats,
        # or the repeated timings would measure the cache, not the estimator.
        game = CooperativeGame(list(range(self.players)), characteristic)
        monte_carlo_shapley(game, self.permutations, np.random.default_rng(0))
        metrics: Dict[str, float] = {
            "unique_coalitions": float(game.num_evaluations),
            "permutations": float(self.permutations),
        }

        # Cross-check: both estimators consume one rng.permutation per round,
        # so on the same seed they must agree to float round-off.
        cross_n = self.CROSS_CHECK_PLAYERS
        cross_w = np.random.default_rng(3).normal(size=cross_n) ** 2
        fleet_char = self._fleet_characteristic(cross_w)
        cross_game = CooperativeGame(
            list(range(cross_n)),
            lambda coalition: fleet_char(np.fromiter(coalition, dtype=np.int64)),
        )
        generic = monte_carlo_shapley(cross_game, 2, np.random.default_rng(5))
        walked = monte_carlo_shapley_fleet(
            fleet_char, cross_n, 2, np.random.default_rng(5)
        )
        np.testing.assert_allclose(
            np.asarray([generic[i] for i in range(cross_n)]),
            walked,
            rtol=1e-12,
            atol=1e-12,
        )

        ran_sizes: List[int] = []
        for num_players in self.fleet_players:
            # O(N) memory but O(N^2) characteristic work per permutation —
            # the guard keeps absurd sizes out on small machines.
            decision = check_memory(num_players * 64 + (16 << 20))
            if not decision.fits:
                self._notes[f"skip@{num_players}"] = decision.reason
                continue
            fleet_w = np.random.default_rng(3).normal(size=num_players) ** 2
            fleet_char = self._fleet_characteristic(fleet_w)
            started = time.perf_counter()
            estimates = monte_carlo_shapley_fleet(
                fleet_char,
                num_players,
                self.fleet_permutations,
                np.random.default_rng(5),
            )
            metrics[f"fleet_s@{num_players}"] = time.perf_counter() - started
            ran_sizes.append(num_players)
        if ran_sizes:
            # Axioms at the largest N that ran.  Efficiency: prefix marginals
            # telescope, so the estimate total equals the grand-coalition
            # value exactly.  Additivity/dummy: on a purely additive game
            # every marginal is the player's own weight, so per-player
            # estimates are exact (zero-weight players get exactly zero).
            largest = max(ran_sizes)
            fleet_w = np.random.default_rng(3).normal(size=largest) ** 2
            fleet_char = self._fleet_characteristic(fleet_w)
            estimates = monte_carlo_shapley_fleet(
                fleet_char, largest, 1, np.random.default_rng(5)
            )
            grand = fleet_char(np.arange(largest))
            np.testing.assert_allclose(estimates.sum(), grand, rtol=1e-9, atol=1e-9)
            additive = monte_carlo_shapley_fleet(
                lambda members: float(
                    fleet_w[np.asarray(members, dtype=np.int64)].sum()
                ),
                largest,
                1,
                np.random.default_rng(7),
            )
            # Each marginal is the difference of two prefix sums of ~N
            # weights, so its float error scales with eps * sum(|w|), not
            # with the (possibly tiny) weight itself — the absolute
            # tolerance must carry that factor.
            np.testing.assert_allclose(
                additive, fleet_w, rtol=1e-9, atol=1e-12 * max(1.0, fleet_w.sum())
            )
        metrics["fleet_max_players"] = float(max(ran_sizes, default=0))
        return metrics


# ---------------------------------------------------------------------------
# privacy/noise-rows
# ---------------------------------------------------------------------------
@benchmark
class NoiseRowsSuite(Benchmark):
    """Batched row-wise clip + Gaussian noise at fleet width."""

    name = "privacy/noise-rows"
    description = "batched Gaussian noise rows (the per-round privatize path)"
    default_repeats = 3

    def __init__(self) -> None:
        self.agents = _env_int("REPRO_BENCH_NOISE_AGENTS", 4096, minimum=2)
        self.dimension = _env_int("REPRO_BENCH_NOISE_DIM", 64)
        self._matrix: Optional[np.ndarray] = None

    def params(self) -> Dict[str, object]:
        return {"agents": self.agents, "dimension": self.dimension}

    def setup(self) -> None:
        from repro.privacy.mechanisms import GaussianMechanism

        matrix = np.random.default_rng(0).normal(size=(self.agents, self.dimension))
        clipper = GaussianMechanism(
            sigma=0.0, rng=np.random.default_rng(0), clip_threshold=1.0
        )
        self._matrix = np.stack([clipper.clip(row) for row in matrix])

    def run(self) -> Dict[str, float]:
        from repro.privacy.mechanisms import GaussianMechanism

        clipped = self._matrix
        assert clipped is not None
        mechanism = GaussianMechanism(
            sigma=0.5, rng=np.random.default_rng(0), clip_threshold=1.0
        )
        started = time.perf_counter()
        mechanism.add_noise_rows(clipped)
        batched_s = time.perf_counter() - started
        return {
            "batched_s": batched_s,
            "rows_per_second": (
                self.agents / batched_s if batched_s > 0 else float("inf")
            ),
        }


# ---------------------------------------------------------------------------
# attacks/inversion-fleet
# ---------------------------------------------------------------------------
@benchmark
class FleetInversionSuite(Benchmark):
    """Fleet gradient inversion vs the sequential per-victim loop.

    One :class:`~repro.attacks.FleetInversionAttack` run reconstructs all
    ``N`` victims through stacked ``(N, B, ...)`` evaluations — one model
    pass per SPSA probe instead of ``N``.  The sequential baseline is the
    exact per-victim loop a pre-fleet analysis campaign would run:
    ``GradientInversionAttack.run`` per victim, seeded from the same
    :func:`~repro.attacks.inversion_stream` RNG streams.  Both timed runs
    are asserted bit-identical (reconstructions, labels, matching losses),
    so the speedup can never come from computing something different.
    """

    name = "attacks/inversion-fleet"
    description = "fleet vs per-victim gradient inversion, seconds per attack"
    floor = FloorSpec(
        metric="speedup", minimum=10.0, min_cpus=1, min_baseline_seconds=0.2
    )
    default_repeats = 1
    default_warmup = False
    FULL_SCALE_AGENTS = 256

    def __init__(self) -> None:
        self.agents = _env_int("REPRO_BENCH_ATTACK_AGENTS", 256, minimum=2)
        self.iterations = _env_int("REPRO_BENCH_ATTACK_ITERS", 25)
        self.batch = _env_int("REPRO_BENCH_ATTACK_BATCH", 4)
        self._observed: Optional[np.ndarray] = None
        self._params: Optional[np.ndarray] = None
        self._inputs: Optional[np.ndarray] = None

    def params(self) -> Dict[str, object]:
        return {
            "agents": self.agents,
            "iterations": self.iterations,
            "batch": self.batch,
        }

    @staticmethod
    def build_model():
        from repro.nn.zoo import make_linear_classifier

        return make_linear_classifier(16, 4, seed=0)

    def setup(self) -> None:
        from repro.nn.batched import StackedSequential

        model = self.build_model()
        rng = np.random.default_rng(0)
        params = rng.normal(size=model.num_params)
        inputs = rng.normal(size=(self.agents, self.batch, 16))
        labels = rng.integers(0, 4, size=(self.agents, self.batch))
        _, observed = StackedSequential(model).loss_and_gradients(
            np.broadcast_to(params, (self.agents, model.num_params)),
            inputs,
            labels,
        )
        self._observed = observed
        self._params = params
        self._inputs = inputs

    def teardown(self) -> None:
        self._observed = None
        self._params = None
        self._inputs = None

    def run(self) -> Dict[str, float]:
        from repro.attacks import (
            FleetInversionAttack,
            GradientInversionAttack,
            inversion_stream,
        )

        observed, params = self._observed, self._params
        assert observed is not None and params is not None
        model = self.build_model()
        seed = 1

        fleet = FleetInversionAttack(
            model, num_classes=4, iterations=self.iterations, seed=seed
        )
        started = time.perf_counter()
        batched = fleet.run(observed, params, self.batch, (16,))
        fleet_s = time.perf_counter() - started

        started = time.perf_counter()
        sequential = [
            GradientInversionAttack(
                model,
                num_classes=4,
                iterations=self.iterations,
                rng=inversion_stream(seed, victim),
            ).run(observed[victim], params, self.batch, (16,))
            for victim in range(self.agents)
        ]
        sequential_s = time.perf_counter() - started

        # The comparison is only meaningful while the fleet run *is* the
        # per-victim loop, bit for bit.
        for victim, single in enumerate(sequential):
            np.testing.assert_array_equal(
                batched.reconstructed_inputs[victim], single.reconstructed_inputs
            )
            np.testing.assert_array_equal(
                batched.inferred_labels[victim], single.inferred_labels
            )
            assert float(batched.matching_losses[victim]) == single.matching_loss

        inputs = self._inputs
        assert inputs is not None
        errors = batched.errors_against(inputs)
        return {
            "sequential_s": sequential_s,
            "fleet_s": fleet_s,
            "speedup": sequential_s / fleet_s if fleet_s > 0 else float("inf"),
            "mean_matching_loss": float(batched.matching_losses.mean()),
            "mean_reconstruction_error": float(errors.mean()),
        }

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        return self.agents >= self.FULL_SCALE_AGENTS, metrics.get("sequential_s")


# ---------------------------------------------------------------------------
# attacks/membership
# ---------------------------------------------------------------------------
@benchmark
class MembershipFleetSuite(Benchmark):
    """Fleet membership-loss scoring vs per-row ``per_sample_losses`` calls.

    The fleet path scores every (agent, checkpoint) parameter row's
    per-example losses on both populations in two stacked passes
    (:func:`~repro.attacks.membership_losses_fleet`); the baseline loops
    :func:`~repro.attacks.per_sample_losses` over rows with a shared stacked
    engine.  Both timed paths are asserted bit-identical.  This comparison
    is compute-bound rather than overhead-bound, so its speedup is modest
    next to ``attacks/inversion-fleet`` — the floor reflects that.
    """

    name = "attacks/membership"
    description = "fleet vs per-row membership loss scoring, seconds per sweep"
    floor = FloorSpec(
        metric="speedup", minimum=2.0, min_cpus=1, min_baseline_seconds=0.02
    )
    default_repeats = 3
    FULL_SCALE_ROWS = 1024

    def __init__(self) -> None:
        self.rows = _env_int("REPRO_BENCH_MEMBER_ROWS", 1024, minimum=2)
        self.samples = _env_int("REPRO_BENCH_MEMBER_SAMPLES", 32, minimum=4)
        self._rows: Optional[np.ndarray] = None
        self._members = None
        self._non_members = None

    def params(self) -> Dict[str, object]:
        return {"rows": self.rows, "samples": self.samples}

    def setup(self) -> None:
        from repro.data.dataset import Dataset

        model = FleetInversionSuite.build_model()
        rng = np.random.default_rng(0)
        self._rows = rng.normal(size=(self.rows, model.num_params))
        self._members = Dataset(
            rng.normal(size=(self.samples, 16)),
            rng.integers(0, 4, size=self.samples),
        )
        self._non_members = Dataset(
            rng.normal(size=(self.samples, 16)) + 0.5,
            rng.integers(0, 4, size=self.samples),
        )

    def teardown(self) -> None:
        self._rows = None
        self._members = None
        self._non_members = None

    def run(self) -> Dict[str, float]:
        from repro.attacks import (
            membership_inference_fleet,
            membership_losses_fleet,
            per_sample_losses,
        )
        from repro.nn.batched import StackedSequential

        rows, members, non_members = self._rows, self._members, self._non_members
        assert rows is not None and members is not None and non_members is not None
        model = FleetInversionSuite.build_model()

        started = time.perf_counter()
        fleet_member = membership_losses_fleet(model, rows, members)
        fleet_non = membership_losses_fleet(model, rows, non_members)
        fleet_s = time.perf_counter() - started

        engine = StackedSequential(model)
        started = time.perf_counter()
        seq_member = np.stack(
            [
                per_sample_losses(model, row, members, engine=engine)
                for row in rows
            ]
        )
        seq_non = np.stack(
            [
                per_sample_losses(model, row, non_members, engine=engine)
                for row in rows
            ]
        )
        sequential_s = time.perf_counter() - started

        np.testing.assert_array_equal(fleet_member, seq_member)
        np.testing.assert_array_equal(fleet_non, seq_non)

        result = membership_inference_fleet(model, rows, members, non_members)
        return {
            "sequential_s": sequential_s,
            "fleet_s": fleet_s,
            "speedup": sequential_s / fleet_s if fleet_s > 0 else float("inf"),
            "mean_advantage": float(result.mean_advantage),
        }

    def floor_context(self, metrics: Dict[str, float]) -> Tuple[bool, Optional[float]]:
        return self.rows >= self.FULL_SCALE_ROWS, metrics.get("sequential_s")
