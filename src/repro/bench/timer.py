"""Shared timing and memory capture for the benchmark harness.

Every suite measures through the same :class:`Timer` so artifacts are
comparable across suites and across runs: wall-clock via
``time.perf_counter`` (monotonic, highest available resolution) and memory
via the process peak RSS (``resource.getrusage`` — stdlib, no external
profiler).  The harness runs each suite ``repeats`` times and reports the
*minimum* wall-clock alongside mean±std: the minimum is the least noisy
estimator of the true cost on a time-shared machine (every perturbation —
scheduler preemption, cache eviction, GC — only ever adds time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover - Windows fallback
    resource = None  # type: ignore[assignment]

__all__ = ["Timer", "Measurement", "peak_rss_bytes"]


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes (``None`` if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes.  The value is a high-water mark, so a suite's reading includes
    everything the process allocated before it — artifacts therefore store
    it per run, where it answers "how much memory does the whole suite
    need", not per-suite deltas.
    """
    if resource is None:
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(usage)
    return int(usage) * 1024


@dataclass
class Measurement:
    """Repeated wall-clock samples of one operation, plus the RSS high-water mark."""

    wall_seconds: List[float] = field(default_factory=list)
    rss_peak_bytes: Optional[int] = None

    @property
    def repeats(self) -> int:
        return len(self.wall_seconds)

    @property
    def best_seconds(self) -> float:
        """The minimum sample — the canonical number artifacts compare on."""
        if not self.wall_seconds:
            raise ValueError("no samples recorded")
        return min(self.wall_seconds)

    @property
    def mean_seconds(self) -> float:
        if not self.wall_seconds:
            raise ValueError("no samples recorded")
        return sum(self.wall_seconds) / len(self.wall_seconds)

    @property
    def std_seconds(self) -> float:
        """Population standard deviation (the samples *are* the set summarised)."""
        if not self.wall_seconds:
            raise ValueError("no samples recorded")
        mean = self.mean_seconds
        return (
            sum((s - mean) ** 2 for s in self.wall_seconds) / len(self.wall_seconds)
        ) ** 0.5


class Timer:
    """Context-manager stopwatch feeding a :class:`Measurement`.

    >>> measurement = Measurement()
    >>> with Timer(measurement):
    ...     do_work()
    >>> measurement.best_seconds

    Each ``with`` block appends one wall-clock sample and refreshes the
    measurement's RSS high-water mark.  ``Timer()`` without a measurement
    works as a bare stopwatch (read ``timer.elapsed`` after the block).
    """

    def __init__(self, measurement: Optional[Measurement] = None) -> None:
        self.measurement = measurement
        self.elapsed: float = 0.0
        self._started: float = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._started
        if self.measurement is not None:
            self.measurement.wall_seconds.append(self.elapsed)
            self.measurement.rss_peak_bytes = peak_rss_bytes()
