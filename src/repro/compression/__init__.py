"""Compressed and low-precision gossip with error feedback.

This package models communication as a deployed decentralized DP system
would actually run it: gossip payloads pass through a lossy codec
(quantisation or sparsification), the quantisation error is carried forward
per agent by error feedback, and the :class:`~repro.simulation.network.Network`
accounts the *compressed* wire size of every message instead of the dense
float64 one.

Three pieces compose:

* :class:`CompressionConfig` (:mod:`repro.compression.config`) — the
  declarative knob surface (codec, ``k``, ``communication_interval``,
  ``peer_selection``, ``error_feedback``) threaded from
  :class:`~repro.experiments.specs.ExperimentSpec` through
  :class:`~repro.core.config.AlgorithmConfig` into the engines;
* the codecs (:mod:`repro.compression.codecs`) — identity, fp16, int8,
  top-k and random-k, all operating row-wise so the loop and vectorized
  engines share bit-identical kernels;
* :class:`CompressionState` (:mod:`repro.compression.state`) — per-agent
  error-feedback residuals and sparsifier streams, checkpointable through
  the algorithm's ``state_dict``.

The identity codec is guaranteed bit-identical to the historical
uncompressed path on both engines.
"""

from repro.compression.codecs import (
    Codec,
    CompressedPayload,
    FP16Codec,
    IdentityCodec,
    Int8Codec,
    RandomKCodec,
    TopKCodec,
    make_codec,
)
from repro.compression.config import (
    CODEC_NAMES,
    COMPRESSION_KEYS,
    PEER_SELECTION_MODES,
    CompressionConfig,
    validate_compression,
)
from repro.compression.state import CompressionState

__all__ = [
    "CODEC_NAMES",
    "PEER_SELECTION_MODES",
    "COMPRESSION_KEYS",
    "CompressionConfig",
    "validate_compression",
    "Codec",
    "IdentityCodec",
    "FP16Codec",
    "Int8Codec",
    "TopKCodec",
    "RandomKCodec",
    "CompressedPayload",
    "make_codec",
    "CompressionState",
]
