"""Gossip payload codecs: quantisation and sparsification.

A :class:`Codec` models lossy compression of the vectors agents gossip.  The
simulation keeps everything in float64 end to end — what a codec returns is
the *decoded* value, i.e. exactly what the receiver would reconstruct after
the encode/transmit/decode round trip — while :meth:`Codec.wire_cost`
reports what the encoded message would have cost on a real wire.  This keeps
the numerics faithful (both engines mix the reconstructed values) and lets
:class:`~repro.simulation.network.Network` account compressed byte traffic
without ever materialising byte buffers.

Codecs operate row-wise on ``(M, dimension)`` matrices: every operation is
per-row/elementwise, so compressing one agent's vector through a
single-row matrix (as the loop engine does) is bit-identical to compressing
it as one row of the whole fleet (as the vectorized engine does).

Four lossy codecs are provided, mirroring the standard communication-
efficient-SGD toolbox (and Bagua's low-precision decentralized algorithm):

* :class:`FP16Codec` — round to IEEE half precision (2 bytes/coordinate);
* :class:`Int8Codec` — symmetric per-row int8 quantisation with one float64
  scale per message (1 byte/coordinate + 8 bytes);
* :class:`TopKCodec` — keep the ``k`` largest-magnitude coordinates
  (value + int32 index, 12 bytes per kept coordinate);
* :class:`RandomKCodec` — keep ``k`` uniformly random coordinates (unbiased
  up to scaling; same wire format as top-k).

:class:`IdentityCodec` is the no-op reference: same object back, dense
float64 wire cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Codec",
    "IdentityCodec",
    "FP16Codec",
    "Int8Codec",
    "TopKCodec",
    "RandomKCodec",
    "CompressedPayload",
    "make_codec",
]

#: Wire cost of one kept coordinate in the sparse codecs: a float64 value
#: plus an int32 index.
_SPARSE_BYTES_PER_COORD = 12


@dataclass(frozen=True)
class CompressedPayload:
    """A gossip message as it crosses the simulated wire.

    ``values`` holds the *decoded* payload (an array, or a tuple of arrays
    for multi-channel messages) that the receiver reconstructs;
    ``num_values`` and ``wire_bytes`` are what the encoded form would have
    cost — the numbers :class:`~repro.simulation.network.Network` records
    instead of the dense float64 size.
    """

    values: Any
    num_values: int
    wire_bytes: int
    codec: str


class Codec:
    """Base class: decode-after-round-trip semantics plus wire accounting."""

    #: Codec identifier (one of :data:`repro.compression.config.CODEC_NAMES`).
    name: str = ""
    #: True only for :class:`IdentityCodec` (engines skip compression state).
    is_identity: bool = False
    #: Whether :meth:`decode_rows` consumes per-agent randomness.
    uses_rng: bool = False

    def wire_cost(self, dimension: int) -> Tuple[int, int]:
        """``(values_per_message, bytes_per_message)`` for one ``dimension``-vector."""
        raise NotImplementedError

    def decode_rows(
        self,
        work: np.ndarray,
        rngs: Optional[Sequence[np.random.Generator]] = None,
    ) -> np.ndarray:
        """Reconstructed value of each row after the encode/decode round trip.

        ``work`` is ``(M, dimension)``; ``rngs`` supplies one generator per
        row for codecs with ``uses_rng`` (ignored otherwise).  Every
        operation is per-row, so single-row and whole-fleet calls are
        bit-identical.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class IdentityCodec(Codec):
    """No compression: dense float64 on the wire, values pass through."""

    name = "identity"
    is_identity = True

    def wire_cost(self, dimension: int) -> Tuple[int, int]:
        return int(dimension), 8 * int(dimension)

    def decode_rows(self, work, rngs=None):
        return work


class FP16Codec(Codec):
    """Round every coordinate to IEEE half precision (2 bytes each)."""

    name = "fp16"

    def wire_cost(self, dimension: int) -> Tuple[int, int]:
        return int(dimension), 2 * int(dimension)

    def decode_rows(self, work, rngs=None):
        work = np.asarray(work, dtype=np.float64)
        return work.astype(np.float16).astype(np.float64)


class Int8Codec(Codec):
    """Symmetric per-row int8 quantisation with one float64 scale per message.

    Each row is scaled so its largest magnitude maps to 127, rounded to the
    nearest integer level and rescaled; an all-zero row stays exactly zero.
    Values that are exact multiples of the scale (including the row maximum
    itself) round-trip exactly.
    """

    name = "int8"

    def wire_cost(self, dimension: int) -> Tuple[int, int]:
        # One int8 per coordinate plus the float64 scale.
        return int(dimension), int(dimension) + 8

    def decode_rows(self, work, rngs=None):
        work = np.asarray(work, dtype=np.float64)
        scale = np.max(np.abs(work), axis=1, keepdims=True) / 127.0
        safe = np.where(scale > 0.0, scale, 1.0)
        levels = np.clip(np.rint(work / safe), -127.0, 127.0)
        return np.where(scale > 0.0, levels * safe, 0.0)


class TopKCodec(Codec):
    """Keep each row's ``k`` largest-magnitude coordinates, zero the rest.

    Ties break towards the lower index (stable sort), so the selection is
    deterministic.  Wire format: ``k`` (value, index) pairs.
    """

    name = "topk"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be a positive coordinate count")
        self.k = int(k)

    def wire_cost(self, dimension: int) -> Tuple[int, int]:
        k = min(self.k, int(dimension))
        return k, _SPARSE_BYTES_PER_COORD * k

    def decode_rows(self, work, rngs=None):
        work = np.asarray(work, dtype=np.float64)
        if self.k >= work.shape[1]:
            return work.copy()
        keep = np.argsort(-np.abs(work), axis=1, kind="stable")[:, : self.k]
        rows = np.arange(work.shape[0])[:, None]
        out = np.zeros_like(work)
        out[rows, keep] = work[rows, keep]
        return out

    def describe(self) -> str:
        return f"topk(k={self.k})"


class RandomKCodec(Codec):
    """Keep ``k`` uniformly random coordinates per row (per-agent stream).

    Each row draws its coordinate subset from that agent's dedicated
    compression generator, so the selection is reproducible and identical
    under both engines.  Same wire format as top-k.
    """

    name = "randomk"
    uses_rng = True

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be a positive coordinate count")
        self.k = int(k)

    def wire_cost(self, dimension: int) -> Tuple[int, int]:
        k = min(self.k, int(dimension))
        return k, _SPARSE_BYTES_PER_COORD * k

    def decode_rows(self, work, rngs=None):
        work = np.asarray(work, dtype=np.float64)
        if rngs is None or len(rngs) != work.shape[0]:
            raise ValueError(
                f"randomk needs one rng per row: got "
                f"{None if rngs is None else len(rngs)} for {work.shape[0]} rows"
            )
        dimension = work.shape[1]
        if self.k >= dimension:
            return work.copy()
        out = np.zeros_like(work)
        for row, rng in enumerate(rngs):
            keep = rng.choice(dimension, size=self.k, replace=False)
            out[row, keep] = work[row, keep]
        return out

    def describe(self) -> str:
        return f"randomk(k={self.k})"


def make_codec(config, dimension: int) -> Codec:
    """Instantiate the codec a :class:`~repro.compression.config.CompressionConfig` names.

    The sparsifying codecs resolve ``k=None`` to one tenth of the model
    dimension (at least 1) and reject ``k`` larger than the dimension —
    a "sparse" message bigger than the dense one is a configuration error.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    name = config.codec
    if name == "identity":
        return IdentityCodec()
    if name == "fp16":
        return FP16Codec()
    if name == "int8":
        return Int8Codec()
    if name in ("topk", "randomk"):
        k = config.k if config.k is not None else max(1, int(dimension) // 10)
        if k > dimension:
            raise ValueError(
                f"k={k} exceeds the model dimension {dimension}; a sparse "
                f"message larger than the dense vector is a configuration error"
            )
        return TopKCodec(k) if name == "topk" else RandomKCodec(k)
    raise ValueError(f"unknown codec {name!r}")
