"""Declarative configuration for compressed gossip.

:class:`CompressionConfig` is the single knob surface threaded from
:class:`~repro.experiments.specs.ExperimentSpec` through
:class:`~repro.core.config.AlgorithmConfig` into the engines: which codec
compresses the gossip payloads (:data:`CODEC_NAMES`), how sparse the
sparsifying codecs are (``k``), how often agents communicate at all
(``communication_interval``), whether the quantisation error is carried
forward by error feedback, and how gossip partners are selected
(``peer_selection``, mirroring Bagua's ``LowPrecisionDecentralizedAlgorithm``
``"all"``/``"shift_one"`` modes).

The default config is the *identity*: no compression, every round, all
neighbours — and the engines treat it as bit-identical to the historical
uncompressed path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = [
    "CODEC_NAMES",
    "PEER_SELECTION_MODES",
    "COMPRESSION_KEYS",
    "CompressionConfig",
    "validate_compression",
]

#: Codec identifiers accepted by :func:`repro.compression.codecs.make_codec`.
CODEC_NAMES = ("identity", "fp16", "int8", "topk", "randomk")

#: Gossip partner selection modes: ``"all"`` exchanges with every topology
#: neighbour each communication round; ``"shift_one"`` pairs the fleet up in
#: a rotating perfect matching (one peer per agent per round).
PEER_SELECTION_MODES = ("all", "shift_one")

#: Keys accepted in an :class:`~repro.experiments.specs.ExperimentSpec`
#: ``compression`` mapping (and by :meth:`CompressionConfig.from_mapping`).
COMPRESSION_KEYS = frozenset(
    {"codec", "k", "communication_interval", "peer_selection", "error_feedback"}
)


@dataclass(frozen=True)
class CompressionConfig:
    """How gossip payloads are compressed and scheduled.

    Attributes
    ----------
    codec:
        One of :data:`CODEC_NAMES`.  ``"identity"`` (the default) transmits
        full-precision float64 vectors and is bit-identical to the
        uncompressed path.
    k:
        Number of coordinates kept per message by the sparsifying codecs
        (``"topk"``, ``"randomk"``).  ``None`` defaults to one tenth of the
        model dimension (at least 1) at codec-construction time.
    communication_interval:
        Gossip every ``communication_interval``-th round; in between, agents
        take purely local steps.  1 (the default) communicates every round.
    peer_selection:
        ``"all"`` (default) or ``"shift_one"`` — the latter replaces the
        configured topology with a rotating perfect matching
        (:class:`~repro.topology.schedule.ShiftOneSchedule`), so each agent
        talks to exactly one peer per communication round.
    error_feedback:
        Carry each agent's compression error into its next transmission
        (``e <- (x + e) - C(x + e)``), the standard fix that restores
        convergence under biased codecs such as top-k.  Ignored by the
        identity codec, which has no error to feed back.
    """

    codec: str = "identity"
    k: Optional[int] = None
    communication_interval: int = 1
    peer_selection: str = "all"
    error_feedback: bool = True

    def __post_init__(self) -> None:
        if self.codec not in CODEC_NAMES:
            raise ValueError(
                f"codec must be one of {CODEC_NAMES}, got {self.codec!r}"
            )
        if self.k is not None:
            if self.codec not in ("topk", "randomk"):
                raise ValueError(
                    f"k only applies to the sparsifying codecs "
                    f"('topk', 'randomk'), not {self.codec!r}"
                )
            if int(self.k) < 1:
                raise ValueError("k must be a positive coordinate count")
        if int(self.communication_interval) < 1:
            raise ValueError("communication_interval must be a positive round count")
        if self.peer_selection not in PEER_SELECTION_MODES:
            raise ValueError(
                f"peer_selection must be one of {PEER_SELECTION_MODES}, "
                f"got {self.peer_selection!r}"
            )

    @property
    def is_identity(self) -> bool:
        """Whether the codec itself is the no-op identity."""
        return self.codec == "identity"

    @classmethod
    def from_mapping(
        cls, mapping: Optional[Mapping[str, object]]
    ) -> "CompressionConfig":
        """Build a config from a declarative mapping (``None`` -> defaults)."""
        if mapping is None:
            return cls()
        validate_compression(mapping)
        return cls(**dict(mapping))

    def as_dict(self) -> Dict[str, object]:
        """Serialisable form for experiment metadata."""
        return {
            "codec": self.codec,
            "k": self.k,
            "communication_interval": self.communication_interval,
            "peer_selection": self.peer_selection,
            "error_feedback": self.error_feedback,
        }


def validate_compression(compression: Optional[Mapping[str, object]]) -> None:
    """Raise ``ValueError`` unless the mapping is a valid compression declaration.

    Checks the vocabulary (keys must come from :data:`COMPRESSION_KEYS`) and
    the value ranges, so an invalid declaration fails at spec construction
    instead of deep in the harness.  The single source of truth shared by
    :class:`~repro.experiments.specs.ExperimentSpec` and
    :class:`~repro.core.config.AlgorithmConfig`.
    """
    if not compression:
        return
    unknown = sorted(set(compression) - COMPRESSION_KEYS)
    if unknown:
        raise ValueError(
            f"unknown compression keys: {unknown}; expected a subset of "
            f"{sorted(COMPRESSION_KEYS)}"
        )
    CompressionConfig(**dict(compression))
