"""Per-agent compression state: error-feedback residuals and sparsifier streams.

One :class:`CompressionState` lives on each algorithm instance (when a lossy
codec is configured) and owns everything compression adds to the resumable
state: a residual buffer per agent per gossip *channel* (a channel is one
logical payload stream, e.g. ``"model"`` or the two halves ``"mix.0"`` /
``"mix.1"`` of a tuple message) and, for codecs that sample coordinates, one
dedicated random generator per agent.

The generators are derived from ``(seed, 0xC0DEC, agent)`` — independent of
the positional ``child_seeds`` array in
:class:`~repro.core.base.DecentralizedAlgorithm`, whose layout is
load-bearing for bit-identity of existing runs.

Error feedback implements the standard memory scheme: the transmitted value
is ``C(x + e)`` and the new residual is ``e' = (x + e) - C(x + e)``, so the
sum of everything ever transmitted plus the current residual telescopes to
the sum of everything ever offered — compression introduces no systematic
drift.

Both engines call into the same row-wise codec kernels —
:meth:`compress_rows` on the whole fleet matrix, :meth:`compress_row` on a
single agent's vector — and the two paths are bit-identical per agent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.compression.codecs import Codec

__all__ = ["CompressionState"]


class CompressionState:
    """Residual buffers and sparsifier RNG streams for one algorithm instance."""

    def __init__(
        self,
        codec: Codec,
        num_agents: int,
        dimension: int,
        error_feedback: bool = True,
        seed: int = 0,
    ) -> None:
        if num_agents < 1 or dimension < 1:
            raise ValueError("num_agents and dimension must be positive")
        self.codec = codec
        self.num_agents = int(num_agents)
        self.dimension = int(dimension)
        self.error_feedback = bool(error_feedback) and not codec.is_identity
        # Residuals are created lazily per channel: algorithms differ in how
        # many payload streams they gossip (one for DMSGD, two for PDSL).
        self._residuals: Dict[str, np.ndarray] = {}
        self.rngs: Optional[List[np.random.Generator]] = (
            [
                np.random.default_rng([int(seed), 0xC0DEC, agent])
                for agent in range(self.num_agents)
            ]
            if codec.uses_rng
            else None
        )

    # ------------------------------------------------------------------
    # Compression kernels
    # ------------------------------------------------------------------
    def _residual_for(self, channel: str) -> Optional[np.ndarray]:
        if not self.error_feedback:
            return None
        residual = self._residuals.get(channel)
        if residual is None:
            residual = np.zeros((self.num_agents, self.dimension), dtype=np.float64)
            self._residuals[channel] = residual
        return residual

    def ensure_channel(self, channel: str) -> None:
        """Eagerly create the channel's residual buffer (normally lazy).

        The streamed round pipeline calls this before dispatching blocks to
        a parallel scheduler: lazy creation from concurrent blocks would
        race, with one block's residual updates landing in a buffer that is
        immediately discarded.
        """
        self._residual_for(channel)

    def compress_rows(
        self,
        channel: str,
        matrix: np.ndarray,
        active_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Decoded fleet matrix after compressing every (active) agent's row.

        Inactive rows pass through untouched: they transmit nothing, so
        their residuals stay put and their sparsifier streams are not
        consumed — exactly like the loop engine, where an inactive agent
        never reaches its broadcast.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        residual = self._residual_for(channel)
        if active_mask is None or bool(active_mask.all()):
            work = matrix + residual if residual is not None else matrix
            decoded = self.codec.decode_rows(work, self.rngs)
            if residual is not None:
                residual[:] = work - decoded
            return decoded
        active = np.flatnonzero(active_mask)
        work = matrix[active]
        if residual is not None:
            work = work + residual[active]
        rngs = None if self.rngs is None else [self.rngs[int(i)] for i in active]
        decoded = self.codec.decode_rows(work, rngs)
        out = matrix.copy()
        out[active] = decoded
        if residual is not None:
            residual[active] = work - decoded
        return out

    def compress_rows_blocked(
        self,
        channel: str,
        matrix: np.ndarray,
        active_mask: Optional[np.ndarray] = None,
        block_rows: Optional[int] = None,
    ) -> np.ndarray:
        """:meth:`compress_rows` streamed over ``(block_rows, d)`` chunks.

        The codec kernels are row-wise and each agent's residual/stream is
        touched exactly once, so the blocked pass is **bit-identical** to
        the one-shot call — it exists purely to bound the transient working
        set (one block's ``work``/``decoded`` arrays instead of fleet-sized
        copies) on large fleets.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if block_rows is None or block_rows >= self.num_agents:
            return self.compress_rows(channel, matrix, active_mask)
        if block_rows < 1:
            raise ValueError("block_rows must be a positive integer")
        out = np.empty_like(matrix)
        for start in range(0, self.num_agents, block_rows):
            stop = min(start + block_rows, self.num_agents)
            out[start:stop] = self.compress_block(
                channel, matrix[start:stop], start, stop, active_mask
            )
        return out

    def compress_block(
        self,
        channel: str,
        block: np.ndarray,
        start: int,
        stop: int,
        active_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compress the rows of agents ``start..stop`` (one streamed-round block).

        This is the loop body of :meth:`compress_rows_blocked` — residuals
        and sparsifier streams are addressed by absolute agent index, so
        processing disjoint blocks in any order (including concurrently,
        after :meth:`ensure_channel`) is bit-identical to the one-shot call.
        Returns the decoded ``(stop - start, d)`` block (float64).
        """
        block = np.asarray(block, dtype=np.float64)
        residual = self._residual_for(channel)
        sub_mask = None if active_mask is None else active_mask[start:stop]
        if sub_mask is None or bool(sub_mask.all()):
            work = block + residual[start:stop] if residual is not None else block
            rngs = None if self.rngs is None else self.rngs[start:stop]
            decoded = self.codec.decode_rows(work, rngs)
            if residual is not None:
                residual[start:stop] = work - decoded
            return decoded
        active = np.flatnonzero(sub_mask)
        out = block.copy()
        if active.size == 0:
            return out
        work = block[active]
        if residual is not None:
            work = work + residual[start:stop][active]
        rngs = (
            None
            if self.rngs is None
            else [self.rngs[start + int(i)] for i in active]
        )
        decoded = self.codec.decode_rows(work, rngs)
        out[active] = decoded
        if residual is not None:
            residual[start + active] = work - decoded
        return out

    def compress_row(self, channel: str, agent: int, vector: np.ndarray) -> np.ndarray:
        """Decoded value of one agent's vector (loop-engine entry point).

        Routes through the same row-wise kernel as :meth:`compress_rows`, so
        the two engines produce bit-identical decoded values per agent.
        """
        vector = np.asarray(vector, dtype=np.float64)
        residual = self._residual_for(channel)
        work = vector + residual[agent] if residual is not None else vector
        rngs = None if self.rngs is None else [self.rngs[agent]]
        decoded = self.codec.decode_rows(work[None, :], rngs)[0]
        if residual is not None:
            residual[agent] = work - decoded
        return decoded

    def residual(self, channel: str) -> Optional[np.ndarray]:
        """The channel's ``(num_agents, dimension)`` residual buffer (or ``None``)."""
        return self._residuals.get(channel)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Resumable compression state: residuals per channel, stream positions."""
        return {
            "codec": self.codec.name,
            "error_feedback": self.error_feedback,
            "residuals": {
                channel: buffer.copy() for channel, buffer in self._residuals.items()
            },
            "rng_states": (
                None
                if self.rngs is None
                else [rng.bit_generator.state for rng in self.rngs]
            ),
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        if payload["codec"] != self.codec.name:
            raise ValueError(
                f"checkpoint compression state was written by codec "
                f"{payload['codec']!r}, cannot restore into {self.codec.name!r}"
            )
        self._residuals = {}
        for channel, buffer in payload["residuals"].items():
            buffer = np.asarray(buffer, dtype=np.float64)
            if buffer.shape != (self.num_agents, self.dimension):
                raise ValueError(
                    f"residual buffer for channel {channel!r} has shape "
                    f"{buffer.shape}, expected ({self.num_agents}, {self.dimension})"
                )
            self._residuals[channel] = buffer.copy()
        rng_states = payload["rng_states"]
        if rng_states is not None:
            if self.rngs is None:
                raise ValueError(
                    "checkpoint carries sparsifier rng streams but this codec "
                    "draws no randomness"
                )
            for rng, state in zip(self.rngs, rng_states):
                rng.bit_generator.state = state
