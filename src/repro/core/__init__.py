"""Core package: the PDSL algorithm and the shared decentralized-algorithm base.

* :class:`DecentralizedAlgorithm` — shared infrastructure (per-agent parameter
  vectors, batch samplers, DP mechanisms, the message-passing network, gossip
  averaging, evaluation helpers) used by PDSL and every baseline;
* :class:`PDSL` — Algorithm 1 of the paper;
* :class:`PDSLConfig` and friends — experiment configuration dataclasses;
* :func:`validation_characteristic` — the Shapley characteristic function of
  eq. 16 (validation accuracy of the averaged candidate models).
"""

from repro.core.config import (
    AlgorithmConfig,
    CGAConfig,
    MuffliatoConfig,
    NetFleetConfig,
    PDSLConfig,
)
from repro.core.base import AgentRows, DecentralizedAlgorithm
from repro.core.characteristic import validation_characteristic, make_update_characteristic
from repro.core.pdsl import PDSL

__all__ = [
    "AlgorithmConfig",
    "PDSLConfig",
    "MuffliatoConfig",
    "CGAConfig",
    "NetFleetConfig",
    "AgentRows",
    "DecentralizedAlgorithm",
    "validation_characteristic",
    "make_update_characteristic",
    "PDSL",
]
