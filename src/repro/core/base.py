"""Shared infrastructure for decentralized learning algorithms.

:class:`DecentralizedAlgorithm` owns everything PDSL and the baselines have in
common: the fleet's parameters as one ``(num_agents, dimension)`` state
matrix (every row initialised to the same point ``x^[0]``), per-agent
mini-batch samplers and DP mechanisms, the message-passing
:class:`~repro.simulation.network.Network`, gossip averaging with the
topology's mixing matrix, and the evaluation helpers used by the experiment
runner (average training loss, test accuracy, consensus distance).

The communication topology is consulted *per round*: a
:class:`~repro.topology.schedule.TopologySchedule` (or a bare
:class:`~repro.topology.graphs.Topology`, wrapped in a bit-identical static
schedule) provides each round's graph, mixing operator and active-agent
mask through :meth:`DecentralizedAlgorithm._begin_round` — agents that sit
a round out (churn, stragglers) draw no randomness and keep frozen rows on
both engines.

Two execution engines share that state (selected by
``AlgorithmConfig.backend``):

* the **loop** backend steps agents one at a time and routes every exchange
  through the :class:`Network` mailbox — faithful to a real deployment,
  message by message, and required for fault injection;
* the **vectorized** backend performs the same round as whole-fleet tensor
  operations — the gossip step is a single ``W @ X`` multiply
  (:meth:`mix_rows`, dispatched through the topology's
  :class:`~repro.topology.mixing.MixingOperator`: O(M^2 d) dense or
  O(nnz d) CSR, bit-identical either way), gradients are evaluated with
  stacked forward/backward passes where the model allows it
  (:meth:`fleet_gradients`), and clipping + Gaussian noise are applied
  row-wise (:meth:`privatize_rows`, one batched draw per owner agent).
  Per-agent random streams are consumed in the same order as the loop
  backend, so the two engines produce the same trajectory for a fixed seed
  (up to floating-point associativity).

Subclasses implement :meth:`_step_loop` (and usually
:meth:`_step_vectorized`), each executing one communication round for all
agents; :meth:`step` dispatches on the configured backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union, overload

import numpy as np

from repro.compression.codecs import CompressedPayload, make_codec
from repro.compression.config import CompressionConfig
from repro.compression.state import CompressionState
from repro.core.config import AlgorithmConfig
from repro.data.dataset import Dataset
from repro.data.loaders import BatchSampler
from repro.nn.batched import StackedSequential, supports_stacked
from repro.nn.layers import Dropout
from repro.nn.model import Model
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanisms import GaussianMechanism, clip_by_l2_norm, clip_rows_by_l2_norm
from repro.sharding import FleetState, RoundScheduler, resolve_block_rows, row_blocks
from repro.simulation.metrics import consensus_distance
from repro.simulation.network import Network
from repro.topology.graphs import Topology
from repro.topology.mixing import validate_mixing_matrix
from repro.topology.schedule import (
    ShiftOneSchedule,
    StaticSchedule,
    TopologyEvent,
    TopologySchedule,
)

__all__ = ["AgentRows", "DecentralizedAlgorithm"]

Batch = Tuple[np.ndarray, np.ndarray]


class AgentRows:
    """List-like view over the rows of an ``(num_agents, dimension)`` fleet matrix.

    The vectorized engine stores all agents' vectors in one contiguous
    matrix; this adapter preserves the historical per-agent list API
    (``algorithm.params[i]``, iteration, item assignment) without copying.
    Reads return row *views* into the underlying matrix; writes
    (``rows[i] = vector``) store into it.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self._matrix = matrix

    def __len__(self) -> int:
        return int(self._matrix.shape[0])

    @overload
    def __getitem__(self, index: int) -> np.ndarray: ...

    @overload
    def __getitem__(self, index: slice) -> List[np.ndarray]: ...

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self._matrix[i] for i in range(*index.indices(len(self)))]
        return self._matrix[index]

    def __setitem__(self, index: int, value: np.ndarray) -> None:
        # The fleet matrix's dtype is authoritative (resolved once from
        # AlgorithmConfig.dtype); writes are rounded into it.
        self._matrix[index] = np.asarray(value, dtype=self._matrix.dtype)

    def __iter__(self):
        return iter(self._matrix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AgentRows(shape={self._matrix.shape})"


class LazySeededRngs:
    """Per-agent generators materialised on first access.

    Behaves like the eager ``List[np.random.Generator]`` it replaces
    (indexing, iteration, ``len``) but only constructs a generator when an
    agent's stream is actually drawn from.  Each generator is seeded
    independently from its entry of the pre-split seed array, so laziness
    cannot change any stream — construction consumes no randomness.
    Iteration (e.g. ``state_dict`` capturing every stream position)
    materialises all of them.
    """

    def __init__(self, seeds: np.ndarray) -> None:
        self._seeds = np.asarray(seeds)
        self._rngs: Dict[int, np.random.Generator] = {}

    def __len__(self) -> int:
        return int(self._seeds.shape[0])

    def __getitem__(self, index: int) -> np.random.Generator:
        index = int(index)
        if index < 0:
            index += len(self)
        rng = self._rngs.get(index)
        if rng is None:
            rng = np.random.default_rng(int(self._seeds[index]))
            self._rngs[index] = rng
        return rng

    def __iter__(self):
        return (self[i] for i in range(len(self)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazySeededRngs({len(self)} streams, "
            f"{len(self._rngs)} materialised)"
        )


class DecentralizedAlgorithm:
    """Base class for synchronous round-based decentralized learning algorithms.

    Parameters
    ----------
    model:
        A template model; its initial parameters become every agent's
        ``x^[0]`` and its forward/backward passes are reused for all gradient
        evaluations (agents are distinguished purely by their parameter
        vectors, exactly as the paper treats them as points in ``R^d``).
    topology:
        Communication graph with doubly stochastic mixing matrix ``W``, or a
        :class:`~repro.topology.schedule.TopologySchedule` providing one
        graph per round (time-varying topologies, churn, stragglers).  A
        bare ``Topology`` is wrapped in a
        :class:`~repro.topology.schedule.StaticSchedule`, which reproduces
        the fixed-graph behaviour bit for bit.  The base matrix is
        re-validated here (symmetry, double stochasticity) so a topology
        whose matrix was mutated after construction fails fast with a clear
        error instead of deep inside the first gossip step.
    shards:
        One local dataset per agent (e.g. from
        :func:`repro.data.partition.partition_dirichlet`).
    config:
        Optimisation / DP hyper-parameters, including the execution
        ``backend`` (``"loop"`` or ``"vectorized"``).
    validation:
        Optional shared validation set ``Q``; required by PDSL, unused by the
        baselines.
    """

    name: str = "decentralized"

    #: Logical payload streams in one gossip message (2 for algorithms that
    #: transmit ``(momentum, model)`` or ``(model, tracking)`` pairs).  The
    #: event-driven timing layer sizes simulated transfers with
    #: ``gossip_wire_cost(num_gossip_channels)``, so overriding this keeps
    #: simulated wire time consistent with the bytes the round accounts.
    num_gossip_channels: int = 1

    def __init__(
        self,
        model: Model,
        topology: Union[Topology, TopologySchedule],
        shards: Sequence[Dataset],
        config: AlgorithmConfig,
        validation: Optional[Dataset] = None,
    ) -> None:
        if isinstance(topology, TopologySchedule):
            self.schedule: TopologySchedule = topology
            topology = self.schedule.base
        else:
            self.schedule = StaticSchedule(topology)
        # Gossip compression: resolve the config once (None means the
        # bit-identical identity defaults) and, for shift_one peer
        # selection, replace the schedule with the rotating matching.
        self.compression_config: CompressionConfig = (
            getattr(config, "compression", None) or CompressionConfig()
        )
        if self.compression_config.peer_selection == "shift_one":
            if not self.schedule.is_static:
                raise ValueError(
                    "peer_selection='shift_one' replaces the topology with a "
                    "rotating matching and cannot be combined with a dynamic "
                    "topology schedule"
                )
            self.schedule = ShiftOneSchedule(topology)
        if len(shards) != topology.num_agents:
            raise ValueError(
                f"got {len(shards)} data shards for {topology.num_agents} agents"
            )
        for agent, shard in enumerate(shards):
            if len(shard) == 0:
                raise ValueError(f"agent {agent} received an empty local dataset")
        try:
            validate_mixing_matrix(topology.mixing_matrix)
        except ValueError as error:
            raise ValueError(
                f"topology {topology.name!r} has an invalid mixing matrix: {error}"
            ) from error
        # The gossip operator: W in dense or CSR storage, per the config's
        # mixing_backend ("auto" selects by fleet size and edge density).
        # Both formats apply W with the same accumulation order, so the
        # choice is purely a performance knob — trajectories are
        # bit-identical either way.
        mixing_backend = getattr(config, "mixing_backend", "auto")
        self._mixing_format = None if mixing_backend == "auto" else mixing_backend
        self.mixing = topology.mixing_operator(self._mixing_format)
        self.model = model
        self.topology = topology
        self.shards = list(shards)
        self.config = config
        self.validation = validation
        self.num_agents = topology.num_agents
        self.dimension = model.num_params
        self.sigma = config.resolve_sigma()
        # Precision and sharding knobs.  ``_dtype`` is the single source of
        # truth for the fleet-state element type (every state matrix, every
        # state assignment and the loop engine's row writes funnel through
        # it, so the two engines cannot drift to different dtypes);
        # ``_grad_dtype`` is its counterpart for gradient/loss buffers, which
        # stay double precision in every mode because the model kernels are
        # float64.  ``_block_rows`` turns on the streaming (row-blocked)
        # kernels for gossip, clip+noise and codec passes.
        self._precision: str = getattr(config, "dtype", "float64")
        self._dtype: np.dtype = np.dtype(
            np.float64 if self._precision == "float64" else np.float32
        )
        self._grad_dtype: np.dtype = np.dtype(np.float64)
        self._block_rows: Optional[int] = getattr(config, "block_rows", None)
        # Streamed-round plumbing.  ``_stream_rows`` is the resolved row-block
        # size every blocked stage uses (the explicit ``block_rows`` when set,
        # else a ~32 MiB default); ``_scheduler`` runs independent row blocks
        # of one stage, serially (``block_workers=1``) or on a thread pool;
        # ``_pinned`` backs the fleet matrices with memmap FleetStates
        # (``storage="memmap"``) so whole-fleet state never has to be
        # resident; ``_scratch`` holds the handful of reusable fleet-shaped
        # working buffers the streamed round writes block by block.
        self._storage: str = getattr(config, "storage", "ram")
        self._pinned: bool = self._storage == "memmap"
        self._block_workers: int = max(1, int(getattr(config, "block_workers", 1)))
        self._scheduler = RoundScheduler(self._block_workers)
        self._stream_rows: int = resolve_block_rows(
            topology.num_agents, model.num_params, self._block_rows, itemsize=8
        )
        self._fleet_backing: Dict[str, FleetState] = {}
        self._scratch: Dict[str, np.ndarray] = {}
        # The codec compresses gossip payloads; its per-agent error-feedback
        # residuals and sparsifier streams live in a CompressionState.  The
        # identity codec carries no state at all, so the legacy path stays
        # bit-identical (and pays nothing).
        self.codec = make_codec(self.compression_config, self.dimension)
        self._compression_state: Optional[CompressionState] = (
            None
            if self.codec.is_identity
            else CompressionState(
                self.codec,
                self.num_agents,
                self.dimension,
                error_feedback=self.compression_config.error_feedback,
                seed=config.seed,
            )
        )

        # Per-round participation state, refreshed by :meth:`_begin_round`
        # from the schedule.  On a static schedule every agent is active in
        # every round and none of the masking paths are taken.
        self.active_mask: np.ndarray = np.ones(self.num_agents, dtype=bool)
        self.active_agents: List[int] = list(range(self.num_agents))
        self._all_active = True
        self.pending_events: List[TopologyEvent] = []

        root_rng = np.random.default_rng(config.seed)
        child_seeds = root_rng.integers(0, 2**63 - 1, size=3 * self.num_agents + 2)
        self._rng = np.random.default_rng(int(child_seeds[-1]))
        self.network = Network(self.num_agents)
        self.accountant = PrivacyAccountant()

        initial = np.asarray(model.get_flat_params(), dtype=self._dtype)
        # Canonical fleet state: row i is agent i's parameter vector.  The
        # initial vector is cast *before* tiling so low-precision modes never
        # materialise a float64 fleet matrix even transiently.  With
        # ``storage="memmap"`` both fleet matrices live in memmap-backed
        # FleetStates and are filled block by block, so even initialisation
        # never needs a whole-fleet in-RAM temporary.
        if self._pinned:
            self._state = self._alloc_fleet_matrix("state")
            for start, stop in self._fleet_blocks():
                self._state[start:stop] = initial[None, :]
            self._momentum_state = self._alloc_fleet_matrix("momentum_state")
        else:
            self.state = np.tile(initial[None, :], (self.num_agents, 1))
            self.momentum_state = np.zeros(
                (self.num_agents, self.dimension), dtype=self._dtype
            )
        self._stacked: Optional[StackedSequential] = (
            StackedSequential(model) if supports_stacked(model) else None
        )
        # Models with stochastic layers draw from one RNG stream shared
        # across every forward pass, so re-grouping gradient evaluations
        # (as the vectorized engine does for cross-gradients) would change
        # the draws; such models run on the loop engine to stay reproducible.
        # Models whose layer structure cannot be inspected are treated as
        # stochastic — the conservative choice that preserves the documented
        # backend-equivalence guarantee for arbitrary Model subclasses.
        layers = getattr(model, "layers", None)
        self._model_is_stochastic = layers is None or any(
            isinstance(layer, Dropout) and layer.rate > 0.0 for layer in layers
        )
        self.samplers: List[BatchSampler] = [
            BatchSampler(
                shards[i], config.batch_size, np.random.default_rng(int(child_seeds[i]))
            )
            for i in range(self.num_agents)
        ]
        self.mechanisms: List[GaussianMechanism] = [
            GaussianMechanism(
                sigma=self.sigma,
                clip_threshold=config.clip_threshold,
                rng=np.random.default_rng(int(child_seeds[self.num_agents + i])),
            )
            for i in range(self.num_agents)
        ]
        # A dedicated per-agent generator for algorithm-level randomness
        # (e.g. Shapley permutations) so it does not perturb the DP noise
        # stream.  Materialised lazily: a Generator costs ~1 kB, and the
        # algorithms that never draw agent-level randomness (DP-DPSGD,
        # D-MSGD, ...) should not pay a gigabyte for a million of them.
        self.agent_rngs = LazySeededRngs(
            child_seeds[2 * self.num_agents : 3 * self.num_agents]
        )
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    # Fleet state accessors (list-compatible views over the state matrix)
    # ------------------------------------------------------------------
    def _as_state_matrix(self, value: Sequence[np.ndarray]) -> np.ndarray:
        if isinstance(value, np.ndarray) and value.ndim == 2:
            # Fast path for matrix payloads (checkpoints, fleet-scale
            # assignments): a single cast-copy instead of materialising N
            # Python row objects.  Always a fresh writable array — callers
            # rely on the result never aliasing their input.
            matrix = np.array(value, dtype=self._dtype)
        else:
            matrix = np.array(list(value), dtype=self._dtype)
        if matrix.shape != (self.num_agents, self.dimension):
            raise ValueError(
                f"fleet state must have shape ({self.num_agents}, {self.dimension}), "
                f"got {matrix.shape}"
            )
        return matrix

    def _store_blocked(self, dest: np.ndarray, value: np.ndarray) -> None:
        """Blocked in-place copy into a pinned (memmap-backed) fleet matrix.

        Per-block assignment casts into ``dest``'s dtype exactly like the
        one-shot ``np.asarray(value, dtype)`` rebind would, so the pinned
        setters are bit-identical to the RAM setters while never
        materialising a second fleet-sized array.
        """
        value = np.asarray(value)
        if value.shape != dest.shape:
            raise ValueError(
                f"fleet state must have shape {dest.shape}, got {value.shape}"
            )
        if value is dest:
            return
        for start, stop in row_blocks(dest.shape[0], self._stream_rows):
            dest[start:stop] = value[start:stop]

    @property
    def state(self) -> np.ndarray:
        """The ``(num_agents, dimension)`` fleet parameter matrix."""
        return self._state

    @state.setter
    def state(self, value: np.ndarray) -> None:
        # Every whole-fleet assignment funnels through the configured state
        # dtype: an update computed in float64 (gradients always are) is
        # rounded into float32 state here, under either engine.  Pinned
        # (memmap) storage streams the assignment into the backing store
        # block by block instead of rebinding.
        if getattr(self, "_pinned", False):
            self._store_blocked(self._state, value)
        else:
            self._state = np.asarray(value, dtype=self._dtype)

    @property
    def momentum_state(self) -> np.ndarray:
        """The ``(num_agents, dimension)`` fleet momentum matrix."""
        return self._momentum_state

    @momentum_state.setter
    def momentum_state(self, value: np.ndarray) -> None:
        if getattr(self, "_pinned", False):
            self._store_blocked(self._momentum_state, value)
        else:
            self._momentum_state = np.asarray(value, dtype=self._dtype)

    @property
    def params(self) -> AgentRows:
        """Per-agent parameter vectors as a list-like view over the state matrix."""
        return AgentRows(self.state)

    @params.setter
    def params(self, value: Sequence[np.ndarray]) -> None:
        self.state = self._as_state_matrix(value)

    @property
    def momenta(self) -> AgentRows:
        """Per-agent momentum buffers as a list-like view over the momentum matrix."""
        return AgentRows(self.momentum_state)

    @momenta.setter
    def momenta(self, value: Sequence[np.ndarray]) -> None:
        self.momentum_state = self._as_state_matrix(value)

    # ------------------------------------------------------------------
    # Core interface and backend dispatch
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The engine that will execute the next round (after fallbacks)."""
        return "vectorized" if self._use_vectorized() else "loop"

    def _use_vectorized(self) -> bool:
        # Message drops are per-message events; they only exist on the loop
        # path, so a lossy network forces the loop backend.  Stochastic
        # models (dropout) force it too: their shared forward-pass RNG would
        # be consumed in a different order by the re-grouped vectorized
        # gradient evaluations, breaking loop/vectorized trajectory
        # equivalence.
        return (
            getattr(self.config, "backend", "loop") == "vectorized"
            and self.network.drop_probability == 0.0
            and not self._model_is_stochastic
        )

    def step(self, round_index: int) -> None:
        """Execute one synchronous communication round for every agent."""
        self._begin_round(round_index)
        if self._use_vectorized():
            self._step_vectorized(round_index)
        else:
            self._step_loop(round_index)

    def _begin_round(self, round_index: int) -> None:
        """Pull round ``round_index``'s topology and participation from the schedule.

        Swaps in the round's graph and
        :class:`~repro.topology.mixing.MixingOperator` (LRU-cached by the
        schedule), refreshes the active-agent mask (churned-out agents and
        this round's stragglers are masked out of every phase), tells the
        network which agents are reachable, and buffers the schedule's
        events for the runner to record.  On a static schedule this is a
        no-op, so the legacy fixed-topology path is untouched.
        """
        if self.schedule.is_static:
            return
        topology = self.schedule.topology_at(round_index)
        if topology is not self.topology:
            self.topology = topology
            self.mixing = self.schedule.operator_at(round_index, self._mixing_format)
        mask = self.schedule.active_mask_at(round_index)
        self.active_mask = mask
        self._all_active = bool(mask.all())
        self.active_agents = [int(agent) for agent in np.flatnonzero(mask)]
        self.network.set_active_mask(mask)
        self.pending_events.extend(self.schedule.events_at(round_index))

    def is_active(self, agent: int) -> bool:
        """Whether the agent participates in the current round."""
        return bool(self.active_mask[agent])

    def consume_events(self) -> List[TopologyEvent]:
        """Drain the topology/churn events buffered since the last call."""
        events = self.pending_events
        self.pending_events = []
        return events

    def freeze_inactive_rows(
        self, updated: np.ndarray, current: np.ndarray
    ) -> np.ndarray:
        """Keep inactive agents' rows at ``current``; active rows take ``updated``.

        The vectorized engine computes whole-fleet updates and then pins the
        rows of agents that sat the round out — matching the loop engine,
        which simply never touches them.  With every agent active this
        returns ``updated`` unchanged (bit-identical legacy path).
        """
        if self._all_active:
            return updated
        return np.where(self.active_mask[:, None], updated, current)

    # ------------------------------------------------------------------
    # Streamed round pipeline
    # ------------------------------------------------------------------
    # With ``block_rows`` configured, the vectorized engine executes the
    # *whole* round as a pipeline over disjoint ``(block_rows, d)`` row
    # blocks: each block draws its agents' batches, evaluates gradients with
    # the stacked passes, applies clip+noise, updates momentum/state and
    # stages its gossip payload — never materialising more than a handful of
    # block-sized transients plus the reusable fleet-shaped scratch buffers.
    # Every per-agent random stream (sampler, mechanism, codec) is an
    # independent generator consumed exactly once per round per agent, and
    # all whole-fleet kernels used here are row-wise (or row-blocked with
    # unchanged accumulation order), so the streamed round is bit-identical
    # to the historical one-shot round — including under a parallel
    # ``RoundScheduler``, because blocks own disjoint rows and streams.

    @property
    def _streamed(self) -> bool:
        """Whether the vectorized round runs on the blocked stream pipeline."""
        return self._block_rows is not None

    def _fleet_blocks(self) -> List[Tuple[int, int]]:
        """The round's ``(start, stop)`` row blocks over the whole fleet."""
        return list(row_blocks(self.num_agents, self._stream_rows))

    def _alloc_fleet_matrix(
        self, name: str, dtype: Optional[np.dtype] = None
    ) -> np.ndarray:
        """A zeroed ``(num_agents, dimension)`` matrix on the configured storage.

        Under ``storage="memmap"`` the matrix is backed by a
        :class:`~repro.sharding.FleetState` memmap (tracked so :meth:`close`
        unlinks the file); otherwise it is an ordinary zeros array.
        """
        dtype = self._dtype if dtype is None else np.dtype(dtype)
        if not self._pinned:
            return np.zeros((self.num_agents, self.dimension), dtype=dtype)
        previous = self._fleet_backing.pop(name, None)
        if previous is not None:
            previous.close()
        backing = FleetState(
            self.num_agents,
            self.dimension,
            dtype=dtype,
            block_rows=self._stream_rows,
            storage="memmap",
        )
        self._fleet_backing[name] = backing
        return backing.array

    def _round_scratch(self, name: str, dtype: np.dtype = np.float64) -> np.ndarray:
        """A reusable fleet-shaped working buffer for the streamed round.

        Scratches are keyed by ``(name, dtype)`` and persist across rounds,
        so the streamed pipeline's steady-state allocation rate is zero.
        Contents are unspecified between rounds: every stage fully overwrites
        the blocks it reads back.
        """
        dtype = np.dtype(dtype)
        key = f"{name}.{dtype.name}"
        scratch = self._scratch.get(key)
        if scratch is None:
            scratch = self._alloc_fleet_matrix(f"scratch.{key}", dtype=dtype)
            self._scratch[key] = scratch
        return scratch

    def _freeze_block(
        self, updated: np.ndarray, current: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """:meth:`freeze_inactive_rows` restricted to rows ``start:stop``."""
        if self._all_active:
            return updated
        return np.where(self.active_mask[start:stop, None], updated, current)

    def _block_perturbed_gradients(
        self,
        start: int,
        stop: int,
        param_rows: Optional[np.ndarray] = None,
        batches_out: Optional[List[Optional[Batch]]] = None,
    ) -> np.ndarray:
        """Draw, evaluate and privatize one row block's local gradients.

        The blocked twin of ``privatize_rows(fleet_gradients(state,
        draw_batches()))``: agents ``start..stop`` draw their round batch
        from their own samplers (inactive agents draw nothing and contribute
        zero rows), gradients are evaluated at ``param_rows`` (default: the
        corresponding state rows) with the stacked passes, and clip+noise
        uses each row's own mechanism stream — all bit-identical to the
        whole-fleet calls because every kernel involved is per-row and every
        stream is per-agent.
        """
        batches: List[Optional[Batch]] = [
            self.samplers[i].next_batch() if self.active_mask[i] else None
            for i in range(start, stop)
        ]
        if batches_out is not None:
            batches_out[start:stop] = batches
        rows = self.state[start:stop] if param_rows is None else param_rows
        gradients = self.fleet_gradients(rows, batches)
        return self.privatize_rows(gradients, agents=range(start, stop))

    def _streamed_local_perturbed(
        self,
    ) -> Tuple[List[Optional[Batch]], np.ndarray]:
        """Blocked phase 1: every agent's perturbed local gradient.

        Returns the drawn batches (kept for algorithms that re-evaluate at
        neighbour models, e.g. cross-gradients) and a fleet-shaped float64
        scratch holding each agent's clipped-and-noised local gradient.
        """
        batches: List[Optional[Batch]] = [None] * self.num_agents
        out = self._round_scratch("own_perturbed", np.float64)

        def run(start: int, stop: int) -> None:
            out[start:stop] = self._block_perturbed_gradients(
                start, stop, batches_out=batches
            )

        self._scheduler.map(run, self._fleet_blocks(), serial=self._stacked is None)
        return batches, out

    def _compress_block(
        self, channel: str, block: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Codec-encode one row block of a gossip channel (identity: pass-through).

        Callers must have primed the channel with
        :meth:`_prepare_gossip_channels` before dispatching blocks to a
        parallel scheduler (residual buffers are created lazily).
        """
        if self._compression_state is None:
            return block
        mask = None if self._all_active else self.active_mask
        return self._compression_state.compress_block(channel, block, start, stop, mask)

    def _prepare_gossip_channels(self, *channels: str) -> None:
        """Eagerly create the codec's per-channel residual buffers.

        The buffers are otherwise created lazily on first use, which would
        race when parallel blocks hit a fresh channel simultaneously.
        """
        if self._compression_state is None:
            return
        for channel in channels:
            self._compression_state.ensure_channel(channel)

    def _gossip_dtype(self, payload_dtype: np.dtype) -> np.dtype:
        """Element type a gossip-channel scratch must have.

        A lossy codec always emits float64 (``compress_rows`` casts its
        input up before encoding), regardless of the payload dtype; the
        identity codec passes the payload through unchanged.
        """
        if self._compression_state is None:
            return np.dtype(payload_dtype)
        return np.dtype(np.float64)

    def _mix_into(self, matrix: np.ndarray, out: np.ndarray) -> np.ndarray:
        """The gossip product ``W @ matrix`` written into ``out``.

        Reproduces :meth:`mix_rows`'s dispatch (mixed-precision float32
        payloads use the float64-accumulating kernel) while writing blocks
        straight into ``out`` — which may be state itself, a pinned memmap,
        or a scratch — through the block scheduler.  ``matrix`` is read
        through a write-protected view: it is a pure input of the product,
        so an aliasing bug raises instead of corrupting it mid-mix.
        """
        source = np.asarray(matrix)
        source = source.view()
        source.flags.writeable = False
        if self._precision == "mixed" and source.dtype == np.float32:
            self.mixing.apply_mixed(source, block_rows=self._block_rows, out=out)
            return out
        self._scheduler.map(
            lambda start, stop: self.mixing.mix_block(source, start, stop, out),
            self._fleet_blocks(),
        )
        return out

    def close(self) -> None:
        """Release streamed-round resources (worker pool, memmap backings).

        Idempotent.  After closing, the algorithm instance must not be used
        for further rounds: pinned fleet matrices are detached from their
        (unlinked) backing files.
        """
        self._scheduler.close()
        backings = list(self._fleet_backing.values())
        self._fleet_backing.clear()
        self._scratch.clear()
        for backing in backings:
            backing.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _step_loop(self, round_index: int) -> None:
        """One round via per-agent message passing (must be overridden)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _step_loop() (and optionally "
            "_step_vectorized()) or override step() directly"
        )

    def _step_vectorized(self, round_index: int) -> None:
        """One round via fleet-level tensor operations.

        Defaults to the loop implementation so algorithms without a
        vectorized port remain correct under either backend setting.
        """
        self._step_loop(round_index)

    def run_round(self) -> None:
        """Advance the network round counter and run :meth:`step` once."""
        self.network.advance_round()
        self.step(self.rounds_completed)
        if self.config.epsilon is not None and self.sigma > 0:
            self.accountant.record(self.config.epsilon, self.config.delta)
        self.rounds_completed += 1

    # ------------------------------------------------------------------
    # Gradient and gossip helpers
    # ------------------------------------------------------------------
    def local_gradient(
        self,
        agent: int,
        params: np.ndarray,
        batch: Batch,
    ) -> np.ndarray:
        """Stochastic gradient of the loss at ``params`` on ``agent``'s batch.

        When ``params`` belongs to a neighbour this is exactly the
        cross-gradient ``g_{i,j}`` of eq. 12: agent ``i``'s data, agent
        ``j``'s model.
        """
        inputs, labels = batch
        _, grad = self.model.loss_and_gradient(inputs, labels, params=params)
        return grad

    def fleet_gradients(
        self, param_rows: np.ndarray, batches: Sequence[Batch]
    ) -> np.ndarray:
        """Row ``k``'s gradient at ``param_rows[k]`` evaluated on ``batches[k]``.

        Uses stacked forward/backward passes when the model supports them
        (linear classifiers and MLPs); rows are grouped by batch shape so
        ragged batches (agents whose shard is smaller than the configured
        batch size) only exclude themselves from a stack, not the whole
        fleet.  Models without stacked support (CNNs) fall back to one
        :meth:`Model.loss_and_gradient` call per row.  ``param_rows`` may
        contain arbitrary rows (e.g. the neighbour models of every directed
        edge for cross-gradients), not just the fleet state.  A ``None``
        batch (an inactive agent, see :meth:`draw_batches`) contributes a
        zero row and no forward/backward pass.
        """
        param_rows = np.asarray(param_rows, dtype=self._grad_dtype)
        present = [k for k, batch in enumerate(batches) if batch is not None]
        grads = np.zeros((len(batches), self.dimension), dtype=self._grad_dtype)
        if self._stacked is None:
            for k in present:
                inputs, labels = batches[k]
                grads[k] = self.model.loss_and_gradient(
                    inputs, labels, params=param_rows[k]
                )[1]
            return grads
        for rows, inputs, labels in self._stack_groups(
            [batches[k] for k in present]
        ):
            owners = [present[r] for r in rows]
            if owners == list(range(grads.shape[0])):
                # One dense group covering every row in order (the common
                # case inside a streamed block): write gradients straight
                # into the output buffer, skipping the fancy-index gather of
                # param_rows and the scatter copy of the results.
                self._stacked.loss_and_gradients(
                    param_rows, inputs, labels, out=grads
                )
            else:
                _, group_grads = self._stacked.loss_and_gradients(
                    param_rows[owners], inputs, labels
                )
                grads[owners] = group_grads
        return grads

    @staticmethod
    def _stack_groups(batches: Sequence[Batch]):
        """Group ``(inputs, labels)`` pairs by shape and stack each group.

        The stacked engine needs rectangular ``(M, B, ...)`` tensors, so
        ragged entries (agents whose shard is smaller than the configured
        batch or evaluation-sample size) only exclude themselves from a
        stack, not the whole fleet.  Yields ``(row_indices, inputs, labels)``
        per group with the original order preserved inside each group.
        """
        groups: Dict[Tuple, List[int]] = {}
        for k, (inputs, labels) in enumerate(batches):
            groups.setdefault((inputs.shape, labels.shape), []).append(k)
        for rows in groups.values():
            yield (
                rows,
                np.stack([batches[k][0] for k in rows], axis=0),
                np.stack([batches[k][1] for k in rows], axis=0),
            )

    def privatize(self, agent: int, gradient: np.ndarray) -> np.ndarray:
        """Clip to ``C`` and add ``N(0, sigma^2 I)`` noise (Algorithm 1 lines 3–4, 9–10)."""
        return self.mechanisms[agent].privatize(gradient)

    def privatize_rows(
        self, rows: np.ndarray, agents: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Row-wise clip + Gaussian noise, drawing from each owner agent's stream.

        Parameters
        ----------
        rows:
            ``(M, dimension)`` stack of gradients to privatize.
        agents:
            The agent that owns (and therefore noises) each row; defaults to
            ``0..num_agents-1`` (one row per agent).  Rows owned by the same
            agent must appear in the order the loop backend would privatize
            them, so both backends consume identical noise streams.
        """
        rows = np.asarray(rows)
        if self._block_rows is None:
            clipped = clip_rows_by_l2_norm(rows, self.config.clip_threshold)
        else:
            # Streamed clipping: the kernel is purely row-wise, so applying
            # it block by block is identical to the whole-matrix call while
            # bounding the transient to one (block_rows, d) chunk.
            clipped = np.empty_like(rows)
            for start in range(0, rows.shape[0], self._block_rows):
                stop = min(start + self._block_rows, rows.shape[0])
                clipped[start:stop] = clip_rows_by_l2_norm(
                    rows[start:stop], self.config.clip_threshold
                )
        owners = range(self.num_agents) if agents is None else agents
        if len(owners) != clipped.shape[0]:
            raise ValueError(
                f"got {clipped.shape[0]} gradient rows for {len(owners)} owner agents"
            )
        if self.sigma > 0.0:
            # One batched draw per owner instead of one mechanism call per
            # row: rows are grouped by owner preserving their order, and
            # Generator.normal fills arrays sequentially, so each agent's
            # stream is consumed exactly as the per-row loop would — while
            # skipping the Python-level call churn that dominates at
            # N >= 1024 (each agent owns one local-gradient row plus one
            # row per neighbour in the cross-gradient stacks).
            rows_by_owner: Dict[int, List[int]] = {}
            for row, agent in enumerate(owners):
                rows_by_owner.setdefault(int(agent), []).append(row)
            for agent, owned_rows in rows_by_owner.items():
                if not self.active_mask[agent]:
                    # Inactive owners contribute zero rows and draw no
                    # noise, mirroring the loop engine which never reaches
                    # their privatize call.
                    continue
                index = np.asarray(owned_rows, dtype=np.intp)
                clipped[index] = self.mechanisms[agent].add_noise_rows(clipped[index])
        return clipped

    def fleet_cross_gradients(
        self, batches: Sequence[Batch]
    ) -> Tuple[np.ndarray, Dict[Tuple[int, int], int]]:
        """Perturbed cross-gradients for every directed pair, plus a row index.

        Row ``pair_rows[(i, j)]`` holds the clipped-and-noised gradient of
        agent ``j``'s model evaluated on agent ``i``'s batch (the
        cross-gradient ``g_{i,j}`` of eq. 12).  Pairs are grouped by
        evaluator with owners ascending, so each evaluator's noise draws
        follow its own-gradient draw in exactly the loop backend's order —
        callers must privatize local gradients (one row per agent, agent
        order) *before* calling this.
        """
        pairs = self.topology.directed_pairs()
        evaluators = [i for i, _ in pairs]
        owners = [j for _, j in pairs]
        if self._streamed and pairs:
            # Streamed twin: evaluate the pair rows in evaluator-aligned
            # chunks of ~block_rows rows.  Each evaluator's rows stay inside
            # one chunk in their one-shot order, so its mechanism stream is
            # consumed by the same batched draws — bit-identical to the
            # one-shot call, under any chunking and any block schedule.
            cross_perturbed = np.empty(
                (len(pairs), self.dimension), dtype=self._grad_dtype
            )

            def run_chunk(start: int, stop: int) -> None:
                chunk_owners = owners[start:stop]
                chunk_evaluators = evaluators[start:stop]
                gradients = self.fleet_gradients(
                    self.state[chunk_owners],
                    [batches[i] for i in chunk_evaluators],
                )
                cross_perturbed[start:stop] = self.privatize_rows(
                    gradients, agents=chunk_evaluators
                )

            self._scheduler.map(
                run_chunk,
                self._evaluator_chunks(evaluators),
                serial=self._stacked is None,
            )
        else:
            cross = self.fleet_gradients(
                self.state[owners], [batches[i] for i in evaluators]
            )
            cross_perturbed = self.privatize_rows(cross, agents=evaluators)
        pair_rows = {pair: row for row, pair in enumerate(pairs)}
        return cross_perturbed, pair_rows

    def _evaluator_chunks(self, evaluators: Sequence[int]) -> List[Tuple[int, int]]:
        """Row chunks over the directed-pair list, cut at evaluator boundaries.

        Chunks hold at least ``_stream_rows`` rows (except the last) and
        never split one evaluator's rows across chunks, which is what makes
        the chunked cross-gradient noise draws identical to the one-shot
        batched draw per evaluator.
        """
        chunks: List[Tuple[int, int]] = []
        start = 0
        for k in range(1, len(evaluators) + 1):
            if k == len(evaluators) or (
                evaluators[k] != evaluators[k - 1] and k - start >= self._stream_rows
            ):
                chunks.append((start, k))
                start = k
        return chunks

    def clip(self, gradient: np.ndarray) -> np.ndarray:
        """Clip a gradient to the configured threshold without adding noise."""
        return clip_by_l2_norm(gradient, self.config.clip_threshold)

    def neighbor_weights(self, agent: int) -> Dict[int, float]:
        """``{j: omega_{ij}}`` over the agent's closed neighbourhood ``M_i``."""
        return {
            j: self.topology.weight(agent, j)
            for j in self.topology.neighbors(agent, include_self=True)
        }

    def gossip_average(self, vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """One gossip step: each agent's vector becomes the W-weighted neighbour average.

        Implements ``x_i <- sum_j omega_{ij} x_j`` (eqs. 24–25) for all agents
        simultaneously.
        """
        mixed = self.mix_rows(
            np.stack([np.asarray(v, dtype=self._dtype) for v in vectors], axis=0)
        )
        return [mixed[i] for i in range(self.num_agents)]

    def mix_rows(self, matrix: np.ndarray) -> np.ndarray:
        """The gossip step as one matrix multiply: ``W @ X`` (eqs. 24–25).

        Dispatches to the configured :class:`~repro.topology.mixing.MixingOperator`:
        O(M^2 d) for dense storage, O(nnz d) for CSR — with bit-identical
        results, so sparse topologies can opt into the cheap kernel freely.
        With ``block_rows`` configured the product is streamed over
        ``(block_rows, d)`` output chunks (still bit-identical); in
        ``dtype="mixed"`` mode float32 state is mixed with float64
        accumulation per block.
        """
        matrix = np.asarray(matrix)
        if self._precision == "mixed" and matrix.dtype == np.float32:
            return self.mixing.apply_mixed(matrix, block_rows=self._block_rows)
        if self._block_rows is not None:
            return self.mixing.mix_rows_blocked(matrix, self._block_rows)
        return self.mixing.apply(matrix)

    def record_fleet_exchange(
        self,
        tag: str,
        floats_per_message: int,
        bytes_per_message: Optional[int] = None,
    ) -> None:
        """Account one all-neighbour exchange executed by the vectorized engine.

        Mirrors the traffic the loop backend generates for the same phase:
        one message per directed edge, each carrying ``floats_per_message``
        floats (and ``bytes_per_message`` wire bytes; dense float64 when
        omitted).  Hierarchical topologies
        (:class:`~repro.topology.hierarchical.HierarchicalTopology`) expose
        a ``directed_edge_split`` — their traffic is accounted under
        ``"{tag}.intra"`` (within-cluster channels, cheap local links) and
        ``"{tag}.inter"`` (cross-cluster channels, the expensive hops)
        separately, so bandwidth reports can price the two tiers
        differently.
        """
        split = getattr(self.topology, "directed_edge_split", None)
        if split is not None:
            intra_edges, inter_edges = split
            if intra_edges:
                self.network.record_bulk(
                    f"{tag}.intra", intra_edges, floats_per_message, bytes_per_message
                )
            if inter_edges:
                self.network.record_bulk(
                    f"{tag}.inter", inter_edges, floats_per_message, bytes_per_message
                )
            return
        self.network.record_bulk(
            tag, self.topology.num_directed_edges, floats_per_message, bytes_per_message
        )

    # ------------------------------------------------------------------
    # Compressed gossip
    # ------------------------------------------------------------------
    def gossip_now(self, round_index: int) -> bool:
        """Whether round ``round_index`` is a communication round.

        With ``communication_interval = n``, agents gossip every ``n``-th
        round (rounds 0, n, 2n, ...) and take purely local steps in between.
        The interval position is ``rounds_completed % n``, so it rides
        through checkpoints with the round counter.
        """
        return round_index % self.compression_config.communication_interval == 0

    def gossip_wire_cost(self, num_channels: int = 1) -> Tuple[int, int]:
        """``(values, wire_bytes)`` one gossip message carries under the codec.

        ``num_channels`` counts the logical payload streams in the message
        (1 for a plain model vector, 2 for a ``(momentum, model)`` tuple).
        """
        values, wire_bytes = self.codec.wire_cost(self.dimension)
        return num_channels * values, num_channels * wire_bytes

    def compress_gossip_rows(self, channel: str, matrix: np.ndarray) -> np.ndarray:
        """Decoded fleet matrix for one gossip channel (vectorized engine).

        Active rows go through the codec (updating their error-feedback
        residuals); inactive rows pass through raw, exactly like the loop
        engine where an inactive agent never reaches its broadcast.  With
        the identity codec the input is returned unchanged.
        """
        if self._compression_state is None:
            return matrix
        mask = None if self._all_active else self.active_mask
        if self._block_rows is not None:
            # Chunked codec path: the codec kernels are row-wise, so
            # encoding block by block is bit-identical to the whole-matrix
            # call while bounding the transient working set.
            return self._compression_state.compress_rows_blocked(
                channel, matrix, mask, self._block_rows
            )
        return self._compression_state.compress_rows(channel, matrix, mask)

    def gossip_broadcast(self, agent: int, tag: str, value):
        """Broadcast one agent's gossip payload and return what consumers mix.

        The loop-engine counterpart of :meth:`compress_gossip_rows` plus
        :meth:`record_fleet_exchange`: the payload (an array, or a tuple of
        arrays compressed channel-by-channel as ``"{tag}.{index}"``) is
        encoded once, sent to every neighbour at its compressed wire size,
        and the *decoded* value is returned — the gossip semantics are
        ``x_i <- sum_j w_ij C(x_j)``, with every consumer (the agent itself
        included) mixing the reconstructed value, which is what makes the
        vectorized engine's ``W @ decoded`` equivalent.  With the identity
        codec the original ``value`` comes back and the wire carries plain
        copies, bit-identical to the historical path.  Inactive agents
        transmit nothing and get their raw ``value`` back.
        """
        if not self.is_active(agent):
            return value
        neighbors = self.topology.neighbors(agent, include_self=False)
        if self._compression_state is None:
            if isinstance(value, tuple):
                payload = tuple(np.asarray(part).copy() for part in value)
            else:
                payload = value.copy()
            self.network.broadcast(agent, neighbors, tag, payload)
            return value
        if isinstance(value, tuple):
            decoded = tuple(
                self._compression_state.compress_row(f"{tag}.{index}", agent, part)
                for index, part in enumerate(value)
            )
            num_channels = len(value)
        else:
            decoded = self._compression_state.compress_row(tag, agent, value)
            num_channels = 1
        values, wire_bytes = self.gossip_wire_cost(num_channels)
        self.network.broadcast(
            agent,
            neighbors,
            tag,
            CompressedPayload(
                values=decoded,
                num_values=values,
                wire_bytes=wire_bytes,
                codec=self.codec.name,
            ),
        )
        return decoded

    def gossip_receive(self, agent: int, tag: str) -> Dict[int, object]:
        """Drain one agent's gossip mailbox, unwrapping compressed payloads."""
        received = self.network.receive_by_sender(agent, tag)
        if self._compression_state is None:
            return received
        return {
            sender: (
                payload.values
                if isinstance(payload, CompressedPayload)
                else payload
            )
            for sender, payload in received.items()
        }

    def draw_batches(self) -> List[Optional[Batch]]:
        """One fresh mini-batch per *active* agent for the current round.

        Inactive agents (churned out or straggling) get ``None`` and their
        sampler streams are not consumed — identically under both engines,
        so loop/vectorized trajectory equivalence extends to dynamic
        schedules.
        """
        return [
            self.samplers[i].next_batch() if self.active_mask[i] else None
            for i in range(self.num_agents)
        ]

    # ------------------------------------------------------------------
    # State accessors and evaluation
    # ------------------------------------------------------------------
    def agent_parameters(self) -> List[np.ndarray]:
        """Copies of every agent's current parameter vector."""
        return [row.copy() for row in self.state]

    def average_parameters(self) -> np.ndarray:
        """The network-average model ``x_bar`` used in the convergence analysis."""
        return self.state.mean(axis=0)

    def consensus(self) -> float:
        """Average squared distance of agent models from their mean (Lemma 6 quantity)."""
        return consensus_distance(self.state)

    def average_train_loss(self, max_samples_per_agent: int = 256) -> float:
        """Average of each agent's loss on (a sample of) its own local dataset.

        This is the quantity plotted in Figs. 1–6 of the paper ("average
        training loss").

        The per-agent evaluation subsample is drawn from a dedicated
        seed-derived RNG per agent (independent of the training streams), so
        the evaluated samples are identical under every backend and
        evaluation path.  When the model supports stacked evaluation the
        per-agent losses are computed with whole-fleet forward passes
        (grouped by shard shape, like :meth:`fleet_gradients`) instead of
        one Python-level ``evaluate_loss`` call per agent.
        """
        shards: List[Dataset] = []
        for agent in range(self.num_agents):
            shard = self.shards[agent]
            if len(shard) > max_samples_per_agent:
                rng = np.random.default_rng(
                    (self.config.seed * 1_000_003 + agent) % (2**63 - 1)
                )
                shard = shard.sample(max_samples_per_agent, rng)
            shards.append(shard)
        if self._stacked is None:
            losses = [
                self.model.evaluate_loss(
                    shards[agent].inputs, shards[agent].labels, params=self.state[agent]
                )
                for agent in range(self.num_agents)
            ]
            return float(np.mean(losses))
        losses_out = np.empty(self.num_agents, dtype=self._grad_dtype)
        pairs = [(shard.inputs, shard.labels) for shard in shards]
        for agents, inputs, labels in self._stack_groups(pairs):
            losses_out[agents] = self._stacked.losses(self.state[agents], inputs, labels)
        return float(np.mean(losses_out))

    def test_accuracy(self, test_data: Dataset, mode: str = "mean_agent") -> float:
        """Test accuracy of the trained system.

        ``mode="mean_agent"`` averages each agent's own accuracy (the natural
        decentralized metric); ``mode="average_model"`` evaluates the single
        network-average model.
        """
        if mode == "average_model":
            return self.model.accuracy(
                test_data.inputs, test_data.labels, params=self.average_parameters()
            )
        if mode == "mean_agent":
            accuracies = [
                self.model.accuracy(test_data.inputs, test_data.labels, params=row)
                for row in self.state
            ]
            return float(np.mean(accuracies))
        raise ValueError("mode must be 'mean_agent' or 'average_model'")

    def privacy_spent(self) -> Tuple[float, float]:
        """Cumulative (epsilon, delta) recorded by the accountant (advanced composition)."""
        return self.accountant.total()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    #: Bump when the state-dict layout changes so old checkpoints fail with a
    #: clear error instead of silently restoring garbage.
    #: Format 2 added the gossip-compression state (error-feedback residuals
    #: and sparsifier streams) and the network's byte counters.
    STATE_FORMAT = 2

    def state_dict(self, copy: bool = True) -> Dict[str, object]:
        """Everything needed to resume this run **bit-identically**.

        Captures the fleet matrices (parameters, momentum), the position of
        every per-agent random stream (batch samplers, DP noise mechanisms,
        algorithm-level generators), the privacy accountant's events, the
        network's round counter and traffic totals, and the round count —
        which *is* the :class:`~repro.topology.schedule.TopologySchedule`
        position, because schedules are pure functions of ``(seed, round)``
        and recompute any round's graph exactly.  Subclasses contribute
        their own matrices through :meth:`_extra_state`.

        Call only at a round boundary (between :meth:`run_round` calls):
        mid-round mailbox contents are not captured.  By default the
        returned dict owns copies of every array, so later training does not
        mutate it; it is picklable for on-disk checkpoints (see
        :mod:`repro.simulation.checkpoint`).  ``copy=False`` returns *views*
        of the fleet matrices instead — for out-of-core checkpointing, where
        the caller serializes the payload to disk immediately and a second
        in-RAM copy of the fleet would defeat the purpose.
        """
        return {
            "state_format": self.STATE_FORMAT,
            "algorithm": self.name,
            "num_agents": self.num_agents,
            "dimension": self.dimension,
            "rounds_completed": self.rounds_completed,
            "state": self.state.copy() if copy else self.state,
            "momentum_state": self.momentum_state.copy() if copy else self.momentum_state,
            "rng_state": self._rng.bit_generator.state,
            "sampler_states": [sampler.state_dict() for sampler in self.samplers],
            "mechanism_rng_states": [
                mechanism.rng.bit_generator.state for mechanism in self.mechanisms
            ],
            "agent_rng_states": [
                generator.bit_generator.state for generator in self.agent_rngs
            ],
            "accountant_events": self.accountant.state_dict(),
            "network": self.network.state_dict(),
            "pending_events": [
                (event.round, event.kind, dict(event.detail))
                for event in self.pending_events
            ],
            "compression": (
                None
                if self._compression_state is None
                else self._compression_state.state_dict()
            ),
            "extra": self._extra_state(copy=copy),
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Restore a state captured by :meth:`state_dict`.

        The algorithm must have been constructed identically to the one that
        produced the payload (same model, topology/schedule, shards and
        config — in the experiment layer, the same spec): this method
        restores *state*, not *structure*, and validates the identity checks
        it can (algorithm name, fleet shape, stream counts).  After the call
        the next :meth:`run_round` continues the interrupted trajectory bit
        for bit.
        """
        fmt = payload.get("state_format")
        if fmt != self.STATE_FORMAT:
            raise ValueError(
                f"checkpoint state format {fmt!r} does not match this code's "
                f"format {self.STATE_FORMAT}"
            )
        if payload["algorithm"] != self.name:
            raise ValueError(
                f"checkpoint was written by algorithm {payload['algorithm']!r}, "
                f"cannot restore into {self.name!r}"
            )
        if (payload["num_agents"], payload["dimension"]) != (
            self.num_agents,
            self.dimension,
        ):
            raise ValueError(
                f"checkpoint fleet shape ({payload['num_agents']}, "
                f"{payload['dimension']}) does not match this algorithm's "
                f"({self.num_agents}, {self.dimension})"
            )
        for key, expected in (
            ("sampler_states", len(self.samplers)),
            ("mechanism_rng_states", len(self.mechanisms)),
            ("agent_rng_states", len(self.agent_rngs)),
        ):
            if len(payload[key]) != expected:
                raise ValueError(
                    f"checkpoint has {len(payload[key])} {key}, expected {expected}"
                )
        if self._pinned:
            # Pinned storage: stream the payload matrices straight into the
            # memmap backings (the setters cast block by block) instead of
            # materialising a second in-RAM fleet copy first.  Checkpoint
            # sidecar arrays load as read-only memmaps, so the restore is
            # disk-to-disk with only block-sized transients.
            self.state = np.asarray(payload["state"])
            self.momentum_state = np.asarray(payload["momentum_state"])
        else:
            self.state = self._as_state_matrix(payload["state"])
            self.momentum_state = self._as_state_matrix(payload["momentum_state"])
        self._rng.bit_generator.state = payload["rng_state"]
        for sampler, sampler_state in zip(self.samplers, payload["sampler_states"]):
            sampler.load_state_dict(sampler_state)
        for mechanism, rng_state in zip(
            self.mechanisms, payload["mechanism_rng_states"]
        ):
            mechanism.rng.bit_generator.state = rng_state
        for generator, rng_state in zip(self.agent_rngs, payload["agent_rng_states"]):
            generator.bit_generator.state = rng_state
        self.accountant.load_state_dict(payload["accountant_events"])
        self.network.load_state_dict(payload["network"])
        self.pending_events = [
            TopologyEvent(round=int(r), kind=str(kind), detail=dict(detail))
            for r, kind, detail in payload["pending_events"]
        ]
        compression = payload.get("compression")
        if self._compression_state is None:
            if compression is not None:
                raise ValueError(
                    f"checkpoint carries compression state (codec "
                    f"{compression.get('codec')!r}) but this algorithm was "
                    f"built without a lossy codec"
                )
        else:
            if compression is None:
                raise ValueError(
                    f"checkpoint has no compression state but this algorithm "
                    f"compresses gossip with codec {self.codec.name!r}"
                )
            self._compression_state.load_state_dict(compression)
        self.rounds_completed = int(payload["rounds_completed"])
        # Per-round participation state is refreshed by _begin_round before
        # the next round touches it; reset to the static default meanwhile.
        self.active_mask = np.ones(self.num_agents, dtype=bool)
        self.active_agents = list(range(self.num_agents))
        self._all_active = True
        self._load_extra_state(payload.get("extra", {}))

    def _extra_state(self, copy: bool = True) -> Dict[str, object]:
        """Subclass hook: algorithm-specific resumable state.

        The base class covers parameters, momentum and every stream; an
        algorithm with additional per-agent matrices (e.g. DP-NET-FLEET's
        gradient-tracking variables) returns them here — as copies by
        default, as views with ``copy=False`` (out-of-core checkpointing,
        mirroring :meth:`state_dict`'s contract).
        """
        return {}

    def _load_extra_state(self, payload: Dict[str, object]) -> None:
        """Subclass hook: restore what :meth:`_extra_state` captured."""
        if payload:
            raise ValueError(
                f"checkpoint carries extra state {sorted(payload)} but "
                f"{type(self).__name__} does not define _load_extra_state()"
            )
