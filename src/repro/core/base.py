"""Shared infrastructure for decentralized learning algorithms.

:class:`DecentralizedAlgorithm` owns everything PDSL and the baselines have in
common: one flat parameter vector per agent (all initialised to the same
point ``x^[0]``), per-agent mini-batch samplers and DP mechanisms, the
message-passing :class:`~repro.simulation.network.Network`, gossip averaging
with the topology's mixing matrix, and the evaluation helpers used by the
experiment runner (average training loss, test accuracy, consensus distance).

Subclasses implement :meth:`step`, which executes one communication round for
all agents.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import AlgorithmConfig
from repro.data.dataset import Dataset
from repro.data.loaders import BatchSampler
from repro.nn.model import Model
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanisms import GaussianMechanism, clip_by_l2_norm
from repro.simulation.metrics import consensus_distance
from repro.simulation.network import Network
from repro.topology.graphs import Topology

__all__ = ["DecentralizedAlgorithm"]


class DecentralizedAlgorithm(ABC):
    """Base class for synchronous round-based decentralized learning algorithms.

    Parameters
    ----------
    model:
        A template model; its initial parameters become every agent's
        ``x^[0]`` and its forward/backward passes are reused for all gradient
        evaluations (agents are distinguished purely by their parameter
        vectors, exactly as the paper treats them as points in ``R^d``).
    topology:
        Communication graph with doubly stochastic mixing matrix ``W``.
    shards:
        One local dataset per agent (e.g. from
        :func:`repro.data.partition.partition_dirichlet`).
    config:
        Optimisation / DP hyper-parameters.
    validation:
        Optional shared validation set ``Q``; required by PDSL, unused by the
        baselines.
    """

    name: str = "decentralized"

    def __init__(
        self,
        model: Model,
        topology: Topology,
        shards: Sequence[Dataset],
        config: AlgorithmConfig,
        validation: Optional[Dataset] = None,
    ) -> None:
        if len(shards) != topology.num_agents:
            raise ValueError(
                f"got {len(shards)} data shards for {topology.num_agents} agents"
            )
        for agent, shard in enumerate(shards):
            if len(shard) == 0:
                raise ValueError(f"agent {agent} received an empty local dataset")
        self.model = model
        self.topology = topology
        self.shards = list(shards)
        self.config = config
        self.validation = validation
        self.num_agents = topology.num_agents
        self.dimension = model.num_params
        self.sigma = config.resolve_sigma()

        root_rng = np.random.default_rng(config.seed)
        child_seeds = root_rng.integers(0, 2**63 - 1, size=3 * self.num_agents + 2)
        self._rng = np.random.default_rng(int(child_seeds[-1]))
        self.network = Network(self.num_agents)
        self.accountant = PrivacyAccountant()

        initial = model.get_flat_params()
        self.params: List[np.ndarray] = [initial.copy() for _ in range(self.num_agents)]
        self.momenta: List[np.ndarray] = [
            np.zeros_like(initial) for _ in range(self.num_agents)
        ]
        self.samplers: List[BatchSampler] = [
            BatchSampler(
                shards[i], config.batch_size, np.random.default_rng(int(child_seeds[i]))
            )
            for i in range(self.num_agents)
        ]
        self.mechanisms: List[GaussianMechanism] = [
            GaussianMechanism(
                sigma=self.sigma,
                clip_threshold=config.clip_threshold,
                rng=np.random.default_rng(int(child_seeds[self.num_agents + i])),
            )
            for i in range(self.num_agents)
        ]
        # A dedicated per-agent generator for algorithm-level randomness
        # (e.g. Shapley permutations) so it does not perturb the DP noise stream.
        self.agent_rngs: List[np.random.Generator] = [
            np.random.default_rng(int(child_seeds[2 * self.num_agents + i]))
            for i in range(self.num_agents)
        ]
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    # Core abstract interface
    # ------------------------------------------------------------------
    @abstractmethod
    def step(self, round_index: int) -> None:
        """Execute one synchronous communication round for every agent."""

    def run_round(self) -> None:
        """Advance the network round counter and run :meth:`step` once."""
        self.network.advance_round()
        self.step(self.rounds_completed)
        if self.config.epsilon is not None and self.sigma > 0:
            self.accountant.record(self.config.epsilon, self.config.delta)
        self.rounds_completed += 1

    # ------------------------------------------------------------------
    # Gradient and gossip helpers
    # ------------------------------------------------------------------
    def local_gradient(
        self,
        agent: int,
        params: np.ndarray,
        batch: Tuple[np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """Stochastic gradient of the loss at ``params`` on ``agent``'s batch.

        When ``params`` belongs to a neighbour this is exactly the
        cross-gradient ``g_{i,j}`` of eq. 12: agent ``i``'s data, agent
        ``j``'s model.
        """
        inputs, labels = batch
        _, grad = self.model.loss_and_gradient(inputs, labels, params=params)
        return grad

    def privatize(self, agent: int, gradient: np.ndarray) -> np.ndarray:
        """Clip to ``C`` and add ``N(0, sigma^2 I)`` noise (Algorithm 1 lines 3–4, 9–10)."""
        return self.mechanisms[agent].privatize(gradient)

    def clip(self, gradient: np.ndarray) -> np.ndarray:
        """Clip a gradient to the configured threshold without adding noise."""
        return clip_by_l2_norm(gradient, self.config.clip_threshold)

    def neighbor_weights(self, agent: int) -> Dict[int, float]:
        """``{j: omega_{ij}}`` over the agent's closed neighbourhood ``M_i``."""
        return {
            j: self.topology.weight(agent, j)
            for j in self.topology.neighbors(agent, include_self=True)
        }

    def gossip_average(self, vectors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """One gossip step: each agent's vector becomes the W-weighted neighbour average.

        Implements ``x_i <- sum_j omega_{ij} x_j`` (eqs. 24–25) for all agents
        simultaneously.
        """
        stacked = np.stack([np.asarray(v, dtype=np.float64) for v in vectors], axis=0)
        mixed = self.topology.mixing_matrix @ stacked
        return [mixed[i] for i in range(self.num_agents)]

    def draw_batches(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One fresh mini-batch per agent for the current round."""
        return [self.samplers[i].next_batch() for i in range(self.num_agents)]

    # ------------------------------------------------------------------
    # State accessors and evaluation
    # ------------------------------------------------------------------
    def agent_parameters(self) -> List[np.ndarray]:
        """Copies of every agent's current parameter vector."""
        return [p.copy() for p in self.params]

    def average_parameters(self) -> np.ndarray:
        """The network-average model ``x_bar`` used in the convergence analysis."""
        return np.mean(np.stack(self.params, axis=0), axis=0)

    def consensus(self) -> float:
        """Average squared distance of agent models from their mean (Lemma 6 quantity)."""
        return consensus_distance(self.params)

    def average_train_loss(self, max_samples_per_agent: int = 256) -> float:
        """Average of each agent's loss on (a sample of) its own local dataset.

        This is the quantity plotted in Figs. 1–6 of the paper ("average
        training loss").
        """
        losses = []
        for agent in range(self.num_agents):
            shard = self.shards[agent]
            if len(shard) > max_samples_per_agent:
                rng = np.random.default_rng(
                    (self.config.seed * 1_000_003 + agent) % (2**63 - 1)
                )
                shard = shard.sample(max_samples_per_agent, rng)
            losses.append(
                self.model.evaluate_loss(shard.inputs, shard.labels, params=self.params[agent])
            )
        return float(np.mean(losses))

    def test_accuracy(self, test_data: Dataset, mode: str = "mean_agent") -> float:
        """Test accuracy of the trained system.

        ``mode="mean_agent"`` averages each agent's own accuracy (the natural
        decentralized metric); ``mode="average_model"`` evaluates the single
        network-average model.
        """
        if mode == "average_model":
            return self.model.accuracy(
                test_data.inputs, test_data.labels, params=self.average_parameters()
            )
        if mode == "mean_agent":
            accuracies = [
                self.model.accuracy(test_data.inputs, test_data.labels, params=p)
                for p in self.params
            ]
            return float(np.mean(accuracies))
        raise ValueError("mode must be 'mean_agent' or 'average_model'")

    def privacy_spent(self) -> Tuple[float, float]:
        """Cumulative (epsilon, delta) recorded by the accountant (advanced composition)."""
        return self.accountant.total()
