"""The Shapley characteristic function used by PDSL (eqs. 15–17).

After agent ``i`` receives the perturbed cross-gradients ``g_hat_{j,i}`` from
its neighbours, it forms one candidate model update per neighbour,

    ``x_{i,j} = x_i^{t-1} - gamma * g_hat_{j,i}``            (eq. 15)

and scores a coalition ``M' ⊆ M_i`` by the validation performance of the
*average* of the corresponding candidate models,

    ``v(M'; Q) = (1/|Q|) * sum_{xi in Q} J(xi; mean_{j in M'} x_{i,j})``  (eqs. 16–17)

where ``J`` is per-sample accuracy.  :func:`make_update_characteristic` builds
this callable for one agent and one round; it is then handed to the Shapley
machinery in :mod:`repro.game`.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.model import Model

__all__ = ["validation_characteristic", "make_update_characteristic"]


def validation_characteristic(
    model: Model,
    params: np.ndarray,
    validation_inputs: np.ndarray,
    validation_labels: np.ndarray,
    metric: str = "accuracy",
) -> float:
    """Score one parameter vector on the validation data.

    ``metric="accuracy"`` is the paper's choice (eq. 16); ``metric="neg_loss"``
    returns the negative cross-entropy loss, a smoother signal used by an
    ablation (it distinguishes candidate models even when they all predict
    the same labels).
    """
    if metric == "accuracy":
        return model.accuracy(validation_inputs, validation_labels, params=params)
    if metric == "neg_loss":
        return -model.evaluate_loss(validation_inputs, validation_labels, params=params)
    raise ValueError("metric must be 'accuracy' or 'neg_loss'")


def make_update_characteristic(
    model: Model,
    candidate_updates: Mapping[Hashable, np.ndarray],
    validation: Dataset,
    metric: str = "accuracy",
    validation_batch_size: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Callable[[Tuple[Hashable, ...]], float]:
    """Build the characteristic function ``v(M'; Q)`` for one agent and round.

    Parameters
    ----------
    candidate_updates:
        ``{j: x_{i,j}}`` — the per-neighbour candidate models of eq. 15.
    validation:
        The shared validation dataset ``Q``.
    validation_batch_size:
        If given, a single uniform subsample of ``Q`` of this size is drawn
        once (so all coalition evaluations see the same data, keeping the
        game well defined) and used for every evaluation.
    """
    if len(candidate_updates) == 0:
        raise ValueError("candidate_updates must contain at least one neighbour")
    if len(validation) == 0:
        raise ValueError("validation dataset must be non-empty")
    if validation_batch_size is not None and validation_batch_size < len(validation):
        if rng is None:
            raise ValueError("rng is required when subsampling the validation set")
        subsample = validation.sample(validation_batch_size, rng)
        inputs, labels = subsample.inputs, subsample.labels
    else:
        inputs, labels = validation.inputs, validation.labels

    updates: Dict[Hashable, np.ndarray] = {
        k: np.asarray(v, dtype=np.float64) for k, v in candidate_updates.items()
    }

    def characteristic(coalition: Tuple[Hashable, ...]) -> float:
        members = [m for m in coalition if m in updates]
        if not members:
            return 0.0
        averaged = np.mean(np.stack([updates[m] for m in members], axis=0), axis=0)
        return validation_characteristic(model, averaged, inputs, labels, metric=metric)

    return characteristic
