"""Configuration dataclasses for PDSL and the baseline algorithms.

All algorithms share :class:`AlgorithmConfig` (optimisation, clipping and DP
settings); PDSL and some baselines add their own knobs in subclasses.  The DP
noise scale can be given directly (``sigma``) or derived from a privacy
budget (``epsilon``, ``delta``) via the Gaussian-mechanism bound applied to
the mini-batch gradient query (sensitivity ``2C / batch_size`` for a batch of
per-round samples, see :meth:`AlgorithmConfig.resolve_sigma`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.compression.config import CompressionConfig
from repro.privacy.calibration import gaussian_sigma

__all__ = [
    "AlgorithmConfig",
    "PDSLConfig",
    "MuffliatoConfig",
    "CGAConfig",
    "NetFleetConfig",
]


@dataclass
class AlgorithmConfig:
    """Hyper-parameters shared by every decentralized algorithm in this library.

    Attributes
    ----------
    learning_rate:
        Step size ``gamma``.
    momentum:
        Momentum coefficient ``alpha`` (set to 0 for plain SGD baselines).
    clip_threshold:
        Gradient L2 clipping threshold ``C``.
    sigma:
        Gaussian noise standard deviation.  When ``None`` it is derived from
        ``epsilon``/``delta`` in :meth:`resolve_sigma`; when 0 the algorithm
        runs without privacy noise (useful for non-private references).
    epsilon, delta:
        Per-round privacy budget used to calibrate ``sigma`` when it is not
        given explicitly.
    batch_size:
        Mini-batch size drawn by each agent per round.
    seed:
        Base seed; per-agent randomness is derived from it deterministically.
    backend:
        Execution engine: ``"vectorized"`` (default) keeps the fleet's
        parameters in one ``(num_agents, dimension)`` matrix and performs the
        gossip step as a single ``W @ X`` multiply with batched gradient and
        clip+noise paths; ``"loop"`` steps agents one at a time through the
        message-passing :class:`~repro.simulation.network.Network`.  Both
        backends consume identical per-agent random streams, so a fixed seed
        yields the same trajectory (up to floating-point associativity)
        under either engine.  Algorithms automatically fall back to the loop
        backend when the network injects message drops (which only exist as
        per-message events) or when the model contains stochastic layers
        such as dropout (whose shared forward-pass RNG would be consumed in
        a different order by the re-grouped vectorized evaluations).
    mixing_backend:
        Storage format the gossip step applies ``W`` in: ``"auto"`` (the
        default) picks dense or CSR by fleet size and edge density
        (:func:`repro.topology.mixing.preferred_mixing_format`);
        ``"dense"`` forces the O(M^2 d) dense kernel; ``"sparse"`` forces
        the O(nnz d) CSR kernel.  The two kernels accumulate in the same
        order and produce bit-identical results, so this is purely a
        performance knob.
    compression:
        Gossip compression settings
        (:class:`~repro.compression.config.CompressionConfig`): codec,
        sparsity ``k``, ``communication_interval``, peer selection and
        error feedback.  ``None`` (the default) and the identity config are
        bit-identical to the historical uncompressed path.  A plain mapping
        (as carried by :class:`~repro.experiments.specs.ExperimentSpec`) is
        coerced to a ``CompressionConfig`` here.
    dtype:
        Element type of the fleet state matrices.  ``"float64"`` (the
        default) is the historical bit-exact path; ``"float32"`` halves the
        state memory and runs the gossip kernels in single precision;
        ``"mixed"`` keeps float32 state but accumulates the gossip product
        in float64 (:meth:`repro.topology.mixing.MixingOperator.apply_mixed`)
        so repeated mixing does not compound single-precision rounding.
        Gradient evaluation stays float64 in every mode (the model kernels
        are double precision); updates are rounded into the state dtype on
        assignment.  The precision tests pin the float32/mixed trajectory
        divergence from float64.
    block_rows:
        Row-block size for the streaming (sharded) kernels: gossip is
        applied over ``(block_rows, d)`` output chunks
        (:meth:`~repro.topology.mixing.MixingOperator.mix_rows_blocked`,
        bit-identical to the one-shot product) and clip+noise/codec passes
        stream over the same blocks.  On the vectorized backend a non-None
        ``block_rows`` also switches the *whole* round (batch drawing,
        gradient evaluation, momentum/state updates) onto the streamed
        block pipeline, which never materialises more than a handful of
        ``(block_rows, d)`` scratch chunks at a time.  ``None`` (the
        default) keeps the historical one-shot kernels.
    block_workers:
        Number of threads the :class:`~repro.sharding.RoundScheduler` uses
        to execute independent row blocks of a streamed round stage.  The
        default 1 runs blocks serially (bit-identical to the one-shot
        path); values > 1 dispatch blocks onto a ``ThreadPoolExecutor``
        and remain numerically identical because every block owns disjoint
        rows and pre-split per-agent RNG streams.  Ignored unless
        ``block_rows`` enables the streamed round.
    storage:
        Backing store of the fleet state matrices: ``"ram"`` (default)
        keeps ordinary arrays; ``"memmap"`` backs state/momentum (and
        algorithm-specific fleet matrices) with
        :class:`~repro.sharding.FleetState` memory-mapped ``.npy`` files,
        so the OS pages row blocks in and out and a full round at
        N=10^6 runs under a bounded RSS.
    """

    learning_rate: float = 0.01
    momentum: float = 0.0
    clip_threshold: float = 1.0
    sigma: Optional[float] = None
    epsilon: Optional[float] = None
    delta: float = 1e-5
    batch_size: int = 32
    seed: int = 0
    backend: str = "vectorized"
    mixing_backend: str = "auto"
    compression: Optional[CompressionConfig] = None
    dtype: str = "float64"
    block_rows: Optional[int] = None
    block_workers: int = 1
    storage: str = "ram"

    def __post_init__(self) -> None:
        if self.compression is not None and not isinstance(
            self.compression, CompressionConfig
        ):
            if not isinstance(self.compression, Mapping):
                raise ValueError(
                    "compression must be a CompressionConfig or a mapping of "
                    f"its fields, got {type(self.compression).__name__}"
                )
            self.compression = CompressionConfig.from_mapping(self.compression)
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if self.clip_threshold <= 0:
            raise ValueError("clip_threshold must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.sigma is not None and self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.epsilon is not None and self.epsilon <= 0:
            raise ValueError("epsilon must be positive when provided")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must lie in (0, 1)")
        if self.sigma is None and self.epsilon is None:
            raise ValueError("either sigma or epsilon must be provided")
        if self.backend not in ("loop", "vectorized"):
            raise ValueError("backend must be 'loop' or 'vectorized'")
        if self.mixing_backend not in ("auto", "dense", "sparse"):
            raise ValueError("mixing_backend must be 'auto', 'dense' or 'sparse'")
        if self.dtype not in ("float64", "float32", "mixed"):
            raise ValueError("dtype must be 'float64', 'float32' or 'mixed'")
        if self.block_rows is not None and self.block_rows < 1:
            raise ValueError("block_rows must be a positive integer when provided")
        if self.block_workers < 1:
            raise ValueError("block_workers must be a positive integer")
        if self.storage not in ("ram", "memmap"):
            raise ValueError("storage must be 'ram' or 'memmap'")

    @property
    def sensitivity(self) -> float:
        """L2 sensitivity of the per-round clipped mini-batch gradient query.

        Each agent clips its averaged mini-batch gradient to ``C``; replacing
        one of the ``batch_size`` samples changes the average by at most
        ``2C / batch_size``.
        """
        return 2.0 * self.clip_threshold / float(self.batch_size)

    def resolve_sigma(self) -> float:
        """The noise scale to use: explicit ``sigma`` or calibrated from ``epsilon``."""
        if self.sigma is not None:
            return float(self.sigma)
        assert self.epsilon is not None  # enforced in __post_init__
        return gaussian_sigma(self.epsilon, self.delta, self.sensitivity)

    def with_updates(self, **kwargs) -> "AlgorithmConfig":
        """A copy of this config with some fields replaced (dataclass ``replace``)."""
        return replace(self, **kwargs)


@dataclass
class PDSLConfig(AlgorithmConfig):
    """Configuration specific to the PDSL algorithm (Algorithm 1).

    Attributes
    ----------
    shapley_permutations:
        Number of Monte-Carlo permutations ``R`` in Algorithm 2.  Set to 0 to
        use the exact Shapley value (eq. 18), which is only practical for
        small neighbourhoods.
    characteristic_metric:
        ``"accuracy"`` (eq. 16 as written) or ``"neg_loss"`` (a smoother
        alternative used by an ablation).
    validation_batch_size:
        Number of validation examples sampled per characteristic-function
        evaluation; ``None`` uses the whole validation set ``Q``.
    """

    momentum: float = 0.5
    shapley_permutations: int = 4
    characteristic_metric: str = "accuracy"
    validation_batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shapley_permutations < 0:
            raise ValueError("shapley_permutations must be non-negative")
        if self.characteristic_metric not in ("accuracy", "neg_loss"):
            raise ValueError("characteristic_metric must be 'accuracy' or 'neg_loss'")
        if self.validation_batch_size is not None and self.validation_batch_size <= 0:
            raise ValueError("validation_batch_size must be positive when provided")


@dataclass
class MuffliatoConfig(AlgorithmConfig):
    """MUFFLIATO baseline: local noise injection followed by multiple gossip steps."""

    gossip_steps: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gossip_steps <= 0:
            raise ValueError("gossip_steps must be positive")


@dataclass
class CGAConfig(AlgorithmConfig):
    """DP-CGA baseline: cross-gradient aggregation with DP perturbation."""

    momentum: float = 0.5


@dataclass
class NetFleetConfig(AlgorithmConfig):
    """DP-NET-FLEET baseline: recursive gradient correction with local steps."""

    local_steps: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.local_steps <= 0:
            raise ValueError("local_steps must be positive")
