"""PDSL — Privacy-preserved Decentralized Stochastic Learning (Algorithm 1).

One round proceeds in four message-passing phases, matching the pseudo-code
line by line:

1. **Local gradient + model broadcast** (lines 2–5): each agent computes its
   local stochastic gradient on a fresh mini-batch, clips it, perturbs it with
   Gaussian noise, and broadcasts its current model to its neighbours.
2. **Cross-gradients** (lines 6–12): on receiving a neighbour's model, the
   agent evaluates the gradient of that model on its *own* mini-batch (the
   cross-gradient, eq. 12), clips, perturbs, and sends it back to the model's
   owner.
3. **Shapley-weighted aggregation + momentum update** (lines 13–21): the agent
   forms one candidate update per neighbour from the returned perturbed
   gradients (eq. 15), scores coalitions of candidates on the shared
   validation set (eq. 16–17), computes (Monte-Carlo) Shapley values
   (Algorithm 2), normalises them (eq. 19), builds aggregation weights
   (eq. 20), takes the weighted gradient average (eq. 21) and performs the
   momentum update (eqs. 22–23).  It then broadcasts its provisional momentum
   and model.
4. **Gossip averaging** (lines 22–24): momentum buffers and models are mixed
   with the doubly stochastic matrix ``W`` (eqs. 24–25).

Both execution backends run the same four phases.  The vectorized engine
computes all local gradients and all per-edge cross-gradients with stacked
forward/backward passes and performs phase 4 as two ``W @ X`` multiplies;
phase 3's Shapley games remain per-agent (they are inherently sequential
coalition evaluations) but consume exactly the same per-agent random streams
as the loop backend, so both backends follow the same trajectory for a fixed
seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import DecentralizedAlgorithm
from repro.core.characteristic import make_update_characteristic
from repro.core.config import PDSLConfig
from repro.data.dataset import Dataset
from repro.game.cooperative import CooperativeGame
from repro.game.shapley import (
    exact_shapley,
    monte_carlo_shapley,
    normalize_shapley,
    shapley_aggregation_weights,
)
from repro.nn.model import Model
from repro.topology.graphs import Topology

__all__ = ["PDSL"]


class PDSL(DecentralizedAlgorithm):
    """The paper's algorithm: Shapley-weighted, differentially private decentralized SGD."""

    name = "PDSL"
    # Gossip carries a (momentum, model) pair per message.
    num_gossip_channels = 2

    def __init__(
        self,
        model: Model,
        topology: Topology,
        shards: Sequence[Dataset],
        config: PDSLConfig,
        validation: Dataset,
    ) -> None:
        if validation is None or len(validation) == 0:
            raise ValueError("PDSL requires a non-empty shared validation dataset Q")
        if not isinstance(config, PDSLConfig):
            raise TypeError("PDSL requires a PDSLConfig")
        super().__init__(model, topology, shards, config, validation=validation)
        self.config: PDSLConfig = config
        # Diagnostics: the most recent Shapley values and aggregation weights
        # per agent, exposed for tests and the ablation experiments.
        self.last_shapley: List[Dict[int, float]] = [{} for _ in range(self.num_agents)]
        self.last_weights: List[Dict[int, float]] = [{} for _ in range(self.num_agents)]

    def _extra_state(self, copy: bool = True) -> Dict[str, object]:
        # The Shapley diagnostics do not influence the trajectory (the
        # permutation streams live in agent_rngs, captured by the base
        # class), but a resumed run should report the same "most recent
        # weights" an uninterrupted one would.  The per-agent dicts are
        # small, so ``copy`` has no out-of-core significance here.
        return {
            "last_shapley": [dict(entry) for entry in self.last_shapley],
            "last_weights": [dict(entry) for entry in self.last_weights],
        }

    def _load_extra_state(self, payload: Dict[str, object]) -> None:
        self.last_shapley = [
            {int(k): float(v) for k, v in entry.items()}
            for entry in payload["last_shapley"]
        ]
        self.last_weights = [
            {int(k): float(v) for k, v in entry.items()}
            for entry in payload["last_weights"]
        ]

    # ------------------------------------------------------------------
    # Shapley helpers
    # ------------------------------------------------------------------
    def _shapley_values(
        self, agent: int, candidate_updates: Dict[int, np.ndarray]
    ) -> Dict[int, float]:
        """Shapley value of every neighbour's candidate update (Algorithm 2 or eq. 18)."""
        characteristic = make_update_characteristic(
            model=self.model,
            candidate_updates=candidate_updates,
            validation=self.validation,
            metric=self.config.characteristic_metric,
            validation_batch_size=self.config.validation_batch_size,
            rng=self.agent_rngs[agent],
        )
        game = CooperativeGame(list(candidate_updates.keys()), characteristic)
        if self.config.shapley_permutations == 0:
            return exact_shapley(game)
        return monte_carlo_shapley(
            game, self.config.shapley_permutations, self.agent_rngs[agent]
        )

    def _aggregate_returned(
        self, agent: int, returned: Dict[int, np.ndarray]
    ) -> np.ndarray:
        """Phase-3 body for one agent: Shapley weights over the returned
        perturbed gradients (eqs. 15–20) and their weighted average (eq. 21).

        ``returned`` maps contributor id to perturbed gradient and must be
        ordered neighbours-ascending-then-self: the Shapley game's player
        order (and hence the Monte-Carlo permutation stream) follows dict
        order, so both backends build it identically.
        """
        gamma = self.config.learning_rate
        # Candidate updates x_{i,j} = x_i - gamma * g_hat_{j,i} (eq. 15).
        candidates = {
            j: self.state[agent] - gamma * grad for j, grad in returned.items()
        }
        shapley = self._shapley_values(agent, candidates)
        normalized = normalize_shapley(shapley)
        mixing = {j: self.topology.weight(agent, j) for j in returned}
        weights = shapley_aggregation_weights(normalized, mixing)
        self.last_shapley[agent] = {int(k): float(v) for k, v in shapley.items()}
        self.last_weights[agent] = {int(k): float(v) for k, v in weights.items()}

        # Weighted perturbed-gradient average (eq. 21).
        aggregated = np.zeros(self.dimension, dtype=np.float64)
        for j, grad in returned.items():
            aggregated += weights[j] * grad
        return aggregated

    # ------------------------------------------------------------------
    # One round of Algorithm 1 — loop backend
    # ------------------------------------------------------------------
    def _step_loop(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        alpha = self.config.momentum
        batches = self.draw_batches()

        # Phase 1 — local gradients (lines 2-4) and model broadcast (line 5).
        # Agents inactive this round (churned out or straggling) sit every
        # phase out: they draw no batch or noise, broadcast nothing, and the
        # round topology's identity mixing row freezes their state.
        own_perturbed: List[Optional[np.ndarray]] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                own_perturbed.append(None)
                continue
            local_grad = self.local_gradient(agent, self.params[agent], batches[agent])
            own_perturbed.append(self.privatize(agent, local_grad))
            neighbors = self.topology.neighbors(agent, include_self=False)
            self.network.broadcast(agent, neighbors, "model", self.params[agent].copy())

        # Phase 2 — cross-gradients on neighbours' models (lines 6-12).
        for agent in range(self.num_agents):
            received_models = self.network.receive_by_sender(agent, "model")
            for neighbor, neighbor_params in received_models.items():
                cross_grad = self.local_gradient(agent, neighbor_params, batches[agent])
                perturbed = self.privatize(agent, cross_grad)
                self.network.send(agent, neighbor, "cross_grad", perturbed)

        # Phase 3 — Shapley-weighted aggregation and momentum update (lines 13-21).
        # The gradient exchanges of phases 1–2 always run at full precision;
        # only the phase-3/4 gossip of (momentum, model) tuples goes through
        # the compression codec and the communication interval.
        communicate = self.gossip_now(round_index)
        provisional: List[Tuple[np.ndarray, np.ndarray]] = []
        shared: List[Tuple[np.ndarray, np.ndarray]] = []
        for agent in range(self.num_agents):
            if not self.is_active(agent):
                provisional.append(
                    (self.momenta[agent].copy(), self.params[agent].copy())
                )
                shared.append(provisional[agent])
                continue
            returned = self.network.receive_by_sender(agent, "cross_grad")
            returned[agent] = own_perturbed[agent]
            aggregated = self._aggregate_returned(agent, returned)

            # Momentum-like update (eqs. 22-23).
            momentum_hat = alpha * self.momenta[agent] + aggregated
            params_hat = self.params[agent] - gamma * momentum_hat
            provisional.append((momentum_hat, params_hat))
            if communicate:
                shared.append(
                    self.gossip_broadcast(agent, "mix", (momentum_hat, params_hat))
                )

        if not communicate:
            # Off-interval round: keep the local update, skip the gossip.
            self.momenta = [momentum_hat for momentum_hat, _ in provisional]
            self.params = [params_hat for _, params_hat in provisional]
            return

        # Phase 4 — gossip averaging of momentum and model (lines 22-24).
        new_momenta: List[np.ndarray] = []
        new_params: List[np.ndarray] = []
        for agent in range(self.num_agents):
            received_mix = self.gossip_receive(agent, "mix")
            received_mix[agent] = shared[agent]
            momentum_acc = np.zeros(self.dimension, dtype=np.float64)
            params_acc = np.zeros(self.dimension, dtype=np.float64)
            for j, (momentum_hat, params_hat) in received_mix.items():
                weight = self.topology.weight(agent, j)
                momentum_acc += weight * momentum_hat
                params_acc += weight * params_hat
            new_momenta.append(momentum_acc)
            new_params.append(params_acc)

        self.momenta = new_momenta
        self.params = new_params

    # ------------------------------------------------------------------
    # One round of Algorithm 1 — vectorized backend
    # ------------------------------------------------------------------
    def _step_vectorized(self, round_index: int) -> None:
        gamma = self.config.learning_rate
        alpha = self.config.momentum

        # Phase 1 — all local gradients, privatized in agent order (first
        # noise draw per agent, as in the loop backend).  The streamed
        # pipeline evaluates them block by block into a reusable scratch
        # (bit-identical: every stream is per-agent, every kernel row-wise);
        # the one-shot path uses a single stacked pass.
        if self._streamed:
            batches, own_perturbed = self._streamed_local_perturbed()
        else:
            batches = self.draw_batches()
            own = self.fleet_gradients(self.state, batches)
            own_perturbed = self.privatize_rows(own)
        self.record_fleet_exchange("model", self.dimension)

        # Phase 2 — all cross-gradients in one stacked pass over the directed
        # pairs (evaluator i, model owner j): agent i's batch, agent j's model.
        cross_perturbed, pair_rows = self.fleet_cross_gradients(batches)
        self.record_fleet_exchange("cross_grad", self.dimension)

        # Phase 3 — per-agent Shapley aggregation (inherently sequential
        # coalition evaluations), then one fleet-wide momentum update.
        # Inactive agents run no Shapley game and keep momentum and model
        # frozen for the round.
        aggregated = np.zeros_like(self.state)
        for agent in self.active_agents:
            returned = {
                j: cross_perturbed[pair_rows[(j, agent)]]
                for j in self.topology.neighbors(agent, include_self=False)
            }
            returned[agent] = own_perturbed[agent]
            aggregated[agent] = self._aggregate_returned(agent, returned)

        momentum_hat = self.freeze_inactive_rows(
            alpha * self.momentum_state + aggregated, self.momentum_state
        )
        params_hat = self.freeze_inactive_rows(
            self.state - gamma * momentum_hat, self.state
        )
        if not self.gossip_now(round_index):
            # Off-interval round: keep the local update, skip the gossip.
            self.momentum_state = momentum_hat
            self.state = params_hat
            return
        momentum_shared = self.compress_gossip_rows("mix.0", momentum_hat)
        params_shared = self.compress_gossip_rows("mix.1", params_hat)
        values, wire_bytes = self.gossip_wire_cost(self.num_gossip_channels)
        self.record_fleet_exchange("mix", values, wire_bytes)

        # Phase 4 — gossip averaging as two matrix multiplies.
        self.momentum_state = self.mix_rows(momentum_shared)
        self.state = self.mix_rows(params_shared)
