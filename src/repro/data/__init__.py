"""Data substrate: datasets, synthetic generators, non-IID partitioning.

The paper evaluates on MNIST and CIFAR-10 partitioned across agents with a
Dirichlet prior ``Dir(mu * p)`` over label proportions (Sec. VI-A).  Real
image downloads are unavailable offline, so this package provides
class-structured synthetic datasets with the same shapes and label semantics
(:func:`make_synthetic_mnist`, :func:`make_synthetic_cifar`,
:func:`make_classification_dataset`), the Dirichlet / IID / shard
partitioners, batching utilities and heterogeneity diagnostics.
"""

from repro.data.dataset import Dataset, train_val_test_split
from repro.data.synthetic import (
    make_classification_dataset,
    make_synthetic_cifar,
    make_synthetic_mnist,
)
from repro.data.partition import (
    PartitionResult,
    partition_dirichlet,
    partition_iid,
    partition_by_shards,
    label_distribution,
    heterogeneity_degree,
)
from repro.data.loaders import BatchSampler, batch_iterator

__all__ = [
    "Dataset",
    "train_val_test_split",
    "make_classification_dataset",
    "make_synthetic_mnist",
    "make_synthetic_cifar",
    "PartitionResult",
    "partition_dirichlet",
    "partition_iid",
    "partition_by_shards",
    "label_distribution",
    "heterogeneity_degree",
    "BatchSampler",
    "batch_iterator",
]
