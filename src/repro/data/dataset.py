"""A minimal immutable dataset container used throughout the library."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

__all__ = ["Dataset", "train_val_test_split"]


@dataclass(frozen=True)
class Dataset:
    """A supervised dataset of ``(inputs, labels)``.

    ``inputs`` has shape ``(N, ...)`` and ``labels`` shape ``(N,)`` with
    integer class indices.  Instances are immutable; all "mutating"
    operations return new :class:`Dataset` objects viewing or copying the
    underlying arrays.
    """

    inputs: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        inputs = np.asarray(self.inputs)
        labels = np.asarray(self.labels)
        if inputs.shape[0] != labels.shape[0]:
            raise ValueError(
                f"inputs ({inputs.shape[0]}) and labels ({labels.shape[0]}) "
                "must have the same number of rows"
            )
        if labels.ndim != 1:
            raise ValueError("labels must be a 1-D array of class indices")
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "labels", labels.astype(np.int64))

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_classes(self) -> int:
        """Number of distinct classes, inferred as ``max(label) + 1`` (0 if empty)."""
        if len(self) == 0:
            return 0
        return int(self.labels.max()) + 1

    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Shape of a single example (excluding the batch dimension)."""
        return tuple(self.inputs.shape[1:])

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """Dataset restricted to the given row indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.inputs[indices], self.labels[indices])

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """A row-permuted copy of this dataset."""
        perm = rng.permutation(len(self))
        return self.subset(perm)

    def sample(self, size: int, rng: np.random.Generator, replace: bool = False) -> "Dataset":
        """Uniformly sample ``size`` rows (without replacement by default)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if not replace and size > len(self):
            raise ValueError("cannot sample more rows than the dataset holds without replacement")
        idx = rng.choice(len(self), size=size, replace=replace)
        return self.subset(idx)

    def batches(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over mini-batches, optionally shuffling first."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if rng is not None:
            order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.inputs[idx], self.labels[idx]

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        """Per-class example counts as an integer vector."""
        k = num_classes if num_classes is not None else self.num_classes
        return np.bincount(self.labels, minlength=k).astype(np.int64)

    def concat(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets row-wise."""
        if self.input_shape != other.input_shape:
            raise ValueError("datasets must have matching input shapes to concatenate")
        return Dataset(
            np.concatenate([self.inputs, other.inputs], axis=0),
            np.concatenate([self.labels, other.labels], axis=0),
        )


def train_val_test_split(
    dataset: Dataset,
    val_fraction: float,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[Dataset, Dataset, Dataset]:
    """Shuffle and split a dataset into train/validation/test partitions.

    The paper carves the global validation set ``Q`` (20% of the original test
    set) out of held-out data; this helper performs the analogous split for
    synthetic datasets.
    """
    if not 0.0 <= val_fraction < 1.0 or not 0.0 <= test_fraction < 1.0:
        raise ValueError("fractions must lie in [0, 1)")
    if val_fraction + test_fraction >= 1.0:
        raise ValueError("val_fraction + test_fraction must be < 1")
    shuffled = dataset.shuffled(rng)
    n = len(shuffled)
    n_val = int(round(n * val_fraction))
    n_test = int(round(n * test_fraction))
    n_train = n - n_val - n_test
    train = shuffled.subset(np.arange(0, n_train))
    val = shuffled.subset(np.arange(n_train, n_train + n_val))
    test = shuffled.subset(np.arange(n_train + n_val, n))
    return train, val, test
