"""Mini-batch sampling utilities.

Algorithm 1 draws, at every round ``t``, a stochastic sample ``xi_{i,t}``
uniformly from agent ``i``'s local dataset and uses the *same* sample for the
local gradient (eq. 9) and every cross-gradient (eq. 12).  The
:class:`BatchSampler` below provides exactly that behaviour: one call per
round returning a mini-batch that the caller can reuse for all gradient
evaluations within the round.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["BatchSampler", "batch_iterator"]


class BatchSampler:
    """Draws uniform mini-batches (with replacement across rounds) from a dataset."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        rng: np.random.Generator,
        replace_within_batch: bool = False,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot sample from an empty dataset")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        # A batch never exceeds the dataset size unless sampling with replacement.
        self.batch_size = min(int(batch_size), len(dataset)) if not replace_within_batch else int(batch_size)
        self.rng = rng
        self.replace_within_batch = bool(replace_within_batch)
        self._draws = 0

    @property
    def num_draws(self) -> int:
        """Number of batches drawn so far (equals the number of rounds for one agent)."""
        return self._draws

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(inputs, labels)`` for one uniformly sampled mini-batch."""
        idx = self.rng.choice(
            len(self.dataset), size=self.batch_size, replace=self.replace_within_batch
        )
        self._draws += 1
        return self.dataset.inputs[idx], self.dataset.labels[idx]

    def state_dict(self) -> Dict[str, object]:
        """The sampler's resumable state: RNG stream position and draw count.

        The dataset itself is *not* captured — a resumed run rebuilds the
        identical shards from the experiment seed — only the stream state
        that determines which batch comes next.
        """
        return {"rng_state": self.rng.bit_generator.state, "draws": self._draws}

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Restore a state captured by :meth:`state_dict`.

        After this call the sampler's next batch is exactly the batch the
        original sampler would have drawn next.
        """
        self.rng.bit_generator.state = payload["rng_state"]
        self._draws = int(payload["draws"])


def batch_iterator(
    dataset: Dataset,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """One epoch of (optionally shuffled) mini-batches.

    Used by the DP-NET-FLEET baseline, which performs multiple local update
    steps between communication rounds, and by the examples.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(dataset))
    if rng is not None:
        order = rng.permutation(len(dataset))
    for start in range(0, len(dataset), batch_size):
        idx = order[start : start + batch_size]
        if drop_last and idx.size < batch_size:
            return
        yield dataset.inputs[idx], dataset.labels[idx]
