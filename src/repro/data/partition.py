"""Partitioning a global dataset across agents (IID, Dirichlet non-IID, shards).

The paper's heterogeneity model (Sec. VI-A): for each agent, a probability
vector over the ``Y`` labels is drawn from ``Dir(mu * p)`` with ``p = 1`` and
concentration ``mu``; smaller ``mu`` gives more skewed label distributions.
``mu = 0.25`` is used for both datasets in the paper.

:func:`partition_dirichlet` implements the standard label-Dirichlet scheme:
for every class, the class's examples are split among agents according to
per-agent proportions drawn from ``Dir(mu, ..., mu)``.  This matches the
paper's construction (each agent's label marginal is Dirichlet-distributed)
while guaranteeing every example is assigned to exactly one agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "PartitionResult",
    "partition_iid",
    "partition_dirichlet",
    "partition_by_shards",
    "label_distribution",
    "heterogeneity_degree",
]


@dataclass
class PartitionResult:
    """The outcome of splitting one dataset across ``num_agents`` agents."""

    shards: List[Dataset]
    indices: List[np.ndarray]
    method: str
    params: Dict[str, float] = field(default_factory=dict)

    @property
    def num_agents(self) -> int:
        return len(self.shards)

    def sizes(self) -> List[int]:
        """Number of examples held by each agent."""
        return [len(s) for s in self.shards]

    def label_matrix(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Matrix ``(num_agents, num_classes)`` of per-agent label counts."""
        k = num_classes
        if k is None:
            k = max((s.num_classes for s in self.shards if len(s) > 0), default=0)
        return np.stack([s.class_counts(k) for s in self.shards], axis=0)


def _validate(dataset: Dataset, num_agents: int) -> None:
    if num_agents <= 0:
        raise ValueError("num_agents must be positive")
    if len(dataset) < num_agents:
        raise ValueError(
            f"dataset has {len(dataset)} examples but {num_agents} agents were requested"
        )


def partition_iid(
    dataset: Dataset, num_agents: int, rng: np.random.Generator
) -> PartitionResult:
    """Shuffle and deal the dataset into ``num_agents`` near-equal IID shards."""
    _validate(dataset, num_agents)
    perm = rng.permutation(len(dataset))
    splits = np.array_split(perm, num_agents)
    shards = [dataset.subset(idx) for idx in splits]
    return PartitionResult(shards=shards, indices=[np.asarray(s) for s in splits], method="iid")


def partition_dirichlet(
    dataset: Dataset,
    num_agents: int,
    alpha: float,
    rng: np.random.Generator,
    min_samples_per_agent: int = 1,
    max_retries: int = 100,
) -> PartitionResult:
    """Label-skewed non-IID partition with a Dirichlet(alpha) prior per class.

    Parameters
    ----------
    alpha:
        Dirichlet concentration ``mu`` from the paper; smaller values yield
        more heterogeneous label distributions (the paper uses 0.25).
    min_samples_per_agent:
        Re-draw the allocation until every agent holds at least this many
        examples (so no agent is left with an empty local dataset).
    """
    _validate(dataset, num_agents)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if min_samples_per_agent < 0:
        raise ValueError("min_samples_per_agent must be non-negative")
    num_classes = dataset.num_classes
    labels = dataset.labels

    for _ in range(max_retries):
        agent_indices: List[List[int]] = [[] for _ in range(num_agents)]
        for cls in range(num_classes):
            cls_idx = np.flatnonzero(labels == cls)
            if cls_idx.size == 0:
                continue
            cls_idx = rng.permutation(cls_idx)
            proportions = rng.dirichlet(np.full(num_agents, alpha))
            # Convert proportions into contiguous split points over this class.
            cuts = (np.cumsum(proportions) * cls_idx.size).astype(np.int64)[:-1]
            for agent_id, chunk in enumerate(np.split(cls_idx, cuts)):
                agent_indices[agent_id].extend(chunk.tolist())
        sizes = [len(ix) for ix in agent_indices]
        if min(sizes) >= min_samples_per_agent:
            indices = [rng.permutation(np.asarray(ix, dtype=np.int64)) for ix in agent_indices]
            shards = [dataset.subset(ix) for ix in indices]
            return PartitionResult(
                shards=shards,
                indices=indices,
                method="dirichlet",
                params={"alpha": float(alpha)},
            )
    raise RuntimeError(
        "could not find a Dirichlet partition satisfying min_samples_per_agent="
        f"{min_samples_per_agent} after {max_retries} retries; "
        "increase alpha, decrease num_agents, or relax the minimum"
    )


def partition_by_shards(
    dataset: Dataset,
    num_agents: int,
    shards_per_agent: int,
    rng: np.random.Generator,
) -> PartitionResult:
    """McMahan-style pathological non-IID split: sort by label, deal contiguous shards."""
    _validate(dataset, num_agents)
    if shards_per_agent <= 0:
        raise ValueError("shards_per_agent must be positive")
    total_shards = num_agents * shards_per_agent
    if total_shards > len(dataset):
        raise ValueError("more shards requested than examples available")
    order = np.argsort(dataset.labels, kind="stable")
    shard_chunks = np.array_split(order, total_shards)
    shard_ids = rng.permutation(total_shards)
    agent_indices: List[np.ndarray] = []
    for agent_id in range(num_agents):
        chosen = shard_ids[agent_id * shards_per_agent : (agent_id + 1) * shards_per_agent]
        idx = np.concatenate([shard_chunks[s] for s in chosen])
        agent_indices.append(rng.permutation(idx))
    shards = [dataset.subset(ix) for ix in agent_indices]
    return PartitionResult(
        shards=shards,
        indices=agent_indices,
        method="shards",
        params={"shards_per_agent": float(shards_per_agent)},
    )


def label_distribution(shard: Dataset, num_classes: int) -> np.ndarray:
    """Normalised label histogram of a shard (uniform if the shard is empty)."""
    counts = shard.class_counts(num_classes).astype(np.float64)
    total = counts.sum()
    if total == 0:
        return np.full(num_classes, 1.0 / num_classes)
    return counts / total


def heterogeneity_degree(partition: PartitionResult, num_classes: Optional[int] = None) -> float:
    """Average total-variation distance between agent label marginals and the global one.

    Returns a value in ``[0, 1]``: 0 for perfectly IID shards, approaching 1
    when every agent holds a single class absent from the others.  Used by
    tests and diagnostics to verify that smaller Dirichlet ``alpha`` produces
    more heterogeneous partitions.
    """
    if num_classes is None:
        num_classes = max(
            (s.num_classes for s in partition.shards if len(s) > 0), default=0
        )
    if num_classes == 0:
        return 0.0
    counts = partition.label_matrix(num_classes).astype(np.float64)
    global_counts = counts.sum(axis=0)
    global_dist = global_counts / max(global_counts.sum(), 1.0)
    tv_distances = []
    for row in counts:
        total = row.sum()
        dist = row / total if total > 0 else np.full(num_classes, 1.0 / num_classes)
        tv_distances.append(0.5 * np.abs(dist - global_dist).sum())
    return float(np.mean(tv_distances))
