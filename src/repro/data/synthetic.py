"""Synthetic class-structured datasets standing in for MNIST / CIFAR-10.

No network access is available in this environment, so real MNIST/CIFAR-10
images cannot be downloaded.  The decentralized-learning phenomena the paper
studies — non-IID degradation under Dirichlet label skew, the utility cost of
DP noise, and topology effects — depend on the data being *class-structured
and separable*, not on the images themselves.  These generators therefore
produce datasets whose rows are drawn from per-class anchor patterns plus
Gaussian perturbations:

* :func:`make_synthetic_mnist` — ``(N, 1, 28, 28)`` images, 10 classes, each
  class anchored on a distinct low-frequency spatial pattern (a blurred
  random blob layout), values in ``[0, 1]``.
* :func:`make_synthetic_cifar` — ``(N, 3, 32, 32)`` images, 10 classes, with
  per-class colour/texture anchors.
* :func:`make_classification_dataset` — generic ``(N, D)`` Gaussian-cluster
  data used by unit tests and the fast benchmark configurations.

Each generator accepts a ``difficulty`` knob (intra-class noise relative to
inter-class separation) and optional label noise so experiments can control
how hard the task is.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "make_classification_dataset",
    "make_synthetic_mnist",
    "make_synthetic_cifar",
]


def _apply_label_noise(
    labels: np.ndarray, num_classes: int, label_noise: float, rng: np.random.Generator
) -> np.ndarray:
    """Flip each label to a uniformly random class with probability ``label_noise``."""
    if label_noise <= 0.0:
        return labels
    if label_noise >= 1.0:
        raise ValueError("label_noise must be < 1")
    flip = rng.random(labels.shape[0]) < label_noise
    random_labels = rng.integers(0, num_classes, size=labels.shape[0])
    return np.where(flip, random_labels, labels)


def make_classification_dataset(
    num_samples: int,
    num_features: int = 20,
    num_classes: int = 10,
    cluster_std: float = 1.0,
    class_separation: float = 3.0,
    label_noise: float = 0.0,
    seed: Optional[int] = 0,
) -> Dataset:
    """Gaussian-cluster classification data with one cluster centre per class.

    Class centres are drawn on a sphere of radius ``class_separation`` so the
    problem is linearly separable when ``cluster_std`` is small relative to
    the separation; increasing ``cluster_std`` makes it harder.
    """
    if num_samples <= 0 or num_features <= 0 or num_classes <= 1:
        raise ValueError("num_samples, num_features must be positive; num_classes > 1")
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    norms = np.linalg.norm(centers, axis=1, keepdims=True)
    centers = centers / np.maximum(norms, 1e-12) * class_separation
    labels = rng.integers(0, num_classes, size=num_samples)
    noise = rng.normal(0.0, cluster_std, size=(num_samples, num_features))
    inputs = centers[labels] + noise
    labels = _apply_label_noise(labels, num_classes, label_noise, rng)
    return Dataset(inputs.astype(np.float64), labels)


def _smooth_2d(image: np.ndarray, passes: int = 2) -> np.ndarray:
    """Cheap separable box blur used to give anchors spatial structure."""
    out = image.copy()
    for _ in range(passes):
        out = (
            out
            + np.roll(out, 1, axis=-1)
            + np.roll(out, -1, axis=-1)
            + np.roll(out, 1, axis=-2)
            + np.roll(out, -1, axis=-2)
        ) / 5.0
    return out


def _make_image_anchors(
    num_classes: int, channels: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """One smoothed random anchor image per class, values roughly in [0, 1]."""
    anchors = rng.random((num_classes, channels, size, size))
    anchors = _smooth_2d(anchors, passes=3)
    lo = anchors.min(axis=(1, 2, 3), keepdims=True)
    hi = anchors.max(axis=(1, 2, 3), keepdims=True)
    return (anchors - lo) / np.maximum(hi - lo, 1e-12)


def _make_image_dataset(
    num_samples: int,
    num_classes: int,
    channels: int,
    size: int,
    noise_std: float,
    label_noise: float,
    seed: Optional[int],
) -> Dataset:
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if num_classes <= 1:
        raise ValueError("num_classes must be > 1")
    rng = np.random.default_rng(seed)
    anchors = _make_image_anchors(num_classes, channels, size, rng)
    labels = rng.integers(0, num_classes, size=num_samples)
    noise = rng.normal(0.0, noise_std, size=(num_samples, channels, size, size))
    inputs = np.clip(anchors[labels] + noise, 0.0, 1.0)
    labels = _apply_label_noise(labels, num_classes, label_noise, rng)
    return Dataset(inputs.astype(np.float64), labels)


def make_synthetic_mnist(
    num_samples: int = 2000,
    num_classes: int = 10,
    noise_std: float = 0.25,
    label_noise: float = 0.0,
    image_size: int = 28,
    seed: Optional[int] = 0,
) -> Dataset:
    """Synthetic stand-in for MNIST: ``(N, 1, image_size, image_size)`` in [0, 1]."""
    return _make_image_dataset(
        num_samples=num_samples,
        num_classes=num_classes,
        channels=1,
        size=image_size,
        noise_std=noise_std,
        label_noise=label_noise,
        seed=seed,
    )


def make_synthetic_cifar(
    num_samples: int = 2000,
    num_classes: int = 10,
    noise_std: float = 0.35,
    label_noise: float = 0.0,
    image_size: int = 32,
    seed: Optional[int] = 0,
) -> Dataset:
    """Synthetic stand-in for CIFAR-10: ``(N, 3, image_size, image_size)`` in [0, 1].

    The default noise level is higher than the MNIST stand-in so the task is
    harder, mirroring the relative difficulty of the two real datasets.
    """
    return _make_image_dataset(
        num_samples=num_samples,
        num_classes=num_classes,
        channels=3,
        size=image_size,
        noise_std=noise_std,
        label_noise=label_noise,
        seed=seed,
    )
