"""Experiment harness reproducing the paper's evaluation (Sec. VI).

* :mod:`repro.experiments.specs` — declarative experiment specifications and
  the paper presets (Figures 1–6, Tables I–II) plus scaled-down "fast"
  variants used by the benchmark suite, and :class:`ExperimentGrid`
  campaigns (algorithms x seeds x overrides);
* :mod:`repro.experiments.harness` — building algorithm instances and running
  head-to-head comparisons;
* :mod:`repro.experiments.orchestrator` — durable, resumable, parallel grid
  execution over a content-addressed run-directory store (the ``repro-run``
  CLI in :mod:`repro.experiments.cli` is its console surface);
* :mod:`repro.experiments.report` — formatting loss curves, accuracy tables
  and multi-seed mean±std summaries in the same layout the paper uses.
"""

from repro.experiments.specs import (
    ALGORITHM_NAMES,
    ExperimentGrid,
    ExperimentJob,
    ExperimentSpec,
    cifar_like_spec,
    fast_spec,
    grid_from_dict,
    grid_to_dict,
    mnist_like_spec,
    paper_figure_spec,
    paper_table_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.experiments.harness import (
    build_algorithm,
    build_experiment_components,
    run_comparison,
    run_single,
)
from repro.experiments.orchestrator import (
    JobResult,
    RunStore,
    job_hash,
    report_rows,
    run_grid,
    run_job,
)
from repro.experiments.report import (
    accuracy_table_rows,
    aggregate_cells,
    format_accuracy_table,
    format_cell_summary,
    format_loss_curves,
    loss_curve_series,
)

__all__ = [
    "ALGORITHM_NAMES",
    "ExperimentSpec",
    "ExperimentGrid",
    "ExperimentJob",
    "spec_to_dict",
    "spec_from_dict",
    "grid_to_dict",
    "grid_from_dict",
    "fast_spec",
    "mnist_like_spec",
    "cifar_like_spec",
    "paper_figure_spec",
    "paper_table_spec",
    "build_algorithm",
    "build_experiment_components",
    "run_comparison",
    "run_single",
    "JobResult",
    "RunStore",
    "job_hash",
    "report_rows",
    "run_grid",
    "run_job",
    "loss_curve_series",
    "format_loss_curves",
    "accuracy_table_rows",
    "format_accuracy_table",
    "aggregate_cells",
    "format_cell_summary",
]
