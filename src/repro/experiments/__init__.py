"""Experiment harness reproducing the paper's evaluation (Sec. VI).

* :mod:`repro.experiments.specs` — declarative experiment specifications and
  the paper presets (Figures 1–6, Tables I–II) plus scaled-down "fast"
  variants used by the benchmark suite;
* :mod:`repro.experiments.harness` — building algorithm instances and running
  head-to-head comparisons;
* :mod:`repro.experiments.report` — formatting loss curves and accuracy
  tables in the same layout the paper uses.
"""

from repro.experiments.specs import (
    ALGORITHM_NAMES,
    ExperimentSpec,
    cifar_like_spec,
    fast_spec,
    mnist_like_spec,
    paper_figure_spec,
    paper_table_spec,
)
from repro.experiments.harness import (
    build_algorithm,
    build_experiment_components,
    run_comparison,
    run_single,
)
from repro.experiments.report import (
    accuracy_table_rows,
    format_accuracy_table,
    format_loss_curves,
    loss_curve_series,
)

__all__ = [
    "ALGORITHM_NAMES",
    "ExperimentSpec",
    "fast_spec",
    "mnist_like_spec",
    "cifar_like_spec",
    "paper_figure_spec",
    "paper_table_spec",
    "build_algorithm",
    "build_experiment_components",
    "run_comparison",
    "run_single",
    "loss_curve_series",
    "format_loss_curves",
    "accuracy_table_rows",
    "format_accuracy_table",
]
