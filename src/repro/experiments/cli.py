"""``repro-run`` — the command-line surface of the experiment orchestrator.

One spec file (JSON, the :func:`~repro.experiments.specs.grid_from_dict`
format) describes a whole campaign; four subcommands drive it::

    repro-run run      spec.json --runs runs/ --workers 4  # execute the grid
    repro-run resume   spec.json --runs runs/ --workers 4  # continue after a kill
    repro-run status   spec.json --runs runs/              # per-job store state
    repro-run report   spec.json --runs runs/              # mean±std over seeds
    repro-run frontier spec.json --runs runs/              # train + attack sweep

``run`` and ``resume`` are the same operation — the run store makes
execution idempotent (done cells are skipped, partial cells resume from
their latest checkpoint bit-identically) — both verbs exist so scripts read
naturally.  A spec file is either a bare
:class:`~repro.experiments.specs.ExperimentSpec` dict or::

    {
      "base": {"name": "sweep", "dataset": "classification", ...},
      "algorithms": ["PDSL", "DP-DPSGD"],
      "seeds": [7, 8, 9],
      "overrides": [{}, {"topology": "ring"}]
    }

Exit status is 0 when every addressed job is done (for ``run``/``resume``:
after this invocation), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.orchestrator import (
    DEFAULT_CHECKPOINT_EVERY,
    RunStore,
    job_hash,
    report_rows,
    run_grid,
)
from repro.experiments.report import format_cell_summary
from repro.experiments.specs import ExperimentGrid, grid_from_dict

__all__ = ["main", "load_grid_file"]


def load_grid_file(path: str) -> ExperimentGrid:
    """Parse a campaign spec file into a validated :class:`ExperimentGrid`."""
    spec_path = Path(path)
    if not spec_path.exists():
        raise FileNotFoundError(f"spec file not found: {spec_path}")
    try:
        payload = json.loads(spec_path.read_text())
    except ValueError as error:
        raise ValueError(f"{spec_path} is not valid JSON: {error}") from error
    return grid_from_dict(payload)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Durable, resumable, parallel experiment grids for the "
        "PDSL reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("spec", help="campaign spec file (JSON grid declaration)")
        sub.add_argument(
            "--runs",
            default="runs",
            help="run-store root directory (default: ./runs)",
        )

    for verb in ("run", "resume"):
        sub = subparsers.add_parser(
            verb,
            help=(
                "execute the grid (skip done cells, resume partial ones)"
                if verb == "run"
                else "alias of run: continue an interrupted campaign"
            ),
        )
        add_common(sub)
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="process-pool size for pending jobs (default: 1, serial)",
        )
        sub.add_argument(
            "--checkpoint-every",
            type=int,
            default=DEFAULT_CHECKPOINT_EVERY,
            help="rounds between run snapshots (default: %(default)s)",
        )
        sub.add_argument(
            "--max-rounds-per-job",
            type=int,
            default=None,
            help="stop each job after this many rounds this invocation "
            "(testing/smoke hook; leaves partial cells to resume)",
        )

    add_common(subparsers.add_parser("status", help="per-job store status table"))
    add_common(
        subparsers.add_parser(
            "report", help="aggregate finished cells into mean±std tables"
        )
    )

    frontier = subparsers.add_parser(
        "frontier",
        help="run the grid with retained final states, then mount the batched "
        "membership-inference and gradient-inversion attacks on every cell "
        "(writes <runs>/frontier.json)",
    )
    add_common(frontier)
    frontier.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for pending jobs (default: 1, serial)",
    )
    frontier.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        help="rounds between run snapshots (default: %(default)s)",
    )
    frontier.add_argument(
        "--inversion-iterations",
        type=int,
        default=40,
        help="SPSA iterations of the fleet inversion attack (default: %(default)s)",
    )
    frontier.add_argument(
        "--victim-batch",
        type=int,
        default=4,
        help="victim batch size reconstructed per agent (default: %(default)s)",
    )
    frontier.add_argument(
        "--max-eval-samples",
        type=int,
        default=64,
        help="per-population cap for membership scoring (default: %(default)s)",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    grid = load_grid_file(args.spec)
    print(
        f"{len(grid)} job(s): {len(grid.algorithms)} algorithm(s) x "
        f"{len(grid.seeds)} seed(s) x {len(grid.overrides)} override(s) "
        f"-> {args.runs}"
    )
    results = run_grid(
        grid,
        args.runs,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        max_rounds_per_job=args.max_rounds_per_job,
        strict=False,
    )
    for result in results:
        rounds = len(result.history.records) if result.history else "-"
        line = f"  [{result.status:>7s}] {result.job_id}  {result.job.describe()}"
        if result.error:
            line += f"  ({result.error})"
        print(line, f"records={rounds}" if result.history else "")
    done = [r for r in results if r.status in ("done", "cached")]
    print(f"{len(done)}/{len(results)} job(s) complete")
    if len(done) == len(results):
        print()
        print(format_cell_summary(report_rows(results)))
        return 0
    return 1


def _cmd_status(args: argparse.Namespace) -> int:
    grid = load_grid_file(args.spec)
    store = RunStore(args.runs)
    print(f"{'job':<18s}{'status':<10s}{'rounds':>7s}  description")
    all_done = True
    for job in grid.jobs():
        status = store.read_status(job)
        state = str(status.get("status", "pending"))
        if state != "done":
            all_done = False
        rounds = status.get("rounds_completed", "-")
        print(f"{job_hash(job):<18s}{state:<10s}{rounds!s:>7s}  {job.describe()}")
    return 0 if all_done else 1


def _cmd_report(args: argparse.Namespace) -> int:
    grid = load_grid_file(args.spec)
    store = RunStore(args.runs)
    rows = []
    missing: List[str] = []
    for job in grid.jobs():
        history = (
            store.load_history(job)
            if store.read_status(job).get("status") == "done"
            else None
        )
        if history is None:
            missing.append(job.describe())
        else:
            rows.append((job.algorithm, job.cell, history))
    if rows:
        print(format_cell_summary(rows))
    if missing:
        print(f"\n{len(missing)} job(s) not finished yet:")
        for description in missing:
            print(f"  {description}")
        return 1
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.experiments.privacy_frontier import (
        FRONTIER_FILE,
        frontier_report,
        run_privacy_frontier,
    )

    grid = load_grid_file(args.spec)
    print(
        f"privacy frontier over {len(grid)} job(s): {len(grid.algorithms)} "
        f"algorithm(s) x {len(grid.seeds)} seed(s) x {len(grid.overrides)} "
        f"override(s) -> {args.runs}"
    )
    points = run_privacy_frontier(
        grid,
        args.runs,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        inversion_iterations=args.inversion_iterations,
        victim_batch=args.victim_batch,
        max_eval_samples=args.max_eval_samples,
    )
    print(frontier_report(points))
    print(f"\nfrontier written to {Path(args.runs) / FRONTIER_FILE}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-run`` console script."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command in ("run", "resume"):
            return _cmd_run(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "frontier":
            return _cmd_frontier(args)
        return _cmd_report(args)
    except (ValueError, FileNotFoundError, RuntimeError) as error:
        print(f"repro-run: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    raise SystemExit(main())
