"""Building and running the experiments described by an :class:`ExperimentSpec`.

The harness turns a spec into concrete objects (dataset, partition, topology,
model, algorithm instances), runs each requested algorithm under identical
conditions (same data partition, same initial model, same evaluation policy)
and returns the per-algorithm :class:`~repro.simulation.metrics.TrainingHistory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import DMSGD, DPCGA, DPDPSGD, DPNetFleet, DPSGDNonPrivate, Muffliato
from repro.core.base import DecentralizedAlgorithm
from repro.core.config import (
    AlgorithmConfig,
    CGAConfig,
    MuffliatoConfig,
    NetFleetConfig,
    PDSLConfig,
)
from repro.core.pdsl import PDSL
from repro.data.dataset import Dataset, train_val_test_split
from repro.data.partition import PartitionResult, partition_dirichlet
from repro.data.synthetic import (
    make_classification_dataset,
    make_synthetic_cifar,
    make_synthetic_mnist,
)
from repro.experiments.specs import ExperimentSpec
from repro.nn.model import Model
from repro.nn.zoo import make_cifar_cnn, make_linear_classifier, make_mlp, make_mnist_cnn
from repro.simulation.metrics import TrainingHistory
from repro.simulation.runner import EvaluationConfig, run_decentralized
from repro.topology.schedule import TopologySchedule, schedule_from_dynamics
from repro.topology.graphs import (
    Topology,
    bipartite_graph,
    erdos_renyi_graph,
    exponential_graph,
    fully_connected_graph,
    grid_graph,
    hypercube_graph,
    random_regular_graph,
    ring_graph,
    small_world_graph,
    star_graph,
    torus_graph,
)

__all__ = [
    "ExperimentComponents",
    "build_experiment_components",
    "build_algorithm",
    "evaluation_for_spec",
    "run_single",
    "run_comparison",
]


@dataclass
class ExperimentComponents:
    """The concrete objects an experiment runs on.

    ``schedule`` is ``None`` for the historical fixed-topology experiments;
    when the spec declares ``dynamics`` it is the
    :class:`~repro.topology.schedule.TopologySchedule` every compared
    algorithm trains against (shared, so all algorithms see the identical
    sequence of graphs, departures and stragglers).
    """

    spec: ExperimentSpec
    topology: Topology
    train: Dataset
    validation: Dataset
    test: Dataset
    partition: PartitionResult
    model_factory: Callable[[], Model]
    schedule: Optional[TopologySchedule] = None


def _make_topology(
    name: str,
    num_agents: int,
    seed: int,
    cluster_size: Optional[int] = None,
) -> Topology:
    if name == "fully_connected":
        return fully_connected_graph(num_agents)
    if name == "hierarchical":
        from repro.topology.hierarchical import hierarchical_graph

        return hierarchical_graph(num_agents, cluster_size=cluster_size)
    if name == "ring":
        return ring_graph(num_agents)
    if name == "bipartite":
        return bipartite_graph(num_agents)
    if name == "star":
        return star_graph(num_agents)
    if name == "grid":
        rows = int(np.floor(np.sqrt(num_agents)))
        cols = int(np.ceil(num_agents / max(rows, 1)))
        return grid_graph(rows, cols)
    if name == "torus":
        side = int(round(np.sqrt(num_agents)))
        if side * side != num_agents:
            raise ValueError("torus topology needs a square number of agents")
        return torus_graph(side)
    if name == "erdos_renyi":
        return erdos_renyi_graph(num_agents, edge_probability=0.4, seed=seed)
    if name == "random_regular":
        degree = 4 if num_agents > 4 else 2
        return random_regular_graph(num_agents, degree=degree, seed=seed)
    if name == "small_world":
        return small_world_graph(num_agents, seed=seed)
    if name == "hypercube":
        dimension = int(round(np.log2(num_agents)))
        if 2**dimension != num_agents:
            raise ValueError("hypercube topology needs a power-of-two number of agents")
        return hypercube_graph(dimension)
    if name == "exponential":
        return exponential_graph(num_agents)
    raise ValueError(f"unknown topology: {name}")


def _make_dataset(spec: ExperimentSpec) -> Dataset:
    if spec.dataset == "classification":
        total = spec.train_samples + spec.validation_samples + spec.test_samples
        return make_classification_dataset(
            num_samples=total,
            num_features=spec.num_features,
            num_classes=spec.num_classes,
            cluster_std=1.2,
            class_separation=3.0,
            seed=spec.seed,
        )
    if spec.dataset == "mnist":
        total = spec.train_samples + spec.validation_samples + spec.test_samples
        return make_synthetic_mnist(num_samples=total, num_classes=spec.num_classes, seed=spec.seed)
    if spec.dataset == "cifar":
        total = spec.train_samples + spec.validation_samples + spec.test_samples
        return make_synthetic_cifar(num_samples=total, num_classes=spec.num_classes, seed=spec.seed)
    raise ValueError(f"unknown dataset family: {spec.dataset}")


def _make_model_factory(spec: ExperimentSpec, sample_input_shape: Tuple[int, ...]) -> Callable[[], Model]:
    if spec.model == "linear":
        input_dim = int(np.prod(sample_input_shape))
        return lambda: make_linear_classifier(input_dim, spec.num_classes, seed=spec.seed)
    if spec.model == "mlp":
        input_dim = int(np.prod(sample_input_shape))
        return lambda: make_mlp(input_dim, spec.num_classes, hidden_sizes=(32,), seed=spec.seed)
    if spec.model == "mnist_cnn":
        return lambda: make_mnist_cnn(
            num_classes=spec.num_classes,
            image_size=sample_input_shape[-1],
            in_channels=sample_input_shape[0],
            seed=spec.seed,
        )
    if spec.model == "cifar_cnn":
        return lambda: make_cifar_cnn(
            num_classes=spec.num_classes,
            image_size=sample_input_shape[-1],
            in_channels=sample_input_shape[0],
            seed=spec.seed,
        )
    raise ValueError(f"unknown model family: {spec.model}")


def _maybe_flatten(dataset: Dataset, spec: ExperimentSpec) -> Dataset:
    """Flatten image tensors when the chosen model is a dense one."""
    if spec.model in ("linear", "mlp") and dataset.inputs.ndim > 2:
        flat = dataset.inputs.reshape(dataset.inputs.shape[0], -1)
        return Dataset(flat, dataset.labels)
    return dataset


def build_experiment_components(spec: ExperimentSpec) -> ExperimentComponents:
    """Generate data, split it, partition it across agents, and build the topology."""
    rng = np.random.default_rng(spec.seed)
    full = _make_dataset(spec)
    full = _maybe_flatten(full, spec)
    total = len(full)
    val_fraction = spec.validation_samples / total
    test_fraction = spec.test_samples / total
    train, validation, test = train_val_test_split(full, val_fraction, test_fraction, rng)
    partition = partition_dirichlet(
        train,
        num_agents=spec.num_agents,
        alpha=spec.dirichlet_alpha,
        rng=rng,
        min_samples_per_agent=max(2, spec.batch_size // 4),
    )
    topology = _make_topology(
        spec.topology, spec.num_agents, spec.seed, cluster_size=spec.cluster_size
    )
    schedule = (
        schedule_from_dynamics(topology, spec.dynamics, seed=spec.seed)
        if spec.dynamics
        else None
    )
    model_factory = _make_model_factory(spec, train.input_shape)
    return ExperimentComponents(
        spec=spec,
        topology=topology,
        train=train,
        validation=validation,
        test=test,
        partition=partition,
        model_factory=model_factory,
        schedule=schedule,
    )


def build_algorithm(
    name: str,
    components: ExperimentComponents,
    sigma: Optional[float] = None,
) -> DecentralizedAlgorithm:
    """Instantiate one algorithm on the experiment's shared components.

    Every algorithm receives the same topology, the same data partition and a
    freshly constructed (but identically seeded, hence identical) model, so
    comparisons isolate the algorithmic differences.

    When the spec declares a ``time_model``, the algorithm comes back wrapped
    in an :class:`~repro.simulation.events.engine.AsyncEngine` — run on
    simulated time through every execution path (harness and orchestrator
    alike), recording simulated wall-clock and utilization into the history.
    """
    algorithm = _instantiate_algorithm(name, components, sigma=sigma)
    # `is not None` (not truthiness): an empty mapping still means "run on
    # simulated time" and gets the default uniform-trace barrier engine.
    if components.spec.time_model is not None:
        from repro.simulation.events import engine_from_time_model

        return engine_from_time_model(algorithm, components.spec.time_model)
    return algorithm


def _instantiate_algorithm(
    name: str,
    components: ExperimentComponents,
    sigma: Optional[float] = None,
) -> DecentralizedAlgorithm:
    spec = components.spec
    base_kwargs = dict(
        learning_rate=spec.learning_rate,
        clip_threshold=spec.clip_threshold,
        epsilon=spec.epsilon if sigma is None else None,
        sigma=sigma,
        delta=spec.delta,
        batch_size=spec.batch_size,
        seed=spec.seed,
        compression=spec.compression,
        dtype=spec.dtype,
        block_rows=spec.block_rows,
        block_workers=spec.block_workers,
        storage=spec.storage,
    )
    model = components.model_factory()
    shards = components.partition.shards
    # When the spec declares topology dynamics, the algorithms receive the
    # shared per-round schedule instead of the fixed base graph.
    topology = (
        components.schedule if components.schedule is not None else components.topology
    )
    validation = components.validation

    if name == "PDSL":
        config = PDSLConfig(
            momentum=spec.momentum,
            shapley_permutations=spec.shapley_permutations,
            **base_kwargs,
        )
        return PDSL(model, topology, shards, config, validation=validation)
    if name == "DP-DPSGD":
        config = AlgorithmConfig(momentum=0.0, **base_kwargs)
        return DPDPSGD(model, topology, shards, config)
    if name == "D-PSGD":
        config = AlgorithmConfig(momentum=0.0, **{**base_kwargs, "epsilon": None, "sigma": 0.0})
        return DPSGDNonPrivate(model, topology, shards, config)
    if name == "DMSGD":
        config = AlgorithmConfig(momentum=spec.momentum, **base_kwargs)
        return DMSGD(model, topology, shards, config)
    if name == "MUFFLIATO":
        config = MuffliatoConfig(momentum=0.0, gossip_steps=3, **base_kwargs)
        return Muffliato(model, topology, shards, config)
    if name == "DP-CGA":
        config = CGAConfig(momentum=spec.momentum, **base_kwargs)
        return DPCGA(model, topology, shards, config)
    if name == "DP-NET-FLEET":
        config = NetFleetConfig(momentum=0.0, local_steps=2, **base_kwargs)
        return DPNetFleet(model, topology, shards, config)
    raise ValueError(f"unknown algorithm: {name}")


def evaluation_for_spec(components: ExperimentComponents) -> EvaluationConfig:
    """The evaluation policy every execution path derives from a spec.

    Shared by :func:`run_single` and the experiment orchestrator's
    :func:`~repro.experiments.orchestrator.run_job`, so an orchestrated cell
    evaluates exactly like an in-process harness run — which is what lets
    the two produce identical histories for the same spec.
    """
    return EvaluationConfig(
        eval_every=components.spec.eval_every,
        test_data=components.test,
        loss_samples_per_agent=128,
    )


def run_single(
    name: str,
    components: ExperimentComponents,
    sigma: Optional[float] = None,
    progress_callback=None,
) -> TrainingHistory:
    """Build and run one algorithm for the spec's number of rounds."""
    spec = components.spec
    algorithm = build_algorithm(name, components, sigma=sigma)
    evaluation = evaluation_for_spec(components)
    history = run_decentralized(
        algorithm, spec.num_rounds, evaluation=evaluation, progress_callback=progress_callback
    )
    history.metadata["spec"] = spec.name
    history.metadata["dirichlet_alpha"] = spec.dirichlet_alpha
    return history


def run_comparison(
    spec: ExperimentSpec,
    algorithms: Optional[Sequence[str]] = None,
    progress_callback=None,
) -> Dict[str, TrainingHistory]:
    """Run every requested algorithm on identical components; return histories by name."""
    components = build_experiment_components(spec)
    names = list(algorithms) if algorithms is not None else list(spec.algorithms)
    results: Dict[str, TrainingHistory] = {}
    for name in names:
        results[name] = run_single(name, components, progress_callback=progress_callback)
    return results
