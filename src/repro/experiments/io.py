"""Saving and loading experiment results.

Long experiment grids (the full Table I/II sweeps) are expensive; this module
persists :class:`~repro.simulation.metrics.TrainingHistory` objects and whole
comparison grids as JSON so results can be archived, diffed across code
versions, and re-rendered into the paper-style tables without re-running the
training.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

from repro.simulation.metrics import RoundRecord, TrainingHistory

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "save_histories",
    "load_histories",
]

PathLike = Union[str, Path]


def history_to_dict(history: TrainingHistory) -> Dict[str, object]:
    """JSON-serialisable representation of a training history (round-trippable)."""
    return {
        "algorithm": history.algorithm,
        "metadata": dict(history.metadata),
        "final_test_accuracy": history.final_test_accuracy,
        "records": [
            {
                "round": record.round,
                "average_train_loss": record.average_train_loss,
                "test_accuracy": record.test_accuracy,
                "consensus": record.consensus,
                "extra": dict(record.extra),
                "wall_clock_seconds": record.wall_clock_seconds,
                "active_agents": record.active_agents,
                "topology_events": [dict(e) for e in record.topology_events],
            }
            for record in history.records
        ],
    }


def history_from_dict(payload: Mapping[str, object]) -> TrainingHistory:
    """Inverse of :func:`history_to_dict`."""
    if "algorithm" not in payload or "records" not in payload:
        raise ValueError("payload is missing required keys 'algorithm' / 'records'")
    history = TrainingHistory(
        algorithm=str(payload["algorithm"]),
        metadata=dict(payload.get("metadata", {})),
        final_test_accuracy=payload.get("final_test_accuracy"),
    )
    for item in payload["records"]:
        history.append(
            RoundRecord(
                round=int(item["round"]),
                average_train_loss=float(item["average_train_loss"]),
                test_accuracy=item.get("test_accuracy"),
                consensus=item.get("consensus"),
                extra=dict(item.get("extra", {})),
                wall_clock_seconds=item.get("wall_clock_seconds"),
                active_agents=item.get("active_agents"),
                topology_events=[dict(e) for e in item.get("topology_events", [])],
            )
        )
    return history


def save_histories(histories: Mapping[str, TrainingHistory], path: PathLike) -> Path:
    """Write a ``{name: history}`` mapping (one comparison run) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {name: history_to_dict(history) for name, history in histories.items()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_histories(path: PathLike) -> Dict[str, TrainingHistory]:
    """Read a comparison run previously written by :func:`save_histories`."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path} does not contain a JSON object")
    return {name: history_from_dict(item) for name, item in payload.items()}
