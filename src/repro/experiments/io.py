"""Saving and loading experiment results.

Long experiment grids (the full Table I/II sweeps) are expensive; this module
persists :class:`~repro.simulation.metrics.TrainingHistory` objects and whole
comparison grids as JSON so results can be archived, diffed across code
versions, and re-rendered into the paper-style tables without re-running the
training.

All writes are **atomic** (temporary file + :func:`os.replace`, via
:mod:`repro.simulation.checkpoint`): an interrupted save — a killed sweep, a
full disk, Ctrl-C mid-write — can never leave a truncated or corrupt JSON
behind; the previous complete file, if any, survives.

The dict round-trip itself (:func:`history_to_dict` /
:func:`history_from_dict`) lives in :mod:`repro.simulation.metrics` so the
run-session checkpointing can use it without importing the experiment layer;
it is re-exported here for backwards compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

from repro.simulation.checkpoint import atomic_write_text
from repro.simulation.metrics import (
    TrainingHistory,
    history_from_dict,
    history_to_dict,
)

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "save_histories",
    "load_histories",
]

PathLike = Union[str, Path]


def save_histories(histories: Mapping[str, TrainingHistory], path: PathLike) -> Path:
    """Write a ``{name: history}`` mapping (one comparison run) to a JSON file.

    The write is atomic: readers observe either the previous complete file or
    the new one, never a partial write.
    """
    path = Path(path)
    payload = {name: history_to_dict(history) for name, history in histories.items()}
    return atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))


def load_histories(path: PathLike) -> Dict[str, TrainingHistory]:
    """Read a comparison run previously written by :func:`save_histories`."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path} does not contain a JSON object")
    return {name: history_from_dict(item) for name, item in payload.items()}
