"""Durable, parallel execution of experiment grids.

The paper's headline artefacts are comparison grids — algorithms x
topologies x privacy budgets x seeds — and this module is the execution
layer for them: every cell of an :class:`~repro.experiments.specs.ExperimentGrid`
becomes an :class:`~repro.experiments.specs.ExperimentJob` with a
**content-addressed run directory**, executed through a resumable
:class:`~repro.simulation.runner.RunSession`, optionally fanned out over a
``ProcessPoolExecutor``.

Run-directory layout (under the store root)::

    runs/
      <job hash>/                 # sha256 of the job's canonical config (first 16 hex chars)
        spec.json                 # {"algorithm": ..., "spec": {...}} (the hash preimage)
        status.json               # {"status": pending|running|partial|done|failed, ...}
        history.json              # the finished TrainingHistory (done jobs only)
        checkpoints/
          round_000040.ckpt       # RunSession snapshots (pruned once done)

The hash covers every field that influences the trajectory (the full spec
plus the algorithm name), so:

* re-running a grid **skips** every cell whose directory is already
  ``done`` (the stored history is returned as-is);
* a killed run leaves ``partial`` directories whose latest checkpoint is
  picked up on the next invocation and **resumed bit-identically** — a
  resumed cell's history equals the uninterrupted run's;
* changing any hyper-parameter changes the hash, landing the run in a fresh
  directory instead of silently mixing configurations.

Every file write is atomic (temp file + ``os.replace``), so interrupts never
leave corrupt JSON or checkpoints behind.  Parallel execution is
process-based because the workload is NumPy-bound: each job is seeded by its
own spec, touches only its own run directory, and returns its history to the
parent — jobs share nothing, so the pool needs no locking.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.harness import (
    build_algorithm,
    build_experiment_components,
    evaluation_for_spec,
)
from repro.experiments.specs import ExperimentGrid, ExperimentJob, spec_to_dict
from repro.simulation.checkpoint import atomic_write_text, latest_checkpoint, list_checkpoints
from repro.simulation.metrics import (
    TrainingHistory,
    history_from_dict,
    history_to_dict,
)
from repro.simulation.runner import RunSession

__all__ = [
    "job_config",
    "job_hash",
    "RunStore",
    "JobResult",
    "run_job",
    "run_grid",
    "report_rows",
]

PathLike = Union[str, Path]

#: Default snapshot cadence for orchestrated runs (rounds between checkpoints).
DEFAULT_CHECKPOINT_EVERY = 5


def job_config(job: ExperimentJob) -> Dict[str, object]:
    """The canonical configuration a job's run directory is addressed by."""
    return {"algorithm": job.algorithm, "spec": spec_to_dict(job.spec)}


def job_hash(job: ExperimentJob) -> str:
    """Content address of a job: sha256 over its canonical JSON config.

    Any change that could alter the trajectory — a hyper-parameter, the
    topology, the seed, the algorithm — changes the hash; cosmetic identity
    (dict ordering) does not, because the JSON is key-sorted.  The digest is
    truncated to its first 16 hex characters (64 bits) for readable
    directory names; :meth:`RunStore.prepare` pins the full config in
    ``spec.json`` and rejects a mismatched directory, so even a truncated
    collision cannot silently mix two configurations.
    """
    canonical = json.dumps(job_config(job), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class RunStore:
    """The run-directory tree: one content-addressed directory per job."""

    SPEC_FILE = "spec.json"
    STATUS_FILE = "status.json"
    HISTORY_FILE = "history.json"
    CHECKPOINT_DIR = "checkpoints"

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # -- paths ----------------------------------------------------------
    def job_dir(self, job: ExperimentJob) -> Path:
        """The job's content-addressed run directory (``<root>/<job hash>``)."""
        return self.root / job_hash(job)

    def checkpoints_dir(self, job: ExperimentJob) -> Path:
        """Where the job's ``round_<NNNNNN>.ckpt`` snapshots live."""
        return self.job_dir(job) / self.CHECKPOINT_DIR

    # -- lifecycle ------------------------------------------------------
    def prepare(self, job: ExperimentJob) -> Path:
        """Create the job's directory and pin its config (idempotent).

        If the directory already exists, the stored config must match the
        job's — a mismatch means a hash collision or a hand-edited
        directory, either of which would silently corrupt results.
        """
        directory = self.job_dir(job)
        self.checkpoints_dir(job).mkdir(parents=True, exist_ok=True)
        spec_path = directory / self.SPEC_FILE
        config = job_config(job)
        if spec_path.exists():
            stored = json.loads(spec_path.read_text())
            if stored != config:
                raise ValueError(
                    f"run directory {directory} already holds a different "
                    "configuration — refusing to overwrite it"
                )
        else:
            atomic_write_text(spec_path, json.dumps(config, indent=2, sort_keys=True))
        return directory

    def read_status(self, job: ExperimentJob) -> Dict[str, object]:
        """The job's status record (``{"status": "pending"}`` when absent).

        A corrupt status file — the one artifact written outside the
        session's atomic checkpoint path would never be, but defence in
        depth — degrades to ``pending`` so the job simply re-runs.
        """
        path = self.job_dir(job) / self.STATUS_FILE
        if not path.exists():
            return {"status": "pending"}
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError):
            return {"status": "pending"}
        if not isinstance(payload, dict) or "status" not in payload:
            return {"status": "pending"}
        return payload

    def write_status(self, job: ExperimentJob, status: str, **extra: object) -> None:
        """Atomically record the job's lifecycle state (plus a timestamp)."""
        payload = {"status": status, "updated_at": time.time(), **extra}
        atomic_write_text(
            self.job_dir(job) / self.STATUS_FILE,
            json.dumps(payload, indent=2, sort_keys=True),
        )

    # -- results --------------------------------------------------------
    def save_history(self, job: ExperimentJob, history: TrainingHistory) -> Path:
        """Persist the finished history atomically as ``history.json``."""
        path = self.job_dir(job) / self.HISTORY_FILE
        return atomic_write_text(
            path, json.dumps(history_to_dict(history), indent=2, sort_keys=True)
        )

    def load_history(self, job: ExperimentJob) -> Optional[TrainingHistory]:
        """The stored finished history, or ``None`` when the job never completed."""
        path = self.job_dir(job) / self.HISTORY_FILE
        if not path.exists():
            return None
        return history_from_dict(json.loads(path.read_text()))

    def latest_checkpoint(self, job: ExperimentJob) -> Optional[Path]:
        """The job's most advanced checkpoint file (``None`` when there is none)."""
        return latest_checkpoint(self.checkpoints_dir(job))

    def prune_checkpoints(self, job: ExperimentJob, keep: int = 0) -> None:
        """Drop all but the newest ``keep`` checkpoints (finished jobs keep none)."""
        if keep < 0:
            raise ValueError("keep must be non-negative")
        checkpoints = list_checkpoints(self.checkpoints_dir(job))
        for path in checkpoints[: max(len(checkpoints) - keep, 0)]:
            path.unlink(missing_ok=True)


@dataclass
class JobResult:
    """Outcome of one grid cell.

    ``status`` is ``"done"`` (ran to completion), ``"cached"`` (a previous
    run's stored history was reused without executing anything),
    ``"partial"`` (interrupted by ``max_rounds_per_job``; a checkpoint holds
    the progress) or ``"failed"``.  ``history`` is present for done/cached.
    """

    job: ExperimentJob
    job_id: str
    status: str
    history: Optional[TrainingHistory] = None
    error: Optional[str] = None


def run_job(
    job: ExperimentJob,
    store: RunStore,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    max_rounds: Optional[int] = None,
    final_checkpoint: bool = False,
) -> Optional[TrainingHistory]:
    """Execute (or resume, or skip) one job inside its run directory.

    * ``done`` directories return the stored history without running;
    * a directory with checkpoints resumes from the latest one;
    * otherwise the run starts fresh.

    ``max_rounds`` caps the rounds executed in this call (the forced-interrupt
    hook used by tests and the CI smoke job); when the cap stops the run
    early, a checkpoint is written, status becomes ``partial`` and ``None``
    is returned.

    ``final_checkpoint`` writes one last snapshot *after* the final round and
    keeps it through pruning, so the run directory retains the finished
    fleet's ``(N, d)`` parameter matrix.  Post-hoc analyses — the
    privacy-frontier attacks in :mod:`repro.experiments.privacy_frontier` —
    load that state instead of re-running the campaign.
    """
    status = store.read_status(job)
    if status.get("status") == "done":
        history = store.load_history(job)
        if history is not None:
            return history
        # A "done" marker without its history is an inconsistent directory
        # (e.g. manual deletion); fall through and re-run from checkpoints.
    store.prepare(job)

    spec = job.spec
    try:
        components = build_experiment_components(spec)
        algorithm = build_algorithm(job.algorithm, components)
        evaluation = evaluation_for_spec(components)
        checkpoint = store.latest_checkpoint(job)
        if checkpoint is not None:
            session = RunSession.resume(
                algorithm,
                checkpoint,
                evaluation=evaluation,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=store.checkpoints_dir(job),
            )
        else:
            session = RunSession(
                algorithm,
                spec.num_rounds,
                evaluation=evaluation,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=store.checkpoints_dir(job),
            )
            history = session.start()
            history.metadata["spec"] = spec.name
            history.metadata["dirichlet_alpha"] = spec.dirichlet_alpha

        store.write_status(job, "running", rounds_completed=session.rounds_done)
        session.run(max_rounds=max_rounds)
    except Exception as error:
        store.write_status(job, "failed", error=f"{type(error).__name__}: {error}")
        raise
    # KeyboardInterrupt/SystemExit propagate untouched: an interrupt is not
    # a failure — the directory stays "running" (exactly like a SIGKILL) and
    # the next invocation resumes it from its latest checkpoint.
    if not session.done:
        session.checkpoint()
        store.write_status(job, "partial", rounds_completed=session.rounds_done)
        return None
    history = session.finish()
    store.save_history(job, history)
    if final_checkpoint:
        session.checkpoint()
        store.write_status(job, "done", rounds_completed=session.rounds_done)
        store.prune_checkpoints(job, keep=1)
    else:
        store.write_status(job, "done", rounds_completed=session.rounds_done)
        store.prune_checkpoints(job)
    return history


def _run_job_worker(
    args: Tuple[str, ExperimentJob, int, Optional[int], bool],
) -> Tuple[str, str, Optional[Dict[str, object]], Optional[str]]:
    """Pool entry point: run one job, return a picklable summary.

    Histories travel back as plain dicts (the same JSON form the store
    persists) so the parent does not depend on object identity across
    process boundaries.
    """
    root, job, checkpoint_every, max_rounds, final_checkpoint = args
    store = RunStore(root)
    job_id = job_hash(job)
    try:
        history = run_job(
            job,
            store,
            checkpoint_every=checkpoint_every,
            max_rounds=max_rounds,
            final_checkpoint=final_checkpoint,
        )
    except Exception as error:
        # Job failures are data, not control flow: the parent decides (via
        # strict=) whether to raise.  KeyboardInterrupt/SystemExit are NOT
        # caught — Ctrl-C must abort the campaign, not mark jobs failed and
        # march on through the rest of the grid.
        return job_id, "failed", None, f"{type(error).__name__}: {error}"
    if history is None:
        return job_id, "partial", None, None
    return job_id, "done", history_to_dict(history), None


def run_grid(
    grid: ExperimentGrid,
    root: PathLike,
    workers: int = 1,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    max_rounds_per_job: Optional[int] = None,
    jobs: Optional[Sequence[ExperimentJob]] = None,
    strict: bool = True,
    final_checkpoint: bool = False,
) -> List[JobResult]:
    """Execute a grid against a run store, in parallel when ``workers > 1``.

    Completed cells are served from the store without running; pending and
    partial cells execute (resuming from their latest checkpoint) on a
    ``ProcessPoolExecutor`` with ``workers`` processes — each job re-seeds
    itself from its own spec, so placement on workers cannot change any
    trajectory.  ``final_checkpoint`` is forwarded to :func:`run_job` so
    finished cells keep their last snapshot (the fleet state post-hoc
    attacks consume).  Results come back in job order.  With ``strict`` (the
    default) a failed job raises after every job has been given its chance;
    ``strict=False`` returns failures as :class:`JobResult` entries instead.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    store = RunStore(root)
    all_jobs = list(jobs) if jobs is not None else grid.jobs()
    results: Dict[int, JobResult] = {}
    pending: List[Tuple[int, ExperimentJob]] = []
    for index, job in enumerate(all_jobs):
        job_id = job_hash(job)
        if store.read_status(job).get("status") == "done":
            history = store.load_history(job)
            if history is not None:
                results[index] = JobResult(job, job_id, "cached", history)
                continue
        pending.append((index, job))

    payloads = [
        (str(store.root), job, checkpoint_every, max_rounds_per_job, final_checkpoint)
        for _, job in pending
    ]
    if workers == 1 or len(pending) <= 1:
        outcomes = [_run_job_worker(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            outcomes = list(pool.map(_run_job_worker, payloads))

    for (index, job), (job_id, status, history_payload, error) in zip(
        pending, outcomes
    ):
        history = (
            history_from_dict(history_payload) if history_payload is not None else None
        )
        results[index] = JobResult(job, job_id, status, history, error)

    ordered = [results[index] for index in range(len(all_jobs))]
    if strict:
        failed = [r for r in ordered if r.status == "failed"]
        if failed:
            summary = "; ".join(f"{r.job.describe()}: {r.error}" for r in failed)
            raise RuntimeError(f"{len(failed)} grid job(s) failed: {summary}")
    return ordered


def report_rows(
    results: Sequence[JobResult],
) -> List[Tuple[str, str, TrainingHistory]]:
    """``(algorithm, cell, history)`` rows for the report layer's aggregation.

    Cells without a history yet (partial / failed jobs) are omitted — the
    report covers what has actually finished.
    """
    return [
        (result.job.algorithm, result.job.cell, result.history)
        for result in results
        if result.history is not None
    ]
