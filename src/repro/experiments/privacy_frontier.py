"""The privacy frontier: attack success vs. privacy budget vs. codec.

The paper's defence story is qualitative — DP noise should blunt gradient
leakage — and this module makes it quantitative at fleet scale: an
orchestrator campaign sweeps ``epsilon`` (and optionally the gossip
compression codec) over a base spec, every finished cell keeps its final
fleet state (``final_checkpoint=True``), and the batched attack engines from
:mod:`repro.attacks.fleet` are mounted on each cell's ``(N, d)`` parameter
matrix:

* **membership inference** — every agent's shard is scored against held-out
  test examples under that agent's own final parameters, all agents in one
  stacked pass (:func:`~repro.attacks.fleet.membership_inference_fleet`);
* **gradient inversion** — each agent's clipped, epsilon-calibrated noised
  batch gradient (exactly the artefact a curious neighbour observes in
  training) is inverted for all agents simultaneously
  (:class:`~repro.attacks.fleet.FleetInversionAttack`).

The result is the frontier the paper never plots: membership advantage and
reconstruction error as functions of ``epsilon`` per codec, aggregated over
seeds, persisted as ``frontier.json`` next to the content-addressed run
directories so re-invocations are incremental (finished cells are cached by
the orchestrator; the attacks re-run only on demand).

Everything is deterministic: training jobs are seeded by their specs, attack
randomness comes from the per-victim stream convention
(``default_rng([seed, tag, agent])``), and the observation noise uses a
dedicated per-agent stream tag below.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.attacks.fleet import FleetInversionAttack, membership_inference_fleet
from repro.data.dataset import Dataset
from repro.experiments.harness import build_experiment_components
from repro.experiments.orchestrator import JobResult, RunStore, run_grid
from repro.experiments.specs import ExperimentGrid, ExperimentJob, ExperimentSpec
from repro.nn.batched import StackedSequential, supports_stacked
from repro.privacy.calibration import gaussian_sigma
from repro.privacy.mechanisms import GaussianMechanism
from repro.simulation.checkpoint import atomic_write_text, load_checkpoint

__all__ = [
    "OBSERVATION_STREAM_TAG",
    "NON_MEMBER_STREAM_TAG",
    "FRONTIER_FILE",
    "FrontierPoint",
    "frontier_grid",
    "load_final_state",
    "evaluate_job_attacks",
    "run_privacy_frontier",
    "frontier_report",
]

#: Per-agent stream for the DP noise added to the observed gradients
#: (``default_rng([seed, tag, agent])``, the codec/attack convention).
OBSERVATION_STREAM_TAG = 0x0B5
#: Stream drawing the held-out non-member sample from the test split.
NON_MEMBER_STREAM_TAG = 0x707
#: Artifact written at the campaign root by :func:`run_privacy_frontier`.
FRONTIER_FILE = "frontier.json"


@dataclass(frozen=True)
class FrontierPoint:
    """One aggregated frontier cell: an (algorithm, epsilon, codec) point.

    Attack metrics are means over all agents of all seeds of the cell;
    ``final_loss`` / ``final_accuracy`` come from the stored training
    histories, tying utility and leakage together in one row.
    """

    cell: str
    algorithm: str
    epsilon: float
    codec: str
    seeds: Tuple[int, ...]
    num_agents: int
    membership_advantage: float
    membership_accuracy: float
    inversion_error: float
    inversion_matching_loss: float
    final_loss: Optional[float]
    final_accuracy: Optional[float]


def frontier_grid(
    base: ExperimentSpec,
    epsilons: Sequence[float],
    codecs: Optional[Sequence[Optional[Union[str, Mapping[str, object]]]]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentGrid:
    """The campaign grid of a frontier sweep: ``epsilon x codec`` overrides.

    ``codecs`` entries may be ``None`` (uncompressed gossip), a codec name
    (``"topk"``, ``"int8"``, ...) or a full compression mapping; each is
    crossed with every ``epsilon``.  Algorithms and seeds are the usual grid
    axes.
    """
    if not epsilons:
        raise ValueError("need at least one epsilon")
    codec_list = list(codecs) if codecs else [None]
    overrides: List[Dict[str, object]] = []
    for epsilon in epsilons:
        for codec in codec_list:
            override: Dict[str, object] = {"epsilon": float(epsilon)}
            if codec is not None:
                override["compression"] = (
                    dict(codec) if isinstance(codec, Mapping) else {"codec": str(codec)}
                )
            overrides.append(override)
    return ExperimentGrid(
        base=base, algorithms=algorithms, seeds=seeds, overrides=overrides
    )


def load_final_state(store: RunStore, job: ExperimentJob) -> np.ndarray:
    """The finished fleet's ``(N, d)`` parameter matrix from the run directory.

    Requires the campaign to have been executed with ``final_checkpoint=True``
    (:func:`run_privacy_frontier` does) — a done cell without a retained
    checkpoint predates that option and must be re-run.
    """
    checkpoint = store.latest_checkpoint(job)
    if checkpoint is None:
        raise FileNotFoundError(
            f"run directory {store.job_dir(job)} holds no checkpoint with the "
            "final fleet state; re-run the campaign with final_checkpoint=True "
            "(e.g. via run_privacy_frontier or `repro-run frontier`)"
        )
    payload = load_checkpoint(checkpoint)
    state = np.asarray(payload["algorithm_state"]["state"], dtype=np.float64)
    if state.ndim != 2 or state.shape[0] != job.spec.num_agents:
        raise ValueError(
            f"checkpoint state has shape {state.shape}, expected "
            f"({job.spec.num_agents}, d)"
        )
    return state


def _codec_label(spec: ExperimentSpec) -> str:
    if not spec.compression:
        return "none"
    return str(dict(spec.compression).get("codec", "identity"))


def _observed_gradients(
    model,
    state: np.ndarray,
    victim_inputs: np.ndarray,
    victim_labels: np.ndarray,
    spec: ExperimentSpec,
) -> np.ndarray:
    """The per-agent artefacts an honest-but-curious neighbour sees.

    Each agent's mean batch gradient at its own final parameters, clipped and
    noised exactly like the training exchange: L2-clip to ``C`` then add
    ``N(0, sigma^2 I)`` with ``sigma`` calibrated from the spec's
    ``(epsilon, delta)`` at the training sensitivity ``2C / batch_size``.
    """
    n = state.shape[0]
    if supports_stacked(model):
        engine = StackedSequential(model)
        _, gradients = engine.loss_and_gradients(state, victim_inputs, victim_labels)
    else:
        gradients = np.stack(
            [
                model.loss_and_gradient(
                    victim_inputs[agent], victim_labels[agent], params=state[agent]
                )[1]
                for agent in range(n)
            ]
        )
    sigma = gaussian_sigma(
        spec.epsilon, spec.delta, 2.0 * spec.clip_threshold / float(spec.batch_size)
    )
    observed = np.empty_like(gradients)
    for agent in range(n):
        mechanism = GaussianMechanism(
            sigma,
            rng=np.random.default_rng([spec.seed, OBSERVATION_STREAM_TAG, agent]),
            clip_threshold=spec.clip_threshold,
        )
        observed[agent] = mechanism.add_noise(mechanism.clip(gradients[agent]))
    return observed


def evaluate_job_attacks(
    job: ExperimentJob,
    store: RunStore,
    inversion_iterations: int = 40,
    victim_batch: int = 4,
    max_eval_samples: int = 64,
    calibration_fraction: float = 0.5,
) -> Dict[str, float]:
    """Mount both fleet attacks on one finished cell's final state.

    Returns the per-job attack metrics (means over the cell's agents):
    ``membership_advantage``, ``membership_accuracy``, ``inversion_error``
    (greedy-matched reconstruction MSE against the true victim batches) and
    ``inversion_matching_loss``.
    """
    spec = job.spec
    state = load_final_state(store, job)
    components = build_experiment_components(spec)
    model = components.model_factory()
    shards = components.partition.shards
    shard_sizes = [len(shard) for shard in shards]

    # Membership: each agent's own shard (trimmed to a common length) against
    # one held-out non-member sample, all agents scored in one stacked pass.
    eval_samples = min(min(shard_sizes), int(max_eval_samples), len(components.test))
    if eval_samples < 4:
        raise ValueError(
            f"membership inference needs >= 4 examples per population, the "
            f"smallest shard/test split provides {eval_samples}"
        )
    members = [shard.subset(np.arange(eval_samples)) for shard in shards]
    non_member_rng = np.random.default_rng([spec.seed, NON_MEMBER_STREAM_TAG])
    non_members = components.test.sample(eval_samples, non_member_rng)
    membership = membership_inference_fleet(
        model,
        state,
        members,
        non_members,
        calibration_fraction=calibration_fraction,
        seed=spec.seed,
    )

    # Inversion: reconstruct each agent's leading batch from its noised
    # gradient observation, all agents in one batched SPSA loop.
    batch = min(int(victim_batch), min(shard_sizes))
    victim_inputs = np.stack(
        [np.asarray(shard.inputs[:batch], dtype=np.float64) for shard in shards]
    )
    victim_labels = np.stack(
        [np.asarray(shard.labels[:batch], dtype=np.int64) for shard in shards]
    )
    observed = _observed_gradients(model, state, victim_inputs, victim_labels, spec)
    attack = FleetInversionAttack(
        model,
        num_classes=spec.num_classes,
        iterations=inversion_iterations,
        seed=spec.seed,
    )
    inversion = attack.run(observed, state, batch, victim_inputs.shape[2:])
    errors = inversion.errors_against(victim_inputs)

    return {
        "membership_advantage": float(membership.mean_advantage),
        "membership_accuracy": float(membership.mean_accuracy),
        "inversion_error": float(errors.mean()),
        "inversion_matching_loss": float(inversion.matching_losses.mean()),
    }


def _final_utility(result: JobResult) -> Tuple[Optional[float], Optional[float]]:
    history = result.history
    if history is None or not history.records:
        return None, None
    last = history.records[-1]
    accuracy = history.final_test_accuracy
    if accuracy is None:
        accuracy = next(
            (
                record.test_accuracy
                for record in reversed(history.records)
                if record.test_accuracy is not None
            ),
            None,
        )
    return float(last.average_train_loss), accuracy


def run_privacy_frontier(
    grid: ExperimentGrid,
    root: Union[str, Path],
    workers: int = 1,
    checkpoint_every: int = 5,
    inversion_iterations: int = 40,
    victim_batch: int = 4,
    max_eval_samples: int = 64,
    write_artifact: bool = True,
) -> List[FrontierPoint]:
    """Run (or resume) the campaign, attack every cell, aggregate the frontier.

    Training goes through the standard orchestrator (content-addressed run
    directories, checkpoint/resume, optional process pool) with
    ``final_checkpoint=True`` so each cell retains its finished fleet state;
    the attacks then run over those states and the per-seed metrics are
    averaged into one :class:`FrontierPoint` per (cell, algorithm).  The
    aggregated frontier is persisted as ``<root>/frontier.json``.
    """
    store = RunStore(root)
    results = run_grid(
        grid,
        root,
        workers=workers,
        checkpoint_every=checkpoint_every,
        final_checkpoint=True,
    )

    grouped: Dict[Tuple[str, str], List[Tuple[JobResult, Dict[str, float]]]] = {}
    for result in results:
        metrics = evaluate_job_attacks(
            result.job,
            store,
            inversion_iterations=inversion_iterations,
            victim_batch=victim_batch,
            max_eval_samples=max_eval_samples,
        )
        grouped.setdefault((result.job.cell, result.job.algorithm), []).append(
            (result, metrics)
        )

    points: List[FrontierPoint] = []
    for (cell, algorithm), entries in grouped.items():
        spec = entries[0][0].job.spec
        losses, accuracies = zip(*(_final_utility(result) for result, _ in entries))
        mean = lambda key: float(np.mean([metrics[key] for _, metrics in entries]))
        known_losses = [value for value in losses if value is not None]
        known_accuracies = [value for value in accuracies if value is not None]
        points.append(
            FrontierPoint(
                cell=cell,
                algorithm=algorithm,
                epsilon=float(spec.epsilon),
                codec=_codec_label(spec),
                seeds=tuple(result.job.seed for result, _ in entries),
                num_agents=int(spec.num_agents),
                membership_advantage=mean("membership_advantage"),
                membership_accuracy=mean("membership_accuracy"),
                inversion_error=mean("inversion_error"),
                inversion_matching_loss=mean("inversion_matching_loss"),
                final_loss=float(np.mean(known_losses)) if known_losses else None,
                final_accuracy=(
                    float(np.mean(known_accuracies)) if known_accuracies else None
                ),
            )
        )
    points.sort(key=lambda p: (p.algorithm, p.codec, p.epsilon, p.cell))

    if write_artifact:
        payload = {
            "schema": 1,
            "parameters": {
                "inversion_iterations": int(inversion_iterations),
                "victim_batch": int(victim_batch),
                "max_eval_samples": int(max_eval_samples),
            },
            "points": [asdict(point) for point in points],
        }
        atomic_write_text(
            Path(root) / FRONTIER_FILE, json.dumps(payload, indent=2, sort_keys=True)
        )
    return points


def frontier_report(points: Sequence[FrontierPoint]) -> str:
    """Markdown table of the frontier, one row per (algorithm, codec, epsilon)."""
    lines = [
        "| algorithm | codec | epsilon | membership adv | membership acc "
        "| inversion MSE | final loss | final acc |",
        "|---|---|---:|---:|---:|---:|---:|---:|",
    ]
    for point in points:
        final_loss = "-" if point.final_loss is None else f"{point.final_loss:.4f}"
        final_accuracy = (
            "-" if point.final_accuracy is None else f"{point.final_accuracy:.4f}"
        )
        lines.append(
            f"| {point.algorithm} | {point.codec} | {point.epsilon:g} "
            f"| {point.membership_advantage:.4f} | {point.membership_accuracy:.4f} "
            f"| {point.inversion_error:.4f} | {final_loss} | {final_accuracy} |"
        )
    return "\n".join(lines)
