"""Formatting experiment results in the layout the paper uses.

* Loss curves (Figures 1–6): one series per algorithm, ``round -> average
  training loss``.
* Accuracy tables (Tables I–II): rows are algorithms, columns are
  ``(topology, M)`` cells for a fixed privacy budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.metrics import TrainingHistory

__all__ = [
    "loss_curve_series",
    "format_loss_curves",
    "accuracy_table_rows",
    "format_accuracy_table",
    "runtime_summary_rows",
    "format_runtime_table",
    "aggregate_cells",
    "format_cell_summary",
]


def loss_curve_series(
    histories: Mapping[str, TrainingHistory]
) -> Dict[str, List[Tuple[int, float]]]:
    """``{algorithm: [(round, average training loss), ...]}`` for plotting/printing."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for name, history in histories.items():
        series[name] = list(zip(history.rounds, history.losses))
    return series


def format_loss_curves(
    histories: Mapping[str, TrainingHistory],
    title: str = "Average training loss per round",
    max_rows: Optional[int] = None,
) -> str:
    """A plain-text table with one column per algorithm and one row per round."""
    names = list(histories.keys())
    if not names:
        return f"{title}\n(no results)"
    rounds = histories[names[0]].rounds
    lines = [title, "round  " + "  ".join(f"{name:>14s}" for name in names)]
    rows = list(range(len(rounds)))
    if max_rows is not None and len(rows) > max_rows:
        stride = max(1, len(rows) // max_rows)
        rows = rows[::stride] + ([rows[-1]] if rows[-1] not in rows[::stride] else [])
    for idx in rows:
        values = []
        for name in names:
            history = histories[name]
            values.append(f"{history.losses[idx]:>14.4f}" if idx < len(history.losses) else " " * 14)
        lines.append(f"{rounds[idx]:>5d}  " + "  ".join(values))
    return "\n".join(lines)


def runtime_summary_rows(
    histories: Mapping[str, TrainingHistory]
) -> Dict[str, Dict[str, float]]:
    """Per-algorithm runtime summary from the per-round wall-clock records.

    Returns ``{algorithm: {"total_seconds", "seconds_per_round", "rounds",
    "events"}}``; ``seconds_per_round`` divides by the number of *training*
    rounds covered by timed records (evaluation time is never included).
    """
    rows: Dict[str, Dict[str, float]] = {}
    for name, history in histories.items():
        total = history.total_wall_clock()
        rounds = history.metadata.get("rounds", history.rounds[-1] if history.records else 0)
        rows[name] = {
            "total_seconds": total,
            "seconds_per_round": total / rounds if rounds else 0.0,
            "rounds": float(rounds),
            "events": float(len(history.topology_events)),
        }
    return rows


def format_runtime_table(
    histories: Mapping[str, TrainingHistory],
    caption: str = "Training runtime (per-round wall clock)",
) -> str:
    """Render the runtime column next to each algorithm's convergence summary."""
    rows = runtime_summary_rows(histories)
    lines = [
        caption,
        f"{'method':<14s}{'rounds':>8s}{'runtime [s]':>14s}{'s/round':>12s}"
        f"{'events':>9s}{'final loss':>13s}",
    ]
    for name, row in rows.items():
        history = histories[name]
        final_loss = history.final_loss() if len(history) else float("nan")
        lines.append(
            f"{name:<14s}{int(row['rounds']):>8d}{row['total_seconds']:>14.3f}"
            f"{row['seconds_per_round']:>12.4f}{int(row['events']):>9d}"
            f"{final_loss:>13.4f}"
        )
    return "\n".join(lines)


def aggregate_cells(
    rows: Iterable[Tuple[str, str, TrainingHistory]],
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Aggregate multi-seed grid results into per-cell mean±std statistics.

    ``rows`` holds ``(algorithm, cell, history)`` triples — one per seed, as
    produced by :func:`repro.experiments.orchestrator.report_rows` — and the
    result maps ``(algorithm, cell)`` to ``{"seeds", "final_loss_mean",
    "final_loss_std", "final_accuracy_mean", "final_accuracy_std"}``.
    Accuracy statistics appear only when every seed of the cell recorded a
    final test accuracy; the standard deviation is the population std
    (``ddof=0`` — the seeds *are* the replication set being summarised).
    """
    grouped: Dict[Tuple[str, str], List[TrainingHistory]] = {}
    for algorithm, cell, history in rows:
        grouped.setdefault((algorithm, cell), []).append(history)
    aggregated: Dict[Tuple[str, str], Dict[str, float]] = {}
    for key, histories in grouped.items():
        losses = np.array([history.final_loss() for history in histories])
        stats: Dict[str, float] = {
            "seeds": float(len(histories)),
            "final_loss_mean": float(losses.mean()),
            "final_loss_std": float(losses.std()),
        }
        accuracies = [history.final_test_accuracy for history in histories]
        if all(accuracy is not None for accuracy in accuracies):
            observed = np.array([float(a) for a in accuracies])
            stats["final_accuracy_mean"] = float(observed.mean())
            stats["final_accuracy_std"] = float(observed.std())
        aggregated[key] = stats
    return aggregated


def format_cell_summary(
    rows: Iterable[Tuple[str, str, TrainingHistory]],
    caption: str = "Grid summary (mean±std over seeds)",
) -> str:
    """Render the multi-seed aggregation as a plain-text table.

    One row per ``(cell, algorithm)`` pair, sorted by cell then algorithm,
    with ``mean±std`` columns for the final loss and (when recorded) the
    final test accuracy.
    """
    aggregated = aggregate_cells(rows)
    lines = [
        caption,
        f"{'cell':<38s}{'method':<14s}{'seeds':>6s}{'final loss':>20s}"
        f"{'final accuracy':>20s}",
    ]
    for (algorithm, cell), stats in sorted(
        aggregated.items(), key=lambda item: (item[0][1], item[0][0])
    ):
        loss = f"{stats['final_loss_mean']:.4f}±{stats['final_loss_std']:.4f}"
        if "final_accuracy_mean" in stats:
            accuracy = (
                f"{stats['final_accuracy_mean']:.3f}±{stats['final_accuracy_std']:.3f}"
            )
        else:
            accuracy = "-"
        lines.append(
            f"{cell[:37]:<38s}{algorithm:<14s}{int(stats['seeds']):>6d}"
            f"{loss:>20s}{accuracy:>20s}"
        )
    return "\n".join(lines)


def accuracy_table_rows(
    results: Mapping[Tuple[str, int], Mapping[str, TrainingHistory]],
    algorithms: Sequence[str],
) -> Dict[str, Dict[Tuple[str, int], float]]:
    """Rearrange per-cell comparison results into ``{algorithm: {(topology, M): accuracy}}``.

    ``results`` maps ``(topology, num_agents)`` to the per-algorithm histories
    for that cell (as produced by :func:`repro.experiments.harness.run_comparison`).
    """
    table: Dict[str, Dict[Tuple[str, int], float]] = {name: {} for name in algorithms}
    for cell, histories in results.items():
        for name in algorithms:
            history = histories.get(name)
            if history is None:
                continue
            accuracy = history.final_test_accuracy
            if accuracy is None:
                accuracy = history.best_accuracy() or 0.0
            table[name][cell] = float(accuracy)
    return table


def format_accuracy_table(
    table: Mapping[str, Mapping[Tuple[str, int], float]],
    caption: str = "Test accuracy",
) -> str:
    """Render the accuracy table as text, one row per algorithm (paper Tables I–II layout)."""
    cells = sorted({cell for rows in table.values() for cell in rows})
    header = "method".ljust(14) + "".join(
        f"{topology[:10]:>12s}/M={agents:<3d}" for topology, agents in cells
    )
    lines = [caption, header]
    for name, row in table.items():
        rendered = "".join(
            f"{row.get(cell, float('nan')):>16.3f}" for cell in cells
        )
        lines.append(name.ljust(14) + rendered)
    return "\n".join(lines)
