"""Declarative experiment specifications and the paper presets.

An :class:`ExperimentSpec` fully determines one experimental cell: which
dataset family to generate, how to partition it, which topology and how many
agents, the privacy budget, the optimisation hyper-parameters, the number of
rounds, and which algorithms to compare.  The factory functions encode the
paper's settings:

* Figures 1–3 — synthetic-MNIST loss curves over fully-connected / bipartite
  / ring topologies, ``M in {10, 15, 20}``, ``epsilon in {0.08, 0.1, 0.3}``,
  ``alpha = 0.5``, ``gamma = 0.001`` (paper values);
* Figures 4–6 — synthetic-CIFAR loss curves over the same topologies,
  ``epsilon in {0.5, 0.7, 1.0}``, ``alpha = 0.7``, ``gamma = 0.01``;
* Tables I–II — final test accuracy over every (topology, M, epsilon) cell.

Because the substrate here is a NumPy simulator rather than a GPU cluster,
each preset also has a ``fast`` variant (smaller synthetic datasets, an MLP
instead of the CNN, fewer rounds) which the benchmark suite runs by default;
the full-size settings remain available by passing ``scale="paper"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.schedule import validate_dynamics

__all__ = [
    "ALGORITHM_NAMES",
    "ExperimentSpec",
    "fast_spec",
    "mnist_like_spec",
    "cifar_like_spec",
    "paper_figure_spec",
    "paper_table_spec",
]

#: The algorithms compared in every figure and table of the paper.
ALGORITHM_NAMES: Tuple[str, ...] = (
    "DP-DPSGD",
    "DP-CGA",
    "MUFFLIATO",
    "DP-NET-FLEET",
    "PDSL",
)

#: Paper hyper-parameters per dataset family (Sec. VI-A).
_PAPER_HYPERPARAMS: Dict[str, Dict[str, float]] = {
    "mnist": {"momentum": 0.5, "learning_rate": 0.001, "batch_size": 250},
    "cifar": {"momentum": 0.7, "learning_rate": 0.01, "batch_size": 250},
}

#: Paper privacy budgets per dataset family.
_PAPER_EPSILONS: Dict[str, Tuple[float, ...]] = {
    "mnist": (0.08, 0.1, 0.3),
    "cifar": (0.5, 0.7, 1.0),
}

#: Paper figure index -> (dataset family, topology).
_PAPER_FIGURES: Dict[int, Tuple[str, str]] = {
    1: ("mnist", "fully_connected"),
    2: ("mnist", "bipartite"),
    3: ("mnist", "ring"),
    4: ("cifar", "fully_connected"),
    5: ("cifar", "bipartite"),
    6: ("cifar", "ring"),
}


@dataclass
class ExperimentSpec:
    """Everything needed to run one experimental cell.

    ``dynamics`` (optional) makes the communication topology time-varying:
    a mapping over the :data:`repro.topology.schedule.DYNAMICS_KEYS`
    vocabulary, e.g. ``{"rewire_every": 50, "churn_rate": 0.01,
    "straggler_fraction": 0.1}``, turned into a
    :class:`~repro.topology.schedule.DynamicTopologySchedule` by the
    harness and applied identically to every compared algorithm.  ``None``
    (the default) keeps the historical fixed-graph behaviour.
    """

    name: str
    dataset: str = "classification"  # "classification", "mnist", "cifar"
    model: str = "mlp"  # "linear", "mlp", "mnist_cnn", "cifar_cnn"
    num_agents: int = 10
    topology: str = "fully_connected"  # "fully_connected", "bipartite", "ring", ...
    dirichlet_alpha: float = 0.25
    epsilon: float = 0.3
    delta: float = 1e-5
    clip_threshold: float = 1.0
    learning_rate: float = 0.05
    momentum: float = 0.5
    batch_size: int = 32
    num_rounds: int = 20
    train_samples: int = 1500
    validation_samples: int = 200
    test_samples: int = 400
    num_classes: int = 10
    num_features: int = 32
    shapley_permutations: int = 4
    eval_every: int = 1
    seed: int = 7
    algorithms: Sequence[str] = field(default_factory=lambda: list(ALGORITHM_NAMES))
    scale: str = "fast"
    dynamics: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.dataset not in ("classification", "mnist", "cifar"):
            raise ValueError("dataset must be 'classification', 'mnist' or 'cifar'")
        if self.model not in ("linear", "mlp", "mnist_cnn", "cifar_cnn"):
            raise ValueError("unknown model family")
        if self.num_agents < 2:
            raise ValueError("need at least two agents")
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        unknown = [a for a in self.algorithms if a not in ALGORITHM_NAMES + ("D-PSGD", "DMSGD")]
        if unknown:
            raise ValueError(f"unknown algorithms: {unknown}")
        validate_dynamics(self.dynamics, num_agents=self.num_agents)

    def with_updates(self, **kwargs) -> "ExperimentSpec":
        from dataclasses import replace

        return replace(self, **kwargs)


def fast_spec(
    num_agents: int = 6,
    epsilon: float = 0.3,
    topology: str = "fully_connected",
    num_rounds: int = 12,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 7,
    dynamics: Optional[Dict[str, float]] = None,
) -> ExperimentSpec:
    """A small spec (generic Gaussian-cluster data + linear model) for tests and CI."""
    return ExperimentSpec(
        dynamics=dynamics,
        name=f"fast_{topology}_M{num_agents}_eps{epsilon}",
        dataset="classification",
        model="linear",
        num_agents=num_agents,
        topology=topology,
        epsilon=epsilon,
        learning_rate=0.05,
        momentum=0.5,
        batch_size=100,
        num_rounds=num_rounds,
        train_samples=1800,
        validation_samples=150,
        test_samples=400,
        num_classes=6,
        num_features=24,
        shapley_permutations=3,
        algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
        seed=seed,
        scale="fast",
    )


def mnist_like_spec(
    num_agents: int = 10,
    epsilon: float = 0.3,
    topology: str = "fully_connected",
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> ExperimentSpec:
    """The MNIST experiment family (Figures 1–3, Table I).

    ``scale="fast"`` uses the synthetic-MNIST generator with an MLP and a
    modest number of rounds so the whole grid runs in minutes;
    ``scale="paper"`` uses the paper's CNN, batch size 250 and 180 rounds.
    """
    hyper = _PAPER_HYPERPARAMS["mnist"]
    if scale == "paper":
        return ExperimentSpec(
            name=f"mnist_{topology}_M{num_agents}_eps{epsilon}",
            dataset="mnist",
            model="mnist_cnn",
            num_agents=num_agents,
            topology=topology,
            epsilon=epsilon,
            learning_rate=hyper["learning_rate"],
            momentum=hyper["momentum"],
            batch_size=int(hyper["batch_size"]),
            num_rounds=180,
            train_samples=60_000,
            validation_samples=2_000,
            test_samples=8_000,
            num_classes=10,
            shapley_permutations=4,
            eval_every=5,
            algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
            seed=seed,
            scale="paper",
        )
    return ExperimentSpec(
        name=f"mnist_fast_{topology}_M{num_agents}_eps{epsilon}",
        dataset="classification",
        model="linear",
        num_agents=num_agents,
        topology=topology,
        epsilon=epsilon,
        learning_rate=0.05,
        momentum=hyper["momentum"],
        batch_size=100,
        num_rounds=20,
        train_samples=2400,
        validation_samples=150,
        test_samples=400,
        num_classes=10,
        num_features=32,
        shapley_permutations=3,
        algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
        seed=seed,
        scale="fast",
    )


def cifar_like_spec(
    num_agents: int = 10,
    epsilon: float = 1.0,
    topology: str = "fully_connected",
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 11,
) -> ExperimentSpec:
    """The CIFAR-10 experiment family (Figures 4–6, Table II)."""
    hyper = _PAPER_HYPERPARAMS["cifar"]
    if scale == "paper":
        return ExperimentSpec(
            name=f"cifar_{topology}_M{num_agents}_eps{epsilon}",
            dataset="cifar",
            model="cifar_cnn",
            num_agents=num_agents,
            topology=topology,
            epsilon=epsilon,
            learning_rate=hyper["learning_rate"],
            momentum=hyper["momentum"],
            batch_size=int(hyper["batch_size"]),
            num_rounds=200,
            train_samples=50_000,
            validation_samples=2_000,
            test_samples=8_000,
            num_classes=10,
            shapley_permutations=4,
            eval_every=5,
            algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
            seed=seed,
            scale="paper",
        )
    return ExperimentSpec(
        name=f"cifar_fast_{topology}_M{num_agents}_eps{epsilon}",
        dataset="classification",
        model="linear",
        num_agents=num_agents,
        topology=topology,
        epsilon=epsilon,
        learning_rate=0.05,
        momentum=hyper["momentum"],
        batch_size=100,
        num_rounds=20,
        train_samples=2400,
        validation_samples=150,
        test_samples=400,
        num_classes=10,
        num_features=48,
        shapley_permutations=3,
        algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
        seed=seed,
        scale="fast",
    )


def paper_figure_spec(
    figure: int,
    num_agents: int = 10,
    epsilon: Optional[float] = None,
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """Spec for one panel of a paper figure (Figure 1–6).

    ``epsilon`` defaults to the largest budget of that figure's sweep (the
    panel the paper discusses most).
    """
    if figure not in _PAPER_FIGURES:
        raise ValueError(f"figure must be one of {sorted(_PAPER_FIGURES)}")
    family, topology = _PAPER_FIGURES[figure]
    epsilons = _PAPER_EPSILONS[family]
    chosen_epsilon = epsilon if epsilon is not None else epsilons[-1]
    if chosen_epsilon not in epsilons and epsilon is not None:
        # allow off-grid epsilons but keep the paper's defaults discoverable
        pass
    maker = mnist_like_spec if family == "mnist" else cifar_like_spec
    spec = maker(
        num_agents=num_agents,
        epsilon=chosen_epsilon,
        topology=topology,
        scale=scale,
        algorithms=algorithms,
    )
    return spec.with_updates(name=f"figure{figure}_M{num_agents}_eps{chosen_epsilon}")


def paper_table_spec(
    table: int,
    topology: str,
    num_agents: int,
    epsilon: float,
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """Spec for one cell of Table I (``table=1``, MNIST) or Table II (``table=2``, CIFAR)."""
    if table == 1:
        spec = mnist_like_spec(
            num_agents=num_agents, epsilon=epsilon, topology=topology, scale=scale, algorithms=algorithms
        )
    elif table == 2:
        spec = cifar_like_spec(
            num_agents=num_agents, epsilon=epsilon, topology=topology, scale=scale, algorithms=algorithms
        )
    else:
        raise ValueError("table must be 1 (MNIST) or 2 (CIFAR)")
    return spec.with_updates(name=f"table{table}_{topology}_M{num_agents}_eps{epsilon}")
