"""Declarative experiment specifications and the paper presets.

An :class:`ExperimentSpec` fully determines one experimental cell: which
dataset family to generate, how to partition it, which topology and how many
agents, the privacy budget, the optimisation hyper-parameters, the number of
rounds, and which algorithms to compare.  The factory functions encode the
paper's settings:

* Figures 1–3 — synthetic-MNIST loss curves over fully-connected / bipartite
  / ring topologies, ``M in {10, 15, 20}``, ``epsilon in {0.08, 0.1, 0.3}``,
  ``alpha = 0.5``, ``gamma = 0.001`` (paper values);
* Figures 4–6 — synthetic-CIFAR loss curves over the same topologies,
  ``epsilon in {0.5, 0.7, 1.0}``, ``alpha = 0.7``, ``gamma = 0.01``;
* Tables I–II — final test accuracy over every (topology, M, epsilon) cell.

Because the substrate here is a NumPy simulator rather than a GPU cluster,
each preset also has a ``fast`` variant (smaller synthetic datasets, an MLP
instead of the CNN, fewer rounds) which the benchmark suite runs by default;
the full-size settings remain available by passing ``scale="paper"``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compression.config import validate_compression
from repro.simulation.events.traces import validate_time_model
from repro.topology.schedule import validate_dynamics

__all__ = [
    "ALGORITHM_NAMES",
    "ExperimentSpec",
    "ExperimentJob",
    "ExperimentGrid",
    "spec_to_dict",
    "spec_from_dict",
    "grid_to_dict",
    "grid_from_dict",
    "fast_spec",
    "mnist_like_spec",
    "cifar_like_spec",
    "paper_figure_spec",
    "paper_table_spec",
]

#: The algorithms compared in every figure and table of the paper.
ALGORITHM_NAMES: Tuple[str, ...] = (
    "DP-DPSGD",
    "DP-CGA",
    "MUFFLIATO",
    "DP-NET-FLEET",
    "PDSL",
)

#: Paper hyper-parameters per dataset family (Sec. VI-A).
_PAPER_HYPERPARAMS: Dict[str, Dict[str, float]] = {
    "mnist": {"momentum": 0.5, "learning_rate": 0.001, "batch_size": 250},
    "cifar": {"momentum": 0.7, "learning_rate": 0.01, "batch_size": 250},
}

#: Paper privacy budgets per dataset family.
_PAPER_EPSILONS: Dict[str, Tuple[float, ...]] = {
    "mnist": (0.08, 0.1, 0.3),
    "cifar": (0.5, 0.7, 1.0),
}

#: Every algorithm the harness can instantiate (paper set + ablation extras).
_VALID_ALGORITHMS: Tuple[str, ...] = ALGORITHM_NAMES + ("D-PSGD", "DMSGD")

#: Paper figure index -> (dataset family, topology).
_PAPER_FIGURES: Dict[int, Tuple[str, str]] = {
    1: ("mnist", "fully_connected"),
    2: ("mnist", "bipartite"),
    3: ("mnist", "ring"),
    4: ("cifar", "fully_connected"),
    5: ("cifar", "bipartite"),
    6: ("cifar", "ring"),
}


@dataclass
class ExperimentSpec:
    """Everything needed to run one experimental cell.

    ``dynamics`` (optional) makes the communication topology time-varying:
    a mapping over the :data:`repro.topology.schedule.DYNAMICS_KEYS`
    vocabulary, e.g. ``{"rewire_every": 50, "churn_rate": 0.01,
    "straggler_fraction": 0.1}``, turned into a
    :class:`~repro.topology.schedule.DynamicTopologySchedule` by the
    harness and applied identically to every compared algorithm.  ``None``
    (the default) keeps the historical fixed-graph behaviour.

    ``compression`` (optional) compresses the gossip exchanges: a mapping
    over the :data:`repro.compression.config.COMPRESSION_KEYS` vocabulary,
    e.g. ``{"codec": "topk", "k": 8, "communication_interval": 2}``, passed
    through :class:`~repro.core.config.AlgorithmConfig` to every compared
    algorithm.  ``None`` (the default) keeps the bit-identical
    full-precision path.

    ``dtype`` and ``block_rows`` are the scaling knobs (see
    :class:`~repro.core.config.AlgorithmConfig`): ``dtype`` selects the
    fleet-state precision (``"float64"`` historic bit-exact, ``"float32"``,
    or ``"mixed"`` — float32 state with float64 mixing accumulation), and
    ``block_rows`` streams the fleet-wide kernels over row blocks
    (bit-identical to one-shot; ``None`` keeps the one-shot path).
    ``block_workers`` executes independent row blocks of a streamed round on
    a thread pool (1 = serial, the bit-identical default; parallel execution
    is numerically identical — disjoint rows, pre-split RNG streams), and
    ``storage`` selects where the fleet matrices live (``"ram"`` or
    ``"memmap"`` for disk-backed out-of-core state).

    ``cluster_size`` applies only with ``topology="hierarchical"``: the
    dense intra-cluster group size (``None`` picks
    :func:`~repro.topology.hierarchical.default_cluster_size`).

    ``time_model`` (optional) runs the cell on simulated time: a mapping
    over the :data:`repro.simulation.events.traces.TIME_MODEL_KEYS`
    vocabulary, e.g. ``{"traces": {"kind": "synthetic", "seed": 3},
    "async": True, "staleness_decay": 0.1}``, turned into an
    :class:`~repro.simulation.events.engine.AsyncEngine` wrapper by the
    harness.  ``None`` (the default) keeps real-time-only execution;
    ``{"traces": "uniform"}`` simulates timing while staying bit-identical
    to the synchronous engines.
    """

    name: str
    dataset: str = "classification"  # "classification", "mnist", "cifar"
    model: str = "mlp"  # "linear", "mlp", "mnist_cnn", "cifar_cnn"
    num_agents: int = 10
    topology: str = "fully_connected"  # "fully_connected", "bipartite", "ring", ...
    dirichlet_alpha: float = 0.25
    epsilon: float = 0.3
    delta: float = 1e-5
    clip_threshold: float = 1.0
    learning_rate: float = 0.05
    momentum: float = 0.5
    batch_size: int = 32
    num_rounds: int = 20
    train_samples: int = 1500
    validation_samples: int = 200
    test_samples: int = 400
    num_classes: int = 10
    num_features: int = 32
    shapley_permutations: int = 4
    eval_every: int = 1
    seed: int = 7
    algorithms: Sequence[str] = field(default_factory=lambda: list(ALGORITHM_NAMES))
    scale: str = "fast"
    dynamics: Optional[Dict[str, float]] = None
    compression: Optional[Dict[str, object]] = None
    dtype: str = "float64"
    block_rows: Optional[int] = None
    block_workers: int = 1
    storage: str = "ram"
    cluster_size: Optional[int] = None
    time_model: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.dataset not in ("classification", "mnist", "cifar"):
            raise ValueError("dataset must be 'classification', 'mnist' or 'cifar'")
        if self.model not in ("linear", "mlp", "mnist_cnn", "cifar_cnn"):
            raise ValueError("unknown model family")
        if self.num_agents < 2:
            raise ValueError("need at least two agents")
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        unknown = [a for a in self.algorithms if a not in _VALID_ALGORITHMS]
        if unknown:
            raise ValueError(f"unknown algorithms: {unknown}")
        validate_dynamics(self.dynamics, num_agents=self.num_agents)
        validate_compression(self.compression)
        if self.dtype not in ("float64", "float32", "mixed"):
            raise ValueError("dtype must be 'float64', 'float32' or 'mixed'")
        if self.block_rows is not None and int(self.block_rows) < 1:
            raise ValueError("block_rows must be a positive integer or None")
        if int(self.block_workers) < 1:
            raise ValueError("block_workers must be a positive integer")
        if self.storage not in ("ram", "memmap"):
            raise ValueError("storage must be 'ram' or 'memmap'")
        if self.cluster_size is not None:
            if int(self.cluster_size) < 1:
                raise ValueError("cluster_size must be a positive integer or None")
            if self.topology != "hierarchical":
                raise ValueError(
                    "cluster_size applies only with topology='hierarchical'"
                )
        validate_time_model(self.time_model, num_agents=self.num_agents)

    def with_updates(self, **kwargs) -> "ExperimentSpec":
        from dataclasses import replace

        return replace(self, **kwargs)


def fast_spec(
    num_agents: int = 6,
    epsilon: float = 0.3,
    topology: str = "fully_connected",
    num_rounds: int = 12,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 7,
    dynamics: Optional[Dict[str, float]] = None,
    compression: Optional[Dict[str, object]] = None,
    time_model: Optional[Dict[str, object]] = None,
) -> ExperimentSpec:
    """A small spec (generic Gaussian-cluster data + linear model) for tests and CI."""
    return ExperimentSpec(
        dynamics=dynamics,
        compression=compression,
        time_model=time_model,
        name=f"fast_{topology}_M{num_agents}_eps{epsilon}",
        dataset="classification",
        model="linear",
        num_agents=num_agents,
        topology=topology,
        epsilon=epsilon,
        learning_rate=0.05,
        momentum=0.5,
        batch_size=100,
        num_rounds=num_rounds,
        train_samples=1800,
        validation_samples=150,
        test_samples=400,
        num_classes=6,
        num_features=24,
        shapley_permutations=3,
        algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
        seed=seed,
        scale="fast",
    )


def mnist_like_spec(
    num_agents: int = 10,
    epsilon: float = 0.3,
    topology: str = "fully_connected",
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> ExperimentSpec:
    """The MNIST experiment family (Figures 1–3, Table I).

    ``scale="fast"`` uses the synthetic-MNIST generator with an MLP and a
    modest number of rounds so the whole grid runs in minutes;
    ``scale="paper"`` uses the paper's CNN, batch size 250 and 180 rounds.
    """
    hyper = _PAPER_HYPERPARAMS["mnist"]
    if scale == "paper":
        return ExperimentSpec(
            name=f"mnist_{topology}_M{num_agents}_eps{epsilon}",
            dataset="mnist",
            model="mnist_cnn",
            num_agents=num_agents,
            topology=topology,
            epsilon=epsilon,
            learning_rate=hyper["learning_rate"],
            momentum=hyper["momentum"],
            batch_size=int(hyper["batch_size"]),
            num_rounds=180,
            train_samples=60_000,
            validation_samples=2_000,
            test_samples=8_000,
            num_classes=10,
            shapley_permutations=4,
            eval_every=5,
            algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
            seed=seed,
            scale="paper",
        )
    return ExperimentSpec(
        name=f"mnist_fast_{topology}_M{num_agents}_eps{epsilon}",
        dataset="classification",
        model="linear",
        num_agents=num_agents,
        topology=topology,
        epsilon=epsilon,
        learning_rate=0.05,
        momentum=hyper["momentum"],
        batch_size=100,
        num_rounds=20,
        train_samples=2400,
        validation_samples=150,
        test_samples=400,
        num_classes=10,
        num_features=32,
        shapley_permutations=3,
        algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
        seed=seed,
        scale="fast",
    )


def cifar_like_spec(
    num_agents: int = 10,
    epsilon: float = 1.0,
    topology: str = "fully_connected",
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 11,
) -> ExperimentSpec:
    """The CIFAR-10 experiment family (Figures 4–6, Table II)."""
    hyper = _PAPER_HYPERPARAMS["cifar"]
    if scale == "paper":
        return ExperimentSpec(
            name=f"cifar_{topology}_M{num_agents}_eps{epsilon}",
            dataset="cifar",
            model="cifar_cnn",
            num_agents=num_agents,
            topology=topology,
            epsilon=epsilon,
            learning_rate=hyper["learning_rate"],
            momentum=hyper["momentum"],
            batch_size=int(hyper["batch_size"]),
            num_rounds=200,
            train_samples=50_000,
            validation_samples=2_000,
            test_samples=8_000,
            num_classes=10,
            shapley_permutations=4,
            eval_every=5,
            algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
            seed=seed,
            scale="paper",
        )
    return ExperimentSpec(
        name=f"cifar_fast_{topology}_M{num_agents}_eps{epsilon}",
        dataset="classification",
        model="linear",
        num_agents=num_agents,
        topology=topology,
        epsilon=epsilon,
        learning_rate=0.05,
        momentum=hyper["momentum"],
        batch_size=100,
        num_rounds=20,
        train_samples=2400,
        validation_samples=150,
        test_samples=400,
        num_classes=10,
        num_features=48,
        shapley_permutations=3,
        algorithms=list(algorithms) if algorithms is not None else list(ALGORITHM_NAMES),
        seed=seed,
        scale="fast",
    )


def paper_figure_spec(
    figure: int,
    num_agents: int = 10,
    epsilon: Optional[float] = None,
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """Spec for one panel of a paper figure (Figure 1–6).

    ``epsilon`` defaults to the largest budget of that figure's sweep (the
    panel the paper discusses most).
    """
    if figure not in _PAPER_FIGURES:
        raise ValueError(f"figure must be one of {sorted(_PAPER_FIGURES)}")
    family, topology = _PAPER_FIGURES[figure]
    epsilons = _PAPER_EPSILONS[family]
    chosen_epsilon = epsilon if epsilon is not None else epsilons[-1]
    if chosen_epsilon not in epsilons and epsilon is not None:
        # allow off-grid epsilons but keep the paper's defaults discoverable
        pass
    maker = mnist_like_spec if family == "mnist" else cifar_like_spec
    spec = maker(
        num_agents=num_agents,
        epsilon=chosen_epsilon,
        topology=topology,
        scale=scale,
        algorithms=algorithms,
    )
    return spec.with_updates(name=f"figure{figure}_M{num_agents}_eps{chosen_epsilon}")


def paper_table_spec(
    table: int,
    topology: str,
    num_agents: int,
    epsilon: float,
    scale: str = "fast",
    algorithms: Optional[Sequence[str]] = None,
) -> ExperimentSpec:
    """Spec for one cell of Table I (``table=1``, MNIST) or Table II (``table=2``, CIFAR)."""
    if table == 1:
        spec = mnist_like_spec(
            num_agents=num_agents, epsilon=epsilon, topology=topology, scale=scale, algorithms=algorithms
        )
    elif table == 2:
        spec = cifar_like_spec(
            num_agents=num_agents, epsilon=epsilon, topology=topology, scale=scale, algorithms=algorithms
        )
    else:
        raise ValueError("table must be 1 (MNIST) or 2 (CIFAR)")
    return spec.with_updates(name=f"table{table}_{topology}_M{num_agents}_eps{epsilon}")


# ---------------------------------------------------------------------------
# Spec serialisation and experiment grids
# ---------------------------------------------------------------------------

_SPEC_FIELDS: Tuple[str, ...] = tuple(f.name for f in dataclass_fields(ExperimentSpec))

#: Grid overrides may vary any spec field except these: ``seed`` has its own
#: axis, ``name`` is derived per cell, and ``algorithms`` has its own axis
#: (one job per algorithm).
_RESERVED_OVERRIDE_KEYS = frozenset({"seed", "name", "algorithms"})


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, object]:
    """JSON-serialisable form of a spec (inverse of :func:`spec_from_dict`).

    Field order follows the dataclass declaration, so the canonical JSON of
    a spec — and therefore a job's content hash — is stable.
    """
    payload: Dict[str, object] = {}
    for name in _SPEC_FIELDS:
        value = getattr(spec, name)
        if name == "algorithms":
            value = list(value)
        elif name == "dynamics" and value is not None:
            value = dict(value)
        elif name == "compression" and value is not None:
            value = dict(value)
        elif name == "time_model" and value is not None:
            value = dict(value)
        payload[name] = value
    return payload


def spec_from_dict(payload: Mapping[str, object]) -> ExperimentSpec:
    """Rebuild a spec from :func:`spec_to_dict` output (strict about keys)."""
    if "name" not in payload:
        raise ValueError("a spec dict requires at least a 'name'")
    unknown = sorted(set(payload) - set(_SPEC_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown spec fields: {unknown}; expected a subset of "
            f"{sorted(_SPEC_FIELDS)}"
        )
    return ExperimentSpec(**dict(payload))


@dataclass(frozen=True)
class ExperimentJob:
    """One cell of an experiment grid: a fully resolved spec plus one algorithm.

    ``cell`` groups jobs that differ only by seed (the replication axis) so
    the report layer can aggregate multi-seed cells into mean±std rows.
    """

    spec: ExperimentSpec
    algorithm: str
    cell: str

    @property
    def seed(self) -> int:
        return self.spec.seed

    def describe(self) -> str:
        return f"{self.algorithm} @ {self.cell} (seed {self.seed})"


def _override_label(override: Mapping[str, object]) -> str:
    return ",".join(f"{key}={override[key]}" for key in sorted(override))


@dataclass
class ExperimentGrid:
    """A declarative experiment campaign: ``algorithms x seeds x overrides``.

    ``base`` supplies every default; each override dict patches a subset of
    spec fields (a new topology, privacy budget, round count, ...); each
    seed replicates every cell.  The full cross product is validated and
    expanded **at construction time** — duplicate seeds, duplicate
    overrides, reserved or unknown override keys, and invalid resulting
    specs (e.g. a non-positive ``num_rounds``) are all rejected here, with
    the offending entry named, instead of failing mid-campaign.
    """

    base: ExperimentSpec
    algorithms: Optional[Sequence[str]] = None
    seeds: Optional[Sequence[int]] = None
    overrides: Optional[Sequence[Mapping[str, object]]] = None

    def __post_init__(self) -> None:
        self.algorithms = (
            list(self.base.algorithms) if self.algorithms is None else list(self.algorithms)
        )
        self.seeds = [self.base.seed] if self.seeds is None else [int(s) for s in self.seeds]
        self.overrides = (
            [{}] if self.overrides is None else [dict(o) for o in self.overrides]
        )
        if not self.algorithms:
            raise ValueError("an experiment grid needs at least one algorithm")
        if not self.seeds:
            raise ValueError("an experiment grid needs at least one seed")
        if not self.overrides:
            raise ValueError(
                "overrides must contain at least one entry ({} runs the base spec)"
            )
        unknown = [a for a in self.algorithms if a not in _VALID_ALGORITHMS]
        if unknown:
            raise ValueError(f"unknown algorithms: {unknown}")
        duplicate_algorithms = sorted(
            {a for a in self.algorithms if self.algorithms.count(a) > 1}
        )
        if duplicate_algorithms:
            raise ValueError(f"duplicate algorithms in grid: {duplicate_algorithms}")
        duplicate_seeds = sorted({s for s in self.seeds if self.seeds.count(s) > 1})
        if duplicate_seeds:
            raise ValueError(
                f"duplicate seeds in grid: {duplicate_seeds} — each seed is one "
                "replication; repeating it would run (and average) the identical "
                "trajectory twice"
            )
        seen_overrides: Dict[str, int] = {}
        for index, override in enumerate(self.overrides):
            reserved = sorted(set(override) & _RESERVED_OVERRIDE_KEYS)
            if reserved:
                raise ValueError(
                    f"override #{index} sets reserved keys {reserved}: 'seed' and "
                    "'algorithms' are grid axes, 'name' is derived per cell"
                )
            unknown_keys = sorted(set(override) - set(_SPEC_FIELDS))
            if unknown_keys:
                raise ValueError(
                    f"override #{index} has unknown spec fields: {unknown_keys}"
                )
            key = json.dumps(override, sort_keys=True, default=str)
            if key in seen_overrides:
                raise ValueError(
                    f"override #{index} duplicates override #{seen_overrides[key]}: "
                    f"{override!r}"
                )
            seen_overrides[key] = index
        # Expand eagerly so an invalid grid point (e.g. num_rounds <= 0, an
        # unknown topology name combined with the base) fails at parse time
        # with the offending cell named.
        self._jobs: List[ExperimentJob] = []
        for index, override in enumerate(self.overrides):
            cell = (
                self.base.name
                if not override
                else f"{self.base.name}+{_override_label(override)}"
            )
            for seed in self.seeds:
                for algorithm in self.algorithms:
                    # Each job's spec names only its own algorithm: the
                    # grid's roster must not leak into the spec (and hence
                    # into the job's content hash), or adding one algorithm
                    # to a campaign would re-address — and retrain — every
                    # already-finished cell.
                    try:
                        spec = self.base.with_updates(
                            **override, seed=seed, name=cell, algorithms=[algorithm]
                        )
                    except (TypeError, ValueError) as error:
                        raise ValueError(
                            f"invalid grid point (override #{index} {override!r}, "
                            f"seed {seed}): {error}"
                        ) from error
                    self._jobs.append(
                        ExperimentJob(spec=spec, algorithm=algorithm, cell=cell)
                    )

    def jobs(self) -> List[ExperimentJob]:
        """The expanded cross product, in deterministic (override, seed, algorithm) order."""
        return list(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)


def grid_to_dict(grid: ExperimentGrid) -> Dict[str, object]:
    """JSON-serialisable form of a grid (inverse of :func:`grid_from_dict`)."""
    return {
        "base": spec_to_dict(grid.base),
        "algorithms": list(grid.algorithms),
        "seeds": list(grid.seeds),
        "overrides": [dict(o) for o in grid.overrides],
    }


def grid_from_dict(payload: Mapping[str, object]) -> ExperimentGrid:
    """Parse a grid declaration (the ``repro-run`` spec-file format).

    Accepts either the full form ``{"base": {...spec...}, "algorithms":
    [...], "seeds": [...], "overrides": [{...}]}`` or a bare spec dict
    (shorthand for a one-cell grid over the spec's own algorithms and seed).
    """
    if not isinstance(payload, Mapping):
        raise ValueError("a grid declaration must be a JSON object")
    if "base" not in payload:
        return ExperimentGrid(base=spec_from_dict(payload))
    unknown = sorted(set(payload) - {"base", "algorithms", "seeds", "overrides"})
    if unknown:
        raise ValueError(
            f"unknown grid keys: {unknown}; expected 'base', 'algorithms', "
            "'seeds', 'overrides'"
        )
    return ExperimentGrid(
        base=spec_from_dict(payload["base"]),
        algorithms=payload.get("algorithms"),
        seeds=payload.get("seeds"),
        overrides=payload.get("overrides"),
    )
