"""Cooperative-game substrate: characteristic functions and Shapley values.

Implements Sec. III-C of the paper:

* :class:`CooperativeGame` — a set of players and a characteristic function
  ``v : 2^Z -> R`` with ``v(emptyset) = 0``;
* :func:`exact_shapley` — the exact Shapley value via the subset form (eq. 8);
* :func:`monte_carlo_shapley` — the permutation-sampling estimator of
  Algorithm 2 (Castro et al. 2009);
* :func:`normalize_shapley` — min–max normalisation (eq. 19);
* axiom checkers (efficiency/balance, symmetry, dummy/zero-element,
  additivity) used by the property-based tests.
"""

from repro.game.cooperative import CooperativeGame, coalition_key
from repro.game.shapley import (
    exact_shapley,
    monte_carlo_shapley,
    normalize_shapley,
    shapley_aggregation_weights,
)
from repro.game.axioms import (
    check_additivity,
    check_dummy_player,
    check_efficiency,
    check_symmetry,
)

__all__ = [
    "CooperativeGame",
    "coalition_key",
    "exact_shapley",
    "monte_carlo_shapley",
    "normalize_shapley",
    "shapley_aggregation_weights",
    "check_efficiency",
    "check_symmetry",
    "check_dummy_player",
    "check_additivity",
]
