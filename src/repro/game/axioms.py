"""Shapley-axiom checkers used in property-based tests.

The Shapley value is the unique allocation satisfying balance (efficiency),
symmetry, additivity and the zero-element/dummy property (Sec. III-C).  These
helpers verify each property numerically for a concrete game and allocation.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Tuple

from repro.game.cooperative import CooperativeGame
from repro.game.shapley import exact_shapley

__all__ = [
    "check_efficiency",
    "check_symmetry",
    "check_dummy_player",
    "check_additivity",
]

Player = Hashable


def check_efficiency(
    game: CooperativeGame, allocation: Mapping[Player, float], tol: float = 1e-8
) -> bool:
    """Balance axiom: allocations sum to the grand-coalition payoff ``v(Z)``."""
    total = sum(float(allocation[p]) for p in game.players)
    return abs(total - game.grand_coalition_value()) <= tol


def check_symmetry(
    game: CooperativeGame,
    player_a: Player,
    player_b: Player,
    allocation: Mapping[Player, float],
    tol: float = 1e-8,
) -> bool:
    """Symmetry axiom for a pair of players known to be interchangeable.

    If ``v(S ∪ {a}) = v(S ∪ {b})`` for every coalition ``S`` avoiding both,
    the two players must receive the same allocation.  The helper first
    verifies the interchangeability premise; if the premise fails the check
    is vacuously true.
    """
    import itertools

    others = [p for p in game.players if p not in (player_a, player_b)]
    for size in range(len(others) + 1):
        for subset in itertools.combinations(others, size):
            va = game.value(set(subset) | {player_a})
            vb = game.value(set(subset) | {player_b})
            if abs(va - vb) > tol:
                return True  # premise violated: nothing to check
    return abs(float(allocation[player_a]) - float(allocation[player_b])) <= max(tol, 1e-8)


def check_dummy_player(
    game: CooperativeGame, player: Player, allocation: Mapping[Player, float], tol: float = 1e-8
) -> bool:
    """Zero-element axiom: a player contributing nothing to every coalition gets zero.

    As with symmetry, the premise (the player is a dummy) is verified first;
    if the player is not a dummy the check passes vacuously.
    """
    import itertools

    others = [p for p in game.players if p != player]
    for size in range(len(others) + 1):
        for subset in itertools.combinations(others, size):
            marginal = game.value(set(subset) | {player}) - game.value(subset)
            if abs(marginal) > tol:
                return True  # not a dummy: nothing to check
    return abs(float(allocation[player])) <= max(tol, 1e-8)


def check_additivity(
    players: Tuple[Player, ...],
    v1: Callable[[Tuple[Player, ...]], float],
    v2: Callable[[Tuple[Player, ...]], float],
    tol: float = 1e-8,
) -> bool:
    """Additivity axiom: ``phi(v1 + v2) = phi(v1) + phi(v2)`` player-wise."""
    game1 = CooperativeGame(players, v1)
    game2 = CooperativeGame(players, v2)
    game_sum = CooperativeGame(players, lambda c: v1(c) + v2(c))
    phi1 = exact_shapley(game1)
    phi2 = exact_shapley(game2)
    phi_sum = exact_shapley(game_sum)
    return all(
        abs(phi_sum[p] - (phi1[p] + phi2[p])) <= tol for p in players
    )
