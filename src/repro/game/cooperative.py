"""Cooperative game abstraction (Definition 3)."""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

__all__ = ["CooperativeGame", "coalition_key"]

Player = Hashable


def coalition_key(coalition: Iterable[Player]) -> FrozenSet[Player]:
    """Canonical hashable representation of a coalition (an unordered player set)."""
    return frozenset(coalition)


class CooperativeGame:
    """A cooperative game ``(Z, v)`` with memoised characteristic-function evaluations.

    Parameters
    ----------
    players:
        The player set ``Z``.  Order is preserved for reporting but has no
        semantic meaning.
    characteristic:
        A callable mapping a tuple of players (a coalition) to a real payoff.
        ``v(emptyset)`` is forced to 0 as Definition 3 requires; the callable
        is never invoked on the empty coalition.
    cache:
        Whether to memoise evaluations.  The PDSL characteristic function
        (validation accuracy of an averaged model, eq. 16) is expensive, and
        both the exact and Monte-Carlo Shapley computations re-query many
        coalitions, so caching is on by default.
    """

    def __init__(
        self,
        players: Sequence[Player],
        characteristic: Callable[[Tuple[Player, ...]], float],
        cache: bool = True,
    ) -> None:
        players = list(players)
        if len(players) == 0:
            raise ValueError("a cooperative game needs at least one player")
        if len(set(players)) != len(players):
            raise ValueError("players must be distinct")
        self.players: List[Player] = players
        self._characteristic = characteristic
        self._cache_enabled = bool(cache)
        self._cache: Dict[FrozenSet[Player], float] = {}
        self._evaluations = 0

    @property
    def num_players(self) -> int:
        return len(self.players)

    @property
    def cache_enabled(self) -> bool:
        """Whether characteristic evaluations are memoised.

        Estimators that batch coalition evaluations
        (:func:`repro.game.shapley.monte_carlo_shapley`) consult this: with
        caching off, repeated queries must reach the characteristic again
        (it may be deliberately stochastic), so batched single-evaluation
        bookkeeping would change the semantics.
        """
        return self._cache_enabled

    @property
    def num_evaluations(self) -> int:
        """How many times the underlying characteristic function was actually called."""
        return self._evaluations

    def value(self, coalition: Iterable[Player]) -> float:
        """Evaluate ``v(coalition)`` with memoisation; ``v(emptyset) = 0``."""
        members = tuple(sorted(set(coalition), key=self.players.index))
        unknown = [p for p in members if p not in self.players]
        if unknown:
            raise ValueError(f"unknown players in coalition: {unknown}")
        if not members:
            return 0.0
        key = coalition_key(members)
        if self._cache_enabled and key in self._cache:
            return self._cache[key]
        payoff = float(self._characteristic(members))
        self._evaluations += 1
        if self._cache_enabled:
            self._cache[key] = payoff
        return payoff

    def marginal_contribution(self, player: Player, coalition: Iterable[Player]) -> float:
        """``v(coalition ∪ {player}) - v(coalition)`` for ``player`` not in ``coalition``."""
        coalition = set(coalition)
        if player in coalition:
            raise ValueError("player already belongs to the coalition")
        return self.value(coalition | {player}) - self.value(coalition)

    def grand_coalition_value(self) -> float:
        """``v(Z)``, the payoff of the full player set."""
        return self.value(self.players)
