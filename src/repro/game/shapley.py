"""Exact and Monte-Carlo Shapley values, normalisation and aggregation weights.

These implement eqs. 7/8 (exact), Algorithm 2 (permutation-sampling Monte
Carlo), eq. 19 (min–max normalisation) and eq. 20 (the aggregation weights
``pi_{ij}`` combining normalised Shapley values with the mixing weights).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Mapping, Optional, Sequence

import numpy as np

from repro.game.cooperative import CooperativeGame

__all__ = [
    "exact_shapley",
    "monte_carlo_shapley",
    "monte_carlo_shapley_fleet",
    "normalize_shapley",
    "shapley_aggregation_weights",
]

Player = Hashable


def exact_shapley(game: CooperativeGame) -> Dict[Player, float]:
    """Exact Shapley values via the subset formulation (eq. 8).

    ``phi_i = sum_{Z' subseteq Z \\ {i}}  [ Z * C(Z-1, |Z'|) ]^{-1}
              ( v(Z' ∪ {i}) - v(Z') )``

    Complexity is ``O(2^Z)`` characteristic evaluations, so this is intended
    for the small neighbourhoods of the decentralized setting and for testing
    the Monte-Carlo estimator.
    """
    players = game.players
    z = game.num_players
    values: Dict[Player, float] = {}
    for player in players:
        others = [p for p in players if p != player]
        total = 0.0
        for subset_size in range(0, len(others) + 1):
            coefficient = 1.0 / (z * math.comb(z - 1, subset_size))
            for subset in itertools.combinations(others, subset_size):
                marginal = game.value(set(subset) | {player}) - game.value(subset)
                total += coefficient * marginal
        values[player] = total
    return values


def monte_carlo_shapley(
    game: CooperativeGame,
    num_permutations: int,
    rng: np.random.Generator,
) -> Dict[Player, float]:
    """Permutation-sampling Shapley estimator (Algorithm 2 / Castro et al. 2009).

    For each of ``R = num_permutations`` random permutations ``phi_r`` of the
    player set, every player's marginal contribution with respect to its
    predecessors in ``phi_r`` is accumulated and divided by ``R``.  The
    estimator is unbiased and its cost is ``O(R * Z)`` characteristic
    evaluations (amortised further by the game's memoisation).

    The batch bookkeeping is vectorized: all ``R`` permutations are sampled
    up front (one ``rng.permutation`` draw each, the same stream the
    per-permutation loop consumed), coalitions are encoded as prefix
    bitmasks with a cumulative OR, and the ``(R, Z)`` marginal matrix is
    reduced into per-player estimates with a single ``np.add.at`` in the
    loop's accumulation order — so the result (and the RNG stream) is
    bit-identical to the sequential implementation.  Only the
    characteristic evaluations remain Python calls, one per *unique*
    coalition in first-encounter order, exactly as the memoised sequential
    walk would issue them.  Two cases fall back to the sequential walk:
    games with more than 63 players (the bitmask encoding needs one bit per
    player) and games constructed with ``cache=False`` (an uncached — e.g.
    deliberately stochastic — characteristic must be re-invoked on every
    repeated query, which single-evaluation bookkeeping would skip).
    """
    if num_permutations <= 0:
        raise ValueError("num_permutations must be positive")
    players = list(game.players)
    n = len(players)
    if n > 63 or not getattr(game, "cache_enabled", True):
        return _monte_carlo_shapley_sequential(game, num_permutations, rng)
    orders = np.stack([rng.permutation(n) for _ in range(num_permutations)], axis=0)
    bits = np.uint64(1) << orders.astype(np.uint64)
    with_player = np.bitwise_or.accumulate(bits, axis=1)
    predecessors = with_player ^ bits
    # Interleave [with, without] per position: the sequential walk evaluates
    # v(predecessors | {player}) before v(predecessors), and memoisation
    # makes every repeat free — so evaluating each unique mask at its first
    # encounter reproduces the exact characteristic-call order (and hence
    # any RNG the characteristic itself consumes, e.g. validation batch
    # subsampling).
    interleaved = np.stack([with_player, predecessors], axis=2).reshape(-1)
    values: Dict[int, float] = {0: 0.0}
    for mask in interleaved:
        mask = int(mask)
        if mask not in values:
            coalition = [players[k] for k in range(n) if (mask >> k) & 1]
            values[mask] = game.value(coalition)
    unique_masks, inverse = np.unique(
        np.concatenate([with_player.reshape(-1), predecessors.reshape(-1)]),
        return_inverse=True,
    )
    unique_values = np.asarray([values[int(mask)] for mask in unique_masks])
    flat = num_permutations * n
    marginals = (
        unique_values[inverse[:flat]] - unique_values[inverse[flat:]]
    ) / num_permutations
    totals = np.zeros(n, dtype=np.float64)
    np.add.at(totals, orders.reshape(-1), marginals)
    return {players[k]: float(totals[k]) for k in range(n)}


def monte_carlo_shapley_fleet(
    characteristic,
    num_players: int,
    num_permutations: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Permutation-sampling Shapley estimator for fleet-scale player counts.

    The generic :func:`monte_carlo_shapley` routes every coalition through a
    :class:`~repro.game.cooperative.CooperativeGame` — frozenset
    canonicalisation plus a memo dict per unique coalition.  At ``N`` in the
    thousands the prefix coalitions of one permutation are all distinct, so
    that bookkeeping is pure overhead (and the ≤ 63-player bitmask fast path
    does not apply).  This variant walks each sampled permutation directly:
    players are the integers ``0..num_players-1``, the coalition grows as a
    prefix view of the permutation array (no sets, no hashing, no caching),
    and ``characteristic(members)`` is called with that int64 index array —
    it must be a set function (order-invariant) and is evaluated
    ``num_players + 1`` times per permutation.

    Returns the ``(num_players,)`` float64 vector of estimates.  The
    permutation stream (one ``rng.permutation`` per round, sampled in order)
    matches the sequential estimator's, so for a characteristic wrapped in a
    ``CooperativeGame`` the two agree to float round-off.
    """
    if num_players <= 0:
        raise ValueError("num_players must be positive")
    if num_permutations <= 0:
        raise ValueError("num_permutations must be positive")
    totals = np.zeros(num_players, dtype=np.float64)
    inverse_rounds = 1.0 / num_permutations
    for _ in range(num_permutations):
        order = rng.permutation(num_players)
        previous = float(characteristic(order[:0]))
        for size in range(1, num_players + 1):
            current = float(characteristic(order[:size]))
            totals[order[size - 1]] += (current - previous) * inverse_rounds
            previous = current
    return totals


def _monte_carlo_shapley_sequential(
    game: CooperativeGame,
    num_permutations: int,
    rng: np.random.Generator,
) -> Dict[Player, float]:
    """Reference per-permutation walk (also the > 63-player fallback)."""
    players = list(game.players)
    estimates = {p: 0.0 for p in players}
    for _ in range(num_permutations):
        order = [players[i] for i in rng.permutation(len(players))]
        predecessors: list[Player] = []
        for player in order:
            marginal = game.value(set(predecessors) | {player}) - game.value(predecessors)
            estimates[player] += marginal / num_permutations
            predecessors.append(player)
    return estimates


def normalize_shapley(values: Mapping[Player, float]) -> Dict[Player, float]:
    """Min–max normalisation of Shapley values (eq. 19).

    ``phi_hat_j = (phi_j - min_k phi_k) / (max_k phi_k - min_k phi_k)``.

    When all values are (numerically) equal, the paper's formula is 0/0; we
    follow the natural convention of returning all ones, which makes the
    downstream aggregation weights collapse to the plain mixing weights.
    """
    if not values:
        raise ValueError("cannot normalise an empty Shapley value mapping")
    keys = list(values.keys())
    raw = np.asarray([float(values[k]) for k in keys], dtype=np.float64)
    lo, hi = float(raw.min()), float(raw.max())
    spread = hi - lo
    if spread <= 1e-12:
        return {k: 1.0 for k in keys}
    normalised = (raw - lo) / spread
    return {k: float(v) for k, v in zip(keys, normalised)}


def shapley_aggregation_weights(
    normalized_values: Mapping[Player, float],
    mixing_weights: Mapping[Player, float],
    floor: float = 1e-12,
) -> Dict[Player, float]:
    """Aggregation weights ``pi_{ij}`` of eq. 20.

    ``pi_{ij} = phi_hat_{ij} / ( omega_{ij} * sum_k phi_hat_{ik} )``

    Parameters
    ----------
    normalized_values:
        Normalised Shapley values ``phi_hat_{ij}`` keyed by neighbour.
    mixing_weights:
        Mixing weights ``omega_{ij}`` keyed by neighbour (all positive).
    floor:
        Tiny value added to the Shapley sum to avoid division by zero when
        every normalised value is zero (cannot happen after
        :func:`normalize_shapley`, which maps the max to 1, but callers may
        pass raw values).
    """
    keys = list(normalized_values.keys())
    if set(keys) != set(mixing_weights.keys()):
        raise ValueError("normalized_values and mixing_weights must share the same keys")
    total = float(sum(normalized_values[k] for k in keys))
    total = max(total, floor)
    weights: Dict[Player, float] = {}
    for k in keys:
        omega = float(mixing_weights[k])
        if omega <= 0:
            raise ValueError(f"mixing weight for player {k!r} must be positive")
        weights[k] = float(normalized_values[k]) / (omega * total)
    return weights
