"""Neural-network substrate used by the decentralized learning algorithms.

The paper trains small CNNs with PyTorch; this environment has no deep
learning framework installed, so ``repro.nn`` provides a from-scratch NumPy
implementation of the layer types the paper's models need (dense, 2-D
convolution, max pooling, ReLU/Tanh activations, dropout, flatten) together
with a :class:`Sequential` container, a softmax cross-entropy loss, parameter
initialisers and a numerical gradient checker.

The decentralized algorithms only ever see models through the *flat parameter
vector* interface (:meth:`Model.get_flat_params` / :meth:`Model.set_flat_params`
and :meth:`Model.get_flat_grads`), mirroring how the paper treats the model as
a point ``x`` in ``R^d``.
"""

from repro.nn.initializers import (
    glorot_uniform,
    he_normal,
    normal_init,
    zeros_init,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.losses import (
    l2_regularization,
    mean_squared_error,
    softmax_cross_entropy,
)
from repro.nn.model import Model, Sequential
from repro.nn.batched import StackedSequential, supports_stacked
from repro.nn.gradcheck import numerical_gradient, check_gradients
from repro.nn.zoo import (
    make_cifar_cnn,
    make_linear_classifier,
    make_mlp,
    make_mnist_cnn,
)

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "Flatten",
    "Model",
    "Sequential",
    "StackedSequential",
    "supports_stacked",
    "softmax_cross_entropy",
    "mean_squared_error",
    "l2_regularization",
    "glorot_uniform",
    "he_normal",
    "normal_init",
    "zeros_init",
    "numerical_gradient",
    "check_gradients",
    "make_mlp",
    "make_linear_classifier",
    "make_mnist_cnn",
    "make_cifar_cnn",
]
