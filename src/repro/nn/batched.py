"""Stacked forward/backward passes over many parameter vectors at once.

The decentralized algorithms evaluate the *same architecture* at many
different points of ``R^d`` every round — one point per agent for local
gradients, one point per directed edge for cross-gradients.  Doing that with
the scalar :class:`~repro.nn.model.Model` interface costs one Python-level
forward/backward pass per point.  :class:`StackedSequential` instead treats
the whole fleet as a single tensor computation: parameters live in an
``(M, d)`` matrix, activations in ``(M, B, ...)`` tensors, and each layer is
applied to all ``M`` models with one einsum.

Only layer types whose stacked semantics are exact and deterministic are
supported (``Dense``, ``ReLU``, ``Tanh``, ``Sigmoid``, ``Flatten``).  Models
containing convolutions, pooling or dropout fall back to the per-model loop
path — use :func:`supports_stacked` to check.  The stacked computation mirrors
the per-layer formulas of :mod:`repro.nn.layers` operation for operation, so
its gradients agree with ``Model.loss_and_gradient`` to floating-point
round-off.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import Dense, Flatten, ReLU, Sigmoid, Tanh
from repro.nn.losses import log_softmax, per_example_cross_entropy
from repro.nn.model import Model, Sequential

__all__ = ["supports_stacked", "StackedSequential"]

_ACTIVATIONS = (ReLU, Tanh, Sigmoid)


def supports_stacked(model: Model) -> bool:
    """True if ``model`` can be evaluated by :class:`StackedSequential`.

    The model must be a plain :class:`~repro.nn.model.Sequential` composed
    only of ``Dense``, ``ReLU``, ``Tanh``, ``Sigmoid`` and ``Flatten`` layers
    (linear classifiers and MLPs).  Layers with spatial structure
    (``Conv2D``, ``MaxPool2D``) or internal randomness (``Dropout``) are
    excluded, as are ``Sequential`` *subclasses* — the stacked engine
    hard-codes softmax cross-entropy, so a subclass overriding the loss
    would silently get the wrong gradients.
    """
    if type(model) is not Sequential:
        return False
    for layer in model.layers:
        if not isinstance(layer, (Dense, Flatten) + _ACTIVATIONS):
            return False
    return True


class StackedSequential:
    """Evaluate a :class:`Sequential` template at ``M`` parameter vectors at once.

    Parameters
    ----------
    template:
        The architecture to evaluate.  Only its layer *shapes* are used; the
        parameter values come from the ``(M, d)`` matrix passed to
        :meth:`loss_and_gradients`, laid out exactly like
        :meth:`Model.get_flat_params` (layer order, weight before bias).
    max_chunk_elements:
        Upper bound on ``M * B * width`` per processed chunk, used to split
        very large stacks (e.g. all cross-gradient pairs of a dense graph)
        into memory-bounded pieces.
    """

    def __init__(self, template: Sequential, max_chunk_elements: int = 8_000_000) -> None:
        if not supports_stacked(template):
            raise ValueError(
                "StackedSequential supports Sequential models built from "
                "Dense/ReLU/Tanh/Sigmoid/Flatten layers only"
            )
        self.template = template
        self.dimension = template.num_params
        self.max_chunk_elements = int(max_chunk_elements)
        # Build the static evaluation plan: one spec per layer with the flat
        # slices its parameters occupy.
        self._plan: List[Tuple] = []
        offset = 0
        widest = 1
        for layer in template.layers:
            if isinstance(layer, Dense):
                w_size = layer.weight.size
                w_slice = slice(offset, offset + w_size)
                offset += w_size
                b_slice: Optional[slice] = None
                if layer.bias is not None:
                    b_slice = slice(offset, offset + layer.bias.size)
                    offset += layer.bias.size
                self._plan.append(
                    ("dense", layer.in_features, layer.out_features, w_slice, b_slice)
                )
                widest = max(widest, layer.in_features, layer.out_features)
            elif isinstance(layer, ReLU):
                self._plan.append(("relu",))
            elif isinstance(layer, Tanh):
                self._plan.append(("tanh",))
            elif isinstance(layer, Sigmoid):
                self._plan.append(("sigmoid",))
            elif isinstance(layer, Flatten):
                self._plan.append(("flatten",))
        self._widest = widest
        assert offset == self.dimension

    # ------------------------------------------------------------------
    # Forward / backward over a stack
    # ------------------------------------------------------------------
    def _forward(
        self, params: np.ndarray, x: np.ndarray
    ) -> Tuple[np.ndarray, List[Tuple]]:
        """Stacked forward pass; returns ``(logits, caches)``."""
        caches: List[Tuple] = []
        m = params.shape[0]
        for spec in self._plan:
            kind = spec[0]
            if kind == "dense":
                _, n_in, n_out, w_slice, b_slice = spec
                weight = params[:, w_slice].reshape(m, n_in, n_out)
                caches.append((x, weight))
                x = np.einsum("mbi,mio->mbo", x, weight)
                if b_slice is not None:
                    x = x + params[:, b_slice][:, None, :]
            elif kind == "relu":
                mask = x > 0
                caches.append((mask,))
                x = x * mask
            elif kind == "tanh":
                x = np.tanh(x)
                caches.append((x,))
            elif kind == "sigmoid":
                x = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
                caches.append((x,))
            elif kind == "flatten":
                caches.append((x.shape,))
                x = x.reshape(x.shape[0], x.shape[1], -1)
        return x, caches

    def _backward(
        self, grad_logits: np.ndarray, caches: List[Tuple], grads_out: np.ndarray
    ) -> None:
        """Stacked backward pass writing flat parameter gradients into ``grads_out``."""
        g = grad_logits
        for spec, cache in zip(reversed(self._plan), reversed(caches)):
            kind = spec[0]
            if kind == "dense":
                _, n_in, n_out, w_slice, b_slice = spec
                x, weight = cache
                m = x.shape[0]
                grads_out[:, w_slice] = np.einsum("mbi,mbo->mio", x, g).reshape(m, -1)
                if b_slice is not None:
                    grads_out[:, b_slice] = g.sum(axis=1)
                g = np.einsum("mbo,mio->mbi", g, weight)
            elif kind == "relu":
                g = g * cache[0]
            elif kind == "tanh":
                g = g * (1.0 - cache[0] ** 2)
            elif kind == "sigmoid":
                g = g * cache[0] * (1.0 - cache[0])
            elif kind == "flatten":
                g = g.reshape(cache[0])

    @staticmethod
    def _softmax_cross_entropy(
        logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mean-reduced fused softmax + cross-entropy over an ``(M, B, K)`` stack.

        Mirrors :func:`repro.nn.losses.softmax_cross_entropy` per model row.
        Returns ``(losses (M,), grad_logits (M, B, K))``.
        """
        batch = logits.shape[1]
        log_probs = log_softmax(logits)
        picked = np.take_along_axis(log_probs, labels[:, :, None], axis=2)[:, :, 0]
        losses = -picked.mean(axis=1)
        grad = np.exp(log_probs)
        np.put_along_axis(
            grad,
            labels[:, :, None],
            np.take_along_axis(grad, labels[:, :, None], axis=2) - 1.0,
            axis=2,
        )
        return losses, grad / batch

    def _validate_stack(
        self, params: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        params = np.asarray(params, dtype=np.float64)
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if params.ndim != 2 or params.shape[1] != self.dimension:
            raise ValueError(
                f"params must have shape (M, {self.dimension}), got {params.shape}"
            )
        m = params.shape[0]
        if inputs.shape[0] != m or labels.shape[:2] != inputs.shape[:2]:
            raise ValueError("params, inputs and labels disagree on the stack layout")
        batch = inputs.shape[1]
        per_row = max(1, batch * self._widest)
        chunk = max(1, self.max_chunk_elements // per_row)
        return params, inputs, labels, chunk

    def loss_and_gradients(
        self,
        params: np.ndarray,
        inputs: np.ndarray,
        labels: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Softmax-cross-entropy loss and gradient for every stacked model.

        Parameters
        ----------
        params:
            ``(M, d)`` matrix; row ``k`` is the flat parameter vector of
            model ``k``.
        inputs:
            ``(M, B, ...)`` stacked mini-batches; batch ``k`` is evaluated
            under model ``k``.
        labels:
            ``(M, B)`` integer class labels.
        out:
            Optional pre-allocated ``(M, d)`` float64 gradient buffer; the
            backward pass already writes chunk slices in place, so passing a
            caller-owned buffer (e.g. the streamed round's block view) skips
            the allocation and the copy-out without changing a single bit.

        Returns
        -------
        (losses, grads):
            ``(M,)`` per-model mean losses and the ``(M, d)`` matrix of flat
            gradients (``out`` when given), matching
            ``Model.loss_and_gradient`` row by row up to floating-point
            round-off.
        """
        params, inputs, labels, chunk = self._validate_stack(params, inputs, labels)
        m = params.shape[0]
        losses = np.empty(m, dtype=np.float64)
        if out is None:
            grads = np.empty((m, self.dimension), dtype=np.float64)
        else:
            if out.shape != (m, self.dimension) or out.dtype != np.float64:
                raise ValueError(
                    f"out must be a float64 ({m}, {self.dimension}) array, got "
                    f"{out.dtype} {out.shape}"
                )
            grads = out
        for start in range(0, m, chunk):
            stop = min(m, start + chunk)
            logits, caches = self._forward(params[start:stop], inputs[start:stop])
            chunk_losses, grad_logits = self._softmax_cross_entropy(
                logits, labels[start:stop]
            )
            losses[start:stop] = chunk_losses
            self._backward(grad_logits, caches, grads[start:stop])
        return losses, grads

    def losses(
        self, params: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Softmax-cross-entropy loss for every stacked model (forward only).

        Same stacked layout as :meth:`loss_and_gradients` but skips the
        backward pass — the evaluation path
        (:meth:`~repro.core.base.DecentralizedAlgorithm.average_train_loss`)
        only needs the ``(M,)`` per-model mean losses.
        """
        params, inputs, labels, chunk = self._validate_stack(params, inputs, labels)
        m = params.shape[0]
        losses = np.empty(m, dtype=np.float64)
        for start in range(0, m, chunk):
            stop = min(m, start + chunk)
            logits, _ = self._forward(params[start:stop], inputs[start:stop])
            chunk_losses, _ = self._softmax_cross_entropy(logits, labels[start:stop])
            losses[start:stop] = chunk_losses
        return losses

    def per_example_losses(
        self, params: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Unreduced per-example cross-entropy for every stacked model.

        Same stacked layout as :meth:`loss_and_gradients` but returns the raw
        ``(M, B)`` matrix of ``-log p[label]`` values instead of mean-reducing
        over the batch axis.  This is the kernel behind the fleet membership
        attack: one stacked forward scores a whole dataset under many
        ``(agent, checkpoint)`` parameter rows at once, and row ``k`` is
        bit-identical to evaluating the same forward with ``M = 1``.
        """
        params, inputs, labels, chunk = self._validate_stack(params, inputs, labels)
        m, batch = params.shape[0], inputs.shape[1]
        out = np.empty((m, batch), dtype=np.float64)
        for start in range(0, m, chunk):
            stop = min(m, start + chunk)
            logits, _ = self._forward(params[start:stop], inputs[start:stop])
            out[start:stop] = per_example_cross_entropy(logits, labels[start:stop])
        return out
