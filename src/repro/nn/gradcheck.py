"""Numerical gradient checking utilities.

These are used in the test suite to verify every analytic backward pass
against central finite differences, which is what makes the from-scratch
substrate trustworthy as a substitute for an autograd framework.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nn.model import Model
from repro.nn.losses import softmax_cross_entropy

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of a scalar function of a flat vector."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    for i in range(x.size):
        orig = x[i]
        x[i] = orig + eps
        plus = fn(x)
        x[i] = orig - eps
        minus = fn(x)
        x[i] = orig
        grad[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    model: Model,
    inputs: np.ndarray,
    labels: np.ndarray,
    eps: float = 1e-5,
    loss_fn: Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]] = softmax_cross_entropy,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Compare analytic and numerical gradients of a model's loss.

    Returns ``(max_relative_error, analytic_grad, numerical_grad)``.  The
    relative error is ``|a - n| / max(1e-8, |a| + |n|)`` evaluated
    element-wise and maximised.
    """
    params = model.get_flat_params()
    _, analytic = model.loss_and_gradient(inputs, labels, loss_fn=loss_fn)

    def loss_at(vec: np.ndarray) -> float:
        return model.evaluate_loss(inputs, labels, loss_fn=loss_fn, params=vec)

    numeric = numerical_gradient(loss_at, params.copy(), eps=eps)
    model.set_flat_params(params)
    denom = np.maximum(1e-8, np.abs(analytic) + np.abs(numeric))
    rel_err = np.abs(analytic - numeric) / denom
    return float(rel_err.max(initial=0.0)), analytic, numeric
