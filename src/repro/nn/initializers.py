"""Weight initialisation schemes for the NumPy neural-network substrate.

Every initialiser takes an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic given a seed.  This matters for the
decentralized experiments: all agents must start from the *same* initial model
``x^[0]`` (Algorithm 1 input), which the trainers achieve by constructing one
model and broadcasting its flat parameter vector.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "glorot_uniform",
    "he_normal",
    "normal_init",
    "zeros_init",
    "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor of the given shape.

    For a dense weight of shape ``(in, out)`` this is simply ``(in, out)``.
    For a convolution kernel of shape ``(out_channels, in_channels, kh, kw)``
    the receptive-field size multiplies both fans, matching the convention
    used by common deep-learning frameworks.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = 1
    for s in shape[2:]:
        receptive *= s
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation ``U(-a, a)``, ``a = sqrt(6/(fan_in+fan_out))``."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    limit = math.sqrt(6.0 / float(fan_in + fan_out))
    return rng.uniform(-limit, limit, size=tuple(shape)).astype(np.float64)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation ``N(0, 2/fan_in)``, suited to ReLU layers."""
    fan_in, _ = fan_in_and_fan_out(shape)
    std = math.sqrt(2.0 / float(max(fan_in, 1)))
    return rng.normal(0.0, std, size=tuple(shape)).astype(np.float64)


def normal_init(
    shape: Sequence[int], rng: np.random.Generator, std: float = 0.01
) -> np.ndarray:
    """Plain Gaussian initialisation with a fixed standard deviation."""
    return rng.normal(0.0, std, size=tuple(shape)).astype(np.float64)


def zeros_init(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(tuple(shape), dtype=np.float64)
