"""Layer implementations with exact analytic forward/backward passes.

Layers follow a small, explicit protocol:

* ``forward(x, training)`` consumes a batch and caches whatever the backward
  pass needs.
* ``backward(grad_output)`` consumes the gradient of the loss with respect to
  the layer output, accumulates parameter gradients in ``Parameter.grad`` and
  returns the gradient with respect to the layer input.
* ``parameters()`` yields the layer's :class:`Parameter` objects (possibly
  none).

All arrays are ``float64``; batches are laid out as ``(N, ...)`` with channels
first for image tensors, i.e. ``(N, C, H, W)``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.initializers import glorot_uniform, he_normal, zeros_init

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "Flatten",
]


class Parameter:
    """A trainable tensor together with its accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Iterable[Parameter]:
        return ()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    rng:
        Generator used to initialise the weights (Glorot uniform).
    use_bias:
        Whether to include an additive bias term.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        use_bias: bool = True,
        name: str = "dense",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self.weight = Parameter(
            glorot_uniform((self.in_features, self.out_features), rng),
            name=f"{name}.weight",
        )
        self.bias = (
            Parameter(zeros_init((self.out_features,)), name=f"{name}.bias")
            if use_bias
            else None
        )
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._cache_input = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        x = self._cache_input
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> Iterable[Parameter]:
        if self.bias is not None:
            return (self.weight, self.bias)
        return (self.weight,)


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns for convolution.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C * kh * kw, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    # Strided view of all (kh, kw) patches.
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`, accumulating overlapping patches."""
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=np.float64)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding : padding + h, padding : padding + w]
    return padded


class Conv2D(Layer):
    """2-D convolution over ``(N, C, H, W)`` inputs, implemented via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        name: str = "conv2d",
    ) -> None:
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(use_bias)
        self.weight = Parameter(
            he_normal(
                (self.out_channels, self.in_channels, self.kernel_size, self.kernel_size),
                rng,
            ),
            name=f"{name}.weight",
        )
        self.bias = (
            Parameter(zeros_init((self.out_channels,)), name=f"{name}.bias")
            if use_bias
            else None
        )
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int], int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = _im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        out = np.einsum("oc,ncl->nol", w_mat, cols)
        if self.bias is not None:
            out = out + self.bias.value[None, :, None]
        self._cache = (cols, x.shape, out_h, out_w)
        return out.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, x_shape, out_h, out_w = self._cache
        n = x_shape[0]
        grad_output = np.asarray(grad_output, dtype=np.float64).reshape(
            n, self.out_channels, out_h * out_w
        )
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        grad_w = np.einsum("nol,ncl->oc", grad_output, cols)
        self.weight.grad += grad_w.reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2))
        grad_cols = np.einsum("oc,nol->ncl", w_mat, grad_output)
        return _col2im(
            grad_cols, x_shape, self.kernel_size, self.kernel_size, self.stride, self.padding
        )

    def parameters(self) -> Iterable[Parameter]:
        if self.bias is not None:
            return (self.weight, self.bias)
        return (self.weight,)


class MaxPool2D(Layer):
    """Max pooling over non-overlapping windows (kernel == stride by default)."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        shape = (n, c, out_h, out_w, k, k)
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2] * s,
            x.strides[3] * s,
            x.strides[2],
            x.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
        windows = windows.reshape(n, c, out_h, out_w, k * k)
        argmax = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
        self._cache = (argmax, x, (n, c, out_h, out_w))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, x, (n, c, out_h, out_w) = self._cache
        k, s = self.kernel_size, self.stride
        grad_input = np.zeros_like(x)
        grad_output = np.asarray(grad_output, dtype=np.float64)
        rows_in_window, cols_in_window = np.divmod(argmax, k)
        oh_idx, ow_idx = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        row_idx = oh_idx[None, None] * s + rows_in_window
        col_idx = ow_idx[None, None] * s + cols_in_window
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(grad_input, (n_idx, c_idx, row_idx, col_idx), grad_output)
        return grad_input


class ReLU(Layer):
    """Rectified linear unit activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(np.asarray(x, dtype=np.float64))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * self._out * (1.0 - self._out)


class Softmax(Layer):
    """Softmax over the last axis.

    Normally the loss fuses softmax with cross-entropy for numerical
    stability (:func:`repro.nn.losses.softmax_cross_entropy`); this layer is
    provided for models that need explicit probability outputs.
    """

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._out = exp / exp.sum(axis=-1, keepdims=True)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        dot = (grad_output * self._out).sum(axis=-1, keepdims=True)
        return self._out * (grad_output - dot)


class Dropout(Layer):
    """Inverted dropout; identity when not training."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self.rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Flatten(Layer):
    """Flatten all dimensions after the batch axis."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64).reshape(self._shape)
