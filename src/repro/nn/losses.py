"""Loss functions for the NumPy neural-network substrate.

Each loss returns ``(loss_value, grad_wrt_logits)`` so that callers can feed
the gradient straight into ``Model.backward`` without a separate call.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "log_softmax",
    "per_example_cross_entropy",
    "softmax_cross_entropy",
    "mean_squared_error",
    "l2_regularization",
]


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis.

    The single source of the ``shifted - log(sum(exp(shifted)))`` formula:
    :func:`softmax_cross_entropy` (training), the stacked engine's fused loss
    (:meth:`repro.nn.batched.StackedSequential._softmax_cross_entropy`) and
    the membership-inference per-sample scorer all route through it, so their
    log-probabilities are bit-identical for the same logits.
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def per_example_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Unreduced cross-entropy ``-log p[label]`` per example.

    Works on any leading layout — ``(N, K)`` logits with ``(N,)`` labels or a
    stacked ``(M, B, K)`` with ``(M, B)`` — reducing only the trailing class
    axis.  This is the shared per-example-loss helper used by the attacks
    (membership inference scores raw per-example losses) and by the stacked
    engine's :meth:`~repro.nn.batched.StackedSequential.per_example_losses`.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim < 1 or labels.shape != logits.shape[:-1]:
        raise ValueError(
            f"labels shape {labels.shape} must match logits leading shape {logits.shape[:-1]}"
        )
    k = logits.shape[-1]
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ValueError("labels out of range for the number of classes")
    log_probs = log_softmax(logits)
    picked = np.take_along_axis(log_probs, labels[..., None], axis=-1)[..., 0]
    return -picked


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, reduction: str = "mean"
) -> Tuple[float, np.ndarray]:
    """Fused softmax + cross-entropy.

    Parameters
    ----------
    logits:
        ``(N, K)`` unnormalised class scores.
    labels:
        ``(N,)`` integer class labels in ``[0, K)``.
    reduction:
        ``"mean"`` (default) or ``"sum"``.

    Returns
    -------
    (loss, grad):
        Scalar loss and the gradient of the loss with respect to ``logits``
        (already divided by the batch size when ``reduction == "mean"``).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError("labels must be 1-D with the same batch size as logits")
    n, k = logits.shape
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= k:
        raise ValueError("labels out of range for the number of classes")
    if reduction not in ("mean", "sum"):
        raise ValueError("reduction must be 'mean' or 'sum'")

    log_probs = log_softmax(logits)
    nll = -log_probs[np.arange(n), labels]

    probs = np.exp(log_probs)
    grad = probs
    grad[np.arange(n), labels] -= 1.0

    if reduction == "mean":
        return float(nll.mean()), grad / n
    return float(nll.sum()), grad


def mean_squared_error(
    predictions: np.ndarray, targets: np.ndarray, reduction: str = "mean"
) -> Tuple[float, np.ndarray]:
    """Mean squared error ``0.5 * ||pred - target||^2`` per element."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have identical shapes")
    if reduction not in ("mean", "sum"):
        raise ValueError("reduction must be 'mean' or 'sum'")
    diff = predictions - targets
    if reduction == "mean":
        loss = float(0.5 * np.mean(diff**2))
        grad = diff / diff.size
    else:
        loss = float(0.5 * np.sum(diff**2))
        grad = diff
    return loss, grad


def l2_regularization(flat_params: np.ndarray, weight_decay: float) -> Tuple[float, np.ndarray]:
    """L2 penalty ``0.5 * wd * ||x||^2`` and its gradient ``wd * x``."""
    flat_params = np.asarray(flat_params, dtype=np.float64)
    if weight_decay < 0:
        raise ValueError("weight_decay must be non-negative")
    loss = float(0.5 * weight_decay * np.dot(flat_params, flat_params))
    return loss, weight_decay * flat_params
