"""Model containers and the flat-parameter-vector interface.

Decentralized algorithms treat a model as a point ``x`` in ``R^d``; the
:class:`Model` base class therefore exposes ``get_flat_params`` /
``set_flat_params`` / ``get_flat_grads`` which pack and unpack every
:class:`~repro.nn.layers.Parameter` into a single contiguous ``float64``
vector in a stable order.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer, Parameter
from repro.nn.losses import softmax_cross_entropy

__all__ = ["Model", "Sequential"]


class Model:
    """Base class providing parameter-vector packing and loss/gradient helpers."""

    def parameters(self) -> List[Parameter]:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Flat-vector interface
    # ------------------------------------------------------------------
    @property
    def num_params(self) -> int:
        """Total number of scalar parameters ``d``."""
        return int(sum(p.size for p in self.parameters()))

    def get_flat_params(self) -> np.ndarray:
        """Return a copy of all parameters concatenated into one vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([p.value.ravel() for p in params]).astype(np.float64)

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by :meth:`get_flat_params`."""
        flat = np.asarray(flat, dtype=np.float64)
        expected = self.num_params
        if flat.ndim != 1 or flat.size != expected:
            raise ValueError(
                f"flat parameter vector must have shape ({expected},), got {flat.shape}"
            )
        offset = 0
        for p in self.parameters():
            chunk = flat[offset : offset + p.size]
            p.value = chunk.reshape(p.value.shape).copy()
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        """Return all accumulated gradients concatenated into one vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([p.grad.ravel() for p in params]).astype(np.float64)

    def set_flat_grads(self, flat: np.ndarray) -> None:
        """Load gradients from a flat vector (mainly useful for testing)."""
        flat = np.asarray(flat, dtype=np.float64)
        expected = self.num_params
        if flat.ndim != 1 or flat.size != expected:
            raise ValueError(
                f"flat gradient vector must have shape ({expected},), got {flat.shape}"
            )
        offset = 0
        for p in self.parameters():
            chunk = flat[offset : offset + p.size]
            p.grad = chunk.reshape(p.grad.shape).copy()
            offset += p.size

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Convenience training helpers
    # ------------------------------------------------------------------
    def loss_and_gradient(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        loss_fn: Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]] = softmax_cross_entropy,
        params: Optional[np.ndarray] = None,
    ) -> Tuple[float, np.ndarray]:
        """Compute ``(loss, flat_gradient)`` on a batch.

        If ``params`` is given, the model is temporarily evaluated at that
        parameter vector (the caller's current parameters are restored
        afterwards).  This is how agents compute *cross-gradients*: the
        derivative of a **neighbour's** model parameters with respect to the
        agent's **own** data (eq. 12 in the paper).
        """
        restore: Optional[np.ndarray] = None
        if params is not None:
            restore = self.get_flat_params()
            self.set_flat_params(params)
        try:
            self.zero_grad()
            logits = self.forward(inputs, training=True)
            loss, grad_logits = loss_fn(logits, labels)
            self.backward(grad_logits)
            flat_grad = self.get_flat_grads()
        finally:
            if restore is not None:
                self.set_flat_params(restore)
        return loss, flat_grad

    def evaluate_loss(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        loss_fn: Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]] = softmax_cross_entropy,
        params: Optional[np.ndarray] = None,
    ) -> float:
        """Loss on a batch without touching gradients (used for reporting)."""
        restore: Optional[np.ndarray] = None
        if params is not None:
            restore = self.get_flat_params()
            self.set_flat_params(params)
        try:
            logits = self.forward(inputs, training=False)
            loss, _ = loss_fn(logits, labels)
        finally:
            if restore is not None:
                self.set_flat_params(restore)
        return float(loss)

    def predict(self, inputs: np.ndarray, params: Optional[np.ndarray] = None) -> np.ndarray:
        """Return the argmax class prediction for each input row."""
        restore: Optional[np.ndarray] = None
        if params is not None:
            restore = self.get_flat_params()
            self.set_flat_params(params)
        try:
            logits = self.forward(inputs, training=False)
        finally:
            if restore is not None:
                self.set_flat_params(restore)
        return np.argmax(logits, axis=-1)

    def accuracy(
        self, inputs: np.ndarray, labels: np.ndarray, params: Optional[np.ndarray] = None
    ) -> float:
        """Classification accuracy on a batch, optionally at the given parameters."""
        preds = self.predict(inputs, params=params)
        labels = np.asarray(labels, dtype=np.int64)
        if preds.shape[0] != labels.shape[0]:
            raise ValueError("inputs and labels must have the same batch size")
        if labels.size == 0:
            return 0.0
        return float(np.mean(preds == labels))

    def clone(self) -> "Model":
        """Deep copy of the model (used to give each simulated agent its own model)."""
        return copy.deepcopy(self)


class Sequential(Model):
    """A model composed of a linear chain of layers."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)
