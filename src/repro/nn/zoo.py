"""Model factories matching the architectures used in the paper's evaluation.

The paper (Sec. VI-A) uses:

* **MNIST model** — two 3x3 conv layers, each followed by 2x2 max pooling,
  then one fully connected layer, with ReLU activations.
* **CIFAR-10 model** — two 5x5 conv layers, each followed by 2x2 max pooling,
  then two fully connected layers, with ReLU activations.

:func:`make_mnist_cnn` and :func:`make_cifar_cnn` build exactly those shapes
(channel widths are configurable so benchmarks can run scaled-down variants).
:func:`make_mlp` and :func:`make_linear_classifier` provide cheaper models for
tests and fast experiments; the decentralized algorithms are agnostic to which
is used because they only see flat parameter vectors.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential

__all__ = ["make_mlp", "make_linear_classifier", "make_mnist_cnn", "make_cifar_cnn"]


def _rng(seed_or_rng: Optional[int | np.random.Generator]) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def make_linear_classifier(
    input_dim: int, num_classes: int, seed: Optional[int | np.random.Generator] = 0
) -> Sequential:
    """A single dense layer (multinomial logistic regression)."""
    rng = _rng(seed)
    return Sequential([Dense(input_dim, num_classes, rng, name="linear")])


def make_mlp(
    input_dim: int,
    num_classes: int,
    hidden_sizes: Sequence[int] = (32,),
    seed: Optional[int | np.random.Generator] = 0,
) -> Sequential:
    """A multilayer perceptron with ReLU activations."""
    rng = _rng(seed)
    layers = []
    prev = int(input_dim)
    for idx, width in enumerate(hidden_sizes):
        layers.append(Dense(prev, int(width), rng, name=f"fc{idx}"))
        layers.append(ReLU())
        prev = int(width)
    layers.append(Dense(prev, int(num_classes), rng, name="head"))
    return Sequential(layers)


def make_mnist_cnn(
    num_classes: int = 10,
    channels: Sequence[int] = (8, 16),
    image_size: int = 28,
    in_channels: int = 1,
    seed: Optional[int | np.random.Generator] = 0,
) -> Sequential:
    """The paper's MNIST CNN: two 3x3 convs, each + 2x2 max-pool, then one FC layer."""
    rng = _rng(seed)
    c1, c2 = int(channels[0]), int(channels[1])
    # 3x3 conv with padding 1 keeps spatial size; each pool halves it.
    size_after = image_size // 2 // 2
    layers = [
        Conv2D(in_channels, c1, kernel_size=3, rng=rng, padding=1, name="conv1"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(c1, c2, kernel_size=3, rng=rng, padding=1, name="conv2"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(c2 * size_after * size_after, num_classes, rng, name="head"),
    ]
    return Sequential(layers)


def make_cifar_cnn(
    num_classes: int = 10,
    channels: Sequence[int] = (6, 16),
    hidden: int = 64,
    image_size: int = 32,
    in_channels: int = 3,
    seed: Optional[int | np.random.Generator] = 0,
) -> Sequential:
    """The paper's CIFAR-10 CNN: two 5x5 convs, each + 2x2 max-pool, then two FC layers."""
    rng = _rng(seed)
    c1, c2 = int(channels[0]), int(channels[1])
    # 5x5 conv without padding shrinks by 4; pooling halves.
    s1 = (image_size - 4) // 2
    s2 = (s1 - 4) // 2
    if s2 <= 0:
        raise ValueError("image_size too small for the CIFAR CNN architecture")
    layers = [
        Conv2D(in_channels, c1, kernel_size=5, rng=rng, name="conv1"),
        ReLU(),
        MaxPool2D(2),
        Conv2D(c1, c2, kernel_size=5, rng=rng, name="conv2"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(c2 * s2 * s2, hidden, rng, name="fc1"),
        ReLU(),
        Dense(hidden, num_classes, rng, name="head"),
    ]
    return Sequential(layers)
