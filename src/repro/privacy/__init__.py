"""Differential-privacy substrate.

Implements the pieces of Sec. III-B and Theorem 1:

* L2 gradient clipping (eq. 10/13) and the Gaussian mechanism (eq. 4/11/14);
* sensitivity helpers (Definition 2);
* noise calibration — both the classic Gaussian-mechanism bound
  ``sigma >= sqrt(2 ln(1.25/delta)) * sensitivity / epsilon`` and the
  PDSL-specific per-round bound of Theorem 1 (eq. 27);
* a :class:`PrivacyAccountant` tracking cumulative privacy loss over rounds
  via basic and advanced composition.
"""

from repro.privacy.mechanisms import (
    GaussianMechanism,
    clip_by_l2_norm,
    clip_rows_by_l2_norm,
    clipped_sensitivity,
)
from repro.privacy.calibration import (
    gaussian_sigma,
    epsilon_for_sigma,
    pdsl_sigma_lower_bound,
    pdsl_sigma_for_topology,
)
from repro.privacy.accountant import PrivacyAccountant, CompositionMethod

__all__ = [
    "GaussianMechanism",
    "clip_by_l2_norm",
    "clip_rows_by_l2_norm",
    "clipped_sensitivity",
    "gaussian_sigma",
    "epsilon_for_sigma",
    "pdsl_sigma_lower_bound",
    "pdsl_sigma_for_topology",
    "PrivacyAccountant",
    "CompositionMethod",
]
