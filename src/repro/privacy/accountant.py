"""Privacy accounting across rounds.

Theorem 1 gives a *per-round* (epsilon, delta)-DP guarantee.  Running ``T``
rounds composes ``T`` such mechanisms; the accountant tracks the cumulative
loss under two standard composition theorems so experiments can report the
total budget spent:

* **basic composition** — ``(sum eps_t, sum delta_t)``;
* **advanced composition** (Dwork & Roth, Thm. 3.20) — for ``k`` mechanisms
  each (eps, delta)-DP and a slack ``delta'``, the composition is
  ``(eps * sqrt(2 k ln(1/delta')) + k eps (e^eps - 1), k delta + delta')``-DP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Tuple

__all__ = ["CompositionMethod", "PrivacyAccountant"]


class CompositionMethod(str, Enum):
    """Which composition theorem to use when reporting cumulative privacy loss."""

    BASIC = "basic"
    ADVANCED = "advanced"


@dataclass
class PrivacyAccountant:
    """Tracks the (epsilon, delta) spent by a sequence of DP mechanisms.

    Usage::

        accountant = PrivacyAccountant()
        for round in range(T):
            ...  # run one round of the algorithm
            accountant.record(epsilon_per_round, delta_per_round)
        total_eps, total_delta = accountant.total(CompositionMethod.ADVANCED)
    """

    events: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, epsilon: float, delta: float, count: int = 1) -> None:
        """Record ``count`` releases of an (epsilon, delta)-DP mechanism."""
        if epsilon < 0 or not 0.0 <= delta < 1.0:
            raise ValueError("epsilon must be >= 0 and delta in [0, 1)")
        if count <= 0:
            raise ValueError("count must be positive")
        self.events.extend([(float(epsilon), float(delta))] * int(count))

    @property
    def num_events(self) -> int:
        return len(self.events)

    def reset(self) -> None:
        self.events.clear()

    def total_basic(self) -> Tuple[float, float]:
        """Basic (sequential) composition: budgets simply add up."""
        eps = sum(e for e, _ in self.events)
        delta = sum(d for _, d in self.events)
        return float(eps), float(min(delta, 1.0))

    def total_advanced(self, delta_slack: float = 1e-6) -> Tuple[float, float]:
        """Advanced composition with slack ``delta_slack``.

        Requires all recorded events to share the same (epsilon, delta); the
        PDSL experiments satisfy this because the per-round mechanism is
        identical each round.  Falls back to basic composition when the
        events are heterogeneous.
        """
        if not self.events:
            return 0.0, 0.0
        if not 0.0 < delta_slack < 1.0:
            raise ValueError("delta_slack must lie in (0, 1)")
        first = self.events[0]
        if any(ev != first for ev in self.events[1:]):
            return self.total_basic()
        eps, delta = first
        k = len(self.events)
        if eps == 0.0:
            return 0.0, float(min(k * delta, 1.0))
        composed_eps = eps * math.sqrt(2.0 * k * math.log(1.0 / delta_slack)) + k * eps * (
            math.exp(eps) - 1.0
        )
        composed_delta = k * delta + delta_slack
        return float(composed_eps), float(min(composed_delta, 1.0))

    def total(
        self, method: CompositionMethod = CompositionMethod.ADVANCED, delta_slack: float = 1e-6
    ) -> Tuple[float, float]:
        """Cumulative (epsilon, delta) under the requested composition method."""
        if method == CompositionMethod.BASIC:
            return self.total_basic()
        if method == CompositionMethod.ADVANCED:
            return self.total_advanced(delta_slack=delta_slack)
        raise ValueError(f"unknown composition method: {method}")
