"""Privacy accounting across rounds.

Units and scope
---------------
``epsilon`` (the privacy-loss bound, dimensionless, > 0) and ``delta`` (the
failure probability, in ``(0, 1)``) always refer to *one* release of the
Gaussian mechanism — in this codebase, one communication round of an
algorithm, because every gradient an agent shares within a round is either
clipped-and-noised once or post-processing of such a release.  This is the
per-round guarantee of the paper's Theorem 1: each round of Algorithm 1 is
``(epsilon, delta)``-DP with respect to one agent's local dataset when
``sigma`` is calibrated via :mod:`repro.privacy.calibration`.

Running ``T`` rounds composes ``T`` such mechanisms.  The accountant records
one ``(epsilon, delta)`` event per round (see
:meth:`~repro.core.base.DecentralizedAlgorithm.run_round`) and reports the
*composed* budget — the cumulative privacy loss of the entire training run —
under two standard composition theorems:

* **basic composition** — ``(sum_t eps_t, sum_t delta_t)``; tight for very
  small ``T`` or heterogeneous events, linear in ``T`` otherwise;
* **advanced composition** (Dwork & Roth, Thm. 3.20) — for ``k`` mechanisms
  each (eps, delta)-DP and a slack ``delta'``, the composition is
  ``(eps * sqrt(2 k ln(1/delta')) + k eps (e^eps - 1), k delta + delta')``-DP,
  i.e. the epsilon grows like ``sqrt(k)`` instead of ``k`` for small ``eps``.

Per-round values are what configs specify (``AlgorithmConfig.epsilon`` /
``delta``); composed values are what experiments report
(``DecentralizedAlgorithm.privacy_spent``).  Do not compare the two
directly — a per-round ``epsilon = 0.5`` run over ``T = 100`` rounds has
spent far more than ``0.5`` in total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Tuple

__all__ = ["CompositionMethod", "PrivacyAccountant"]


class CompositionMethod(str, Enum):
    """Which composition theorem to use when reporting cumulative privacy loss."""

    BASIC = "basic"
    ADVANCED = "advanced"


@dataclass
class PrivacyAccountant:
    """Tracks the (epsilon, delta) spent by a sequence of DP mechanisms.

    Each recorded event is one *per-round* ``(epsilon, delta)`` pair; the
    ``total*`` methods return the *composed* budget over all recorded
    events (the quantity a paper would report as "total privacy cost after
    ``T`` rounds").

    Usage::

        accountant = PrivacyAccountant()
        for round in range(T):
            ...  # run one round of the algorithm
            accountant.record(epsilon_per_round, delta_per_round)
        total_eps, total_delta = accountant.total(CompositionMethod.ADVANCED)
    """

    events: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, epsilon: float, delta: float, count: int = 1) -> None:
        """Record ``count`` releases of an (epsilon, delta)-DP mechanism.

        ``epsilon`` and ``delta`` are *per-release* (per-round) values, not
        cumulative ones; composition happens in :meth:`total`.
        """
        if epsilon < 0 or not 0.0 <= delta < 1.0:
            raise ValueError("epsilon must be >= 0 and delta in [0, 1)")
        if count <= 0:
            raise ValueError("count must be positive")
        self.events.extend([(float(epsilon), float(delta))] * int(count))

    @property
    def num_events(self) -> int:
        return len(self.events)

    def reset(self) -> None:
        self.events.clear()

    def state_dict(self) -> List[Tuple[float, float]]:
        """The recorded per-round events, for run checkpoints."""
        return [tuple(event) for event in self.events]

    def load_state_dict(self, events: List[Tuple[float, float]]) -> None:
        """Restore events captured by :meth:`state_dict` (replaces any current ones)."""
        self.events = [(float(eps), float(delta)) for eps, delta in events]

    def total_basic(self) -> Tuple[float, float]:
        """Composed budget under basic (sequential) composition.

        Budgets simply add up: ``(sum_t eps_t, min(sum_t delta_t, 1))``.
        Always valid, but loose for long runs — epsilon grows linearly in
        the number of rounds.
        """
        eps = sum(e for e, _ in self.events)
        delta = sum(d for _, d in self.events)
        return float(eps), float(min(delta, 1.0))

    def total_advanced(self, delta_slack: float = 1e-6) -> Tuple[float, float]:
        """Composed budget under advanced composition with slack ``delta_slack``.

        For ``k`` identical per-round ``(eps, delta)`` events the result is
        ``(eps * sqrt(2 k ln(1/delta_slack)) + k eps (e^eps - 1),
        k delta + delta_slack)`` — a ``sqrt(k)`` epsilon growth for small
        per-round epsilons, at the cost of adding ``delta_slack`` to the
        composed delta.

        Requires all recorded events to share the same (epsilon, delta); the
        PDSL experiments satisfy this because the per-round mechanism is
        identical each round.  Falls back to basic composition when the
        events are heterogeneous.
        """
        if not self.events:
            return 0.0, 0.0
        if not 0.0 < delta_slack < 1.0:
            raise ValueError("delta_slack must lie in (0, 1)")
        first = self.events[0]
        if any(ev != first for ev in self.events[1:]):
            return self.total_basic()
        eps, delta = first
        k = len(self.events)
        if eps == 0.0:
            return 0.0, float(min(k * delta, 1.0))
        composed_eps = eps * math.sqrt(2.0 * k * math.log(1.0 / delta_slack)) + k * eps * (
            math.exp(eps) - 1.0
        )
        composed_delta = k * delta + delta_slack
        return float(composed_eps), float(min(composed_delta, 1.0))

    def total(
        self, method: CompositionMethod = CompositionMethod.ADVANCED, delta_slack: float = 1e-6
    ) -> Tuple[float, float]:
        """Cumulative (epsilon, delta) under the requested composition method."""
        if method == CompositionMethod.BASIC:
            return self.total_basic()
        if method == CompositionMethod.ADVANCED:
            return self.total_advanced(delta_slack=delta_slack)
        raise ValueError(f"unknown composition method: {method}")
