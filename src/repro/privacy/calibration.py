"""Noise calibration: classic Gaussian-mechanism bound and Theorem 1.

Two calibration routes are provided:

* :func:`gaussian_sigma` — the textbook bound (Dwork & Roth, Thm. 3.22):
  ``sigma >= sqrt(2 ln(1.25/delta)) * Delta_2 / epsilon`` for a query with L2
  sensitivity ``Delta_2``.
* :func:`pdsl_sigma_lower_bound` / :func:`pdsl_sigma_for_topology` — the
  PDSL-specific per-round bound of Theorem 1 (eq. 27), which accounts for the
  Shapley-weighted aggregation of the neighbours' perturbed gradients:

  ``sigma >= max_i  2C (1/omega_min + sum_{j in M_i} 1/omega_{ij})
             sqrt(2 ln(1.25/delta))
             / ( phi_min * epsilon * sqrt(sum_{j in M_i} omega_{ij}^{-2}) )``
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.topology.graphs import Topology

__all__ = [
    "gaussian_sigma",
    "epsilon_for_sigma",
    "pdsl_sigma_lower_bound",
    "pdsl_sigma_for_topology",
]


def _validate_budget(epsilon: float, delta: float) -> None:
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float) -> float:
    """Classic Gaussian-mechanism noise scale for (epsilon, delta)-DP."""
    _validate_budget(epsilon, delta)
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    return math.sqrt(2.0 * math.log(1.25 / delta)) * sensitivity / epsilon


def epsilon_for_sigma(sigma: float, delta: float, sensitivity: float) -> float:
    """Invert :func:`gaussian_sigma`: the epsilon achieved by a given sigma."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    return math.sqrt(2.0 * math.log(1.25 / delta)) * sensitivity / sigma


def pdsl_sigma_lower_bound(
    epsilon: float,
    delta: float,
    clip_threshold: float,
    neighbor_weights: Sequence[float],
    omega_min: float,
    phi_min: float,
) -> float:
    """Per-agent sigma lower bound of Theorem 1 (the inner expression of eq. 27).

    Parameters
    ----------
    neighbor_weights:
        The mixing weights ``{omega_{ij}}_{j in M_i}`` of one agent's closed
        neighbourhood (all strictly positive).
    omega_min:
        The global minimum positive mixing weight ``omega_min``.
    phi_min:
        ``phi_hat_min`` — the smallest normalised Shapley share
        ``phi_hat_{ij} / sum_k phi_hat_{ik}`` observed (or assumed) over all
        neighbours and rounds; must lie in (0, 1].
    """
    _validate_budget(epsilon, delta)
    if clip_threshold <= 0:
        raise ValueError("clip_threshold must be positive")
    weights = np.asarray(list(neighbor_weights), dtype=np.float64)
    if weights.size == 0 or (weights <= 0).any():
        raise ValueError("neighbor_weights must be non-empty and strictly positive")
    if omega_min <= 0:
        raise ValueError("omega_min must be positive")
    if not 0.0 < phi_min <= 1.0:
        raise ValueError("phi_min must lie in (0, 1]")
    numerator = (
        2.0
        * clip_threshold
        * (1.0 / omega_min + float(np.sum(1.0 / weights)))
        * math.sqrt(2.0 * math.log(1.25 / delta))
    )
    denominator = phi_min * epsilon * math.sqrt(float(np.sum(weights ** -2.0)))
    return numerator / denominator


def pdsl_sigma_for_topology(
    topology: "Topology",
    epsilon: float,
    delta: float,
    clip_threshold: float,
    phi_min: Optional[float] = None,
) -> float:
    """The full Theorem 1 bound: maximum of the per-agent bounds over all agents.

    ``phi_min`` defaults to ``1 / max_i |M_i|`` — the value attained when all
    normalised Shapley values in a neighbourhood are equal, which is the
    natural a-priori choice before any Shapley values have been observed.
    """
    omega_min = topology.min_weight()
    if phi_min is None:
        largest_neighborhood = max(
            len(topology.neighbors(i, include_self=True)) for i in range(topology.num_agents)
        )
        phi_min = 1.0 / float(largest_neighborhood)
    bounds = []
    for agent in range(topology.num_agents):
        neighbors = topology.neighbors(agent, include_self=True)
        weights = [topology.weight(agent, j) for j in neighbors]
        bounds.append(
            pdsl_sigma_lower_bound(
                epsilon=epsilon,
                delta=delta,
                clip_threshold=clip_threshold,
                neighbor_weights=weights,
                omega_min=omega_min,
                phi_min=phi_min,
            )
        )
    return float(max(bounds))
