"""Gradient clipping and the Gaussian mechanism (Definitions 1–2, eqs. 10–14).

Two granularities are provided: the per-vector helpers used by the loop
backend (:func:`clip_by_l2_norm`, :meth:`GaussianMechanism.privatize`) and
the row-stack helpers used by the vectorized engine
(:func:`clip_rows_by_l2_norm`, :meth:`GaussianMechanism.add_noise_rows`).
Noise stays per-*mechanism* even on the vectorized path — each row of a
fleet stack belongs to a different agent's mechanism and must consume that
agent's random stream — but all of one agent's rows are drawn in a single
batched ``normal`` call, which fills the array sequentially and therefore
consumes the stream exactly like the equivalent per-row draws.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "clip_by_l2_norm",
    "clip_rows_by_l2_norm",
    "clipped_sensitivity",
    "GaussianMechanism",
]


def clip_by_l2_norm(vector: np.ndarray, clip_threshold: float) -> np.ndarray:
    """L2-clip a gradient vector to norm at most ``C`` (eq. 10 / 13).

    ``g_tilde = g / max(1, ||g|| / C)`` — the vector is returned unchanged when
    its norm is already at most ``C`` and rescaled to exactly ``C`` otherwise.
    """
    if clip_threshold <= 0:
        raise ValueError("clip_threshold must be positive")
    vector = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(vector))
    scale = max(1.0, norm / clip_threshold)
    return vector / scale


def clip_rows_by_l2_norm(matrix: np.ndarray, clip_threshold: float) -> np.ndarray:
    """Row-wise L2 clipping of a ``(num_gradients, d)`` stack of gradients.

    Applies ``g_tilde = g / max(1, ||g|| / C)`` independently to every row;
    equivalent to mapping :func:`clip_by_l2_norm` over the rows but computed
    with a single vectorized pass.  Always returns a new array.
    """
    if clip_threshold <= 0:
        raise ValueError("clip_threshold must be positive")
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D stack of gradients, got shape {matrix.shape}")
    norms = np.linalg.norm(matrix, axis=1)
    scales = np.maximum(1.0, norms / clip_threshold)
    return matrix / scales[:, None]


def clipped_sensitivity(clip_threshold: float) -> float:
    """L2 sensitivity of a clipped single-sample gradient query (Definition 2).

    Replacing the one sample that produced the gradient can change the clipped
    gradient by at most ``2C`` in L2 norm.
    """
    if clip_threshold <= 0:
        raise ValueError("clip_threshold must be positive")
    return 2.0 * float(clip_threshold)


class GaussianMechanism:
    """Adds isotropic Gaussian noise ``N(0, sigma^2 I_d)`` to query outputs (eq. 4).

    Parameters
    ----------
    sigma:
        Noise standard deviation per coordinate.
    clip_threshold:
        If given, inputs are L2-clipped to this threshold before noising
        (the combination used by Algorithm 1, lines 3–4 and 9–10).
    rng:
        Source of randomness; injected so experiments are reproducible.
    """

    def __init__(
        self,
        sigma: float,
        rng: np.random.Generator,
        clip_threshold: Optional[float] = None,
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if clip_threshold is not None and clip_threshold <= 0:
            raise ValueError("clip_threshold must be positive when provided")
        self.sigma = float(sigma)
        self.clip_threshold = clip_threshold
        self.rng = rng

    def clip(self, vector: np.ndarray) -> np.ndarray:
        """Apply the configured clipping (identity if no threshold was set)."""
        vector = np.asarray(vector, dtype=np.float64)
        if self.clip_threshold is None:
            return vector
        return clip_by_l2_norm(vector, self.clip_threshold)

    def add_noise(self, vector: np.ndarray) -> np.ndarray:
        """Add ``N(0, sigma^2 I)`` noise to an (already clipped) vector."""
        vector = np.asarray(vector, dtype=np.float64)
        if self.sigma == 0.0:
            return vector.copy()
        return vector + self.rng.normal(0.0, self.sigma, size=vector.shape)

    def add_noise_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Add independent ``N(0, sigma^2 I)`` noise to every row of a stack.

        One batched draw from this mechanism's stream instead of one
        Python-level call per row.  ``Generator.normal`` fills an array
        sequentially, so a single ``(k, d)`` draw consumes the stream exactly
        like ``k`` successive ``(d,)`` draws — mapping :meth:`add_noise` over
        the rows yields bit-identical output, just with per-row call
        overhead that profiles show dominating at fleet sizes >= 1024.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D stack of vectors, got shape {matrix.shape}")
        if self.sigma == 0.0:
            return matrix.copy()
        return matrix + self.rng.normal(0.0, self.sigma, size=matrix.shape)

    def privatize(self, vector: np.ndarray) -> np.ndarray:
        """Clip then perturb — the full per-gradient pipeline of Algorithm 1."""
        return self.add_noise(self.clip(vector))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GaussianMechanism(sigma={self.sigma}, clip_threshold={self.clip_threshold})"
        )
