"""Sharded fleet state for large-N simulation.

The engine's canonical representation of the fleet is one ``(num_agents,
dimension)`` matrix.  This package makes that representation *scalable*:
:class:`FleetState` owns the matrix (in RAM or memory-mapped) and streams
kernels over configurable ``(block_rows, d)`` row blocks, so gossip,
clip+noise and codec passes never materialise whole-fleet temporaries.  The
blocked gossip path is bit-identical to the one-shot product (see
:meth:`repro.topology.mixing.MixingOperator.mix_rows_blocked`), so blocking
is purely a memory/performance knob — configured per algorithm through
``AlgorithmConfig.block_rows`` and per experiment through
``ExperimentSpec.block_rows``.

:class:`RoundScheduler` executes the independent row blocks of a streamed
round stage on a thread pool (``AlgorithmConfig.block_workers``); because
every block owns disjoint rows and pre-split per-agent RNG streams, the
parallel schedule is numerically identical to the serial one.
"""

from repro.sharding.fleet import (
    DEFAULT_BLOCK_BYTES,
    FleetState,
    resolve_block_rows,
    row_blocks,
)
from repro.sharding.scheduler import RoundScheduler

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "FleetState",
    "RoundScheduler",
    "resolve_block_rows",
    "row_blocks",
]
