"""Row-blocked fleet state: the ``(N, d)`` matrix as streamable shards.

The vectorized engine keeps the fleet's parameters as one ``(num_agents,
dimension)`` matrix.  At the scales the paper's production story targets
(10^5–10^6 agents) the matrix itself still fits — 262144 agents at d=64 in
float64 is 128 MiB — but *whole-fleet temporaries* do not: a single
careless ``astype``/``copy``/intermediate in a kernel doubles or triples
the working set exactly where memory is tightest.

:class:`FleetState` owns the matrix and fixes the access pattern: kernels
stream over ``(block_rows, d)`` row blocks (:meth:`blocks`,
:meth:`map_blocks`) instead of materialising fleet-sized intermediates, and
the backing store is either an ordinary in-RAM array or a memory-mapped
``.npy`` file (``storage="memmap"``), in which case the OS pages blocks in
and out and the process never needs the whole matrix resident.  Gossip
composes with :meth:`~repro.topology.mixing.MixingOperator.mix_rows_blocked`
through :meth:`mix_from` — bit-identical to the one-shot ``W @ X`` because
row-blocking a row-independent kernel changes no accumulation order.

``resolve_block_rows`` centralises the default block size: large enough to
amortise per-block Python overhead, small enough that one block plus its
CSR gather stays comfortably inside cache-friendly territory.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "FleetState",
    "resolve_block_rows",
    "row_blocks",
]

#: Target size of one ``(block_rows, d)`` chunk when no explicit
#: ``block_rows`` is configured: 32 MiB keeps the per-block Python/dispatch
#: overhead negligible (a few hundred blocks even at fleet scale) while the
#: chunk plus its gathered CSR inputs stay far below typical RAM headroom.
DEFAULT_BLOCK_BYTES = 32 * 1024 * 1024


def resolve_block_rows(
    num_agents: int,
    dimension: int,
    block_rows: Optional[int] = None,
    itemsize: int = 8,
    target_bytes: int = DEFAULT_BLOCK_BYTES,
) -> int:
    """The row-block size streaming kernels should use.

    An explicit ``block_rows`` wins (clamped to ``[1, num_agents]``);
    otherwise the block is sized so one ``(block_rows, dimension)`` chunk is
    about ``target_bytes``.
    """
    if num_agents < 1 or dimension < 1:
        raise ValueError("num_agents and dimension must be positive")
    if block_rows is not None:
        if block_rows < 1:
            raise ValueError("block_rows must be a positive integer")
        return min(int(block_rows), num_agents)
    per_row = max(1, dimension * itemsize)
    return max(1, min(num_agents, target_bytes // per_row))


def row_blocks(num_rows: int, block_rows: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` half-open row ranges covering ``0..num_rows``."""
    if block_rows < 1:
        raise ValueError("block_rows must be a positive integer")
    for start in range(0, num_rows, block_rows):
        yield start, min(start + block_rows, num_rows)


class FleetState:
    """The ``(num_agents, dimension)`` fleet matrix with a blocked access pattern.

    Parameters
    ----------
    num_agents, dimension:
        Fleet shape.
    dtype:
        Element type of the backing store (``float64`` or ``float32``).
    block_rows:
        Row-block size for :meth:`blocks` / :meth:`map_blocks` /
        :meth:`mix_from`; ``None`` resolves a default from
        :func:`resolve_block_rows`.
    storage:
        ``"ram"`` (default) allocates an ordinary contiguous array;
        ``"memmap"`` backs the matrix with an anonymous memory-mapped
        ``.npy`` file (created via ``np.lib.format.open_memmap`` in
        ``directory`` and unlinked on :meth:`close`), so the OS pages row
        blocks instead of the process holding the whole fleet resident.
    directory:
        Where memmap backing files are created (defaults to the system
        temporary directory).
    """

    def __init__(
        self,
        num_agents: int,
        dimension: int,
        dtype: np.dtype = np.float64,
        block_rows: Optional[int] = None,
        storage: str = "ram",
        directory: Optional[str] = None,
    ) -> None:
        if num_agents < 1 or dimension < 1:
            raise ValueError("num_agents and dimension must be positive")
        if storage not in ("ram", "memmap"):
            raise ValueError("storage must be 'ram' or 'memmap'")
        self.num_agents = int(num_agents)
        self.dimension = int(dimension)
        self.dtype = np.dtype(dtype)
        self.block_rows = resolve_block_rows(
            self.num_agents, self.dimension, block_rows, itemsize=self.dtype.itemsize
        )
        self.storage = storage
        self._path: Optional[str] = None
        if storage == "memmap":
            fd, path = tempfile.mkstemp(
                prefix=".fleet.", suffix=".npy", dir=directory
            )
            os.close(fd)
            self._path = path
            self._array: np.ndarray = np.lib.format.open_memmap(
                path, mode="w+", dtype=self.dtype, shape=(self.num_agents, self.dimension)
            )
        else:
            self._array = np.zeros((self.num_agents, self.dimension), dtype=self.dtype)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, array: np.ndarray, block_rows: Optional[int] = None) -> "FleetState":
        """A FleetState view over an existing ``(N, d)`` array (no copy)."""
        array = np.asarray(array)
        if array.ndim != 2:
            raise ValueError("fleet state must be a 2-D (num_agents, dimension) array")
        state = cls.__new__(cls)
        state.num_agents = int(array.shape[0])
        state.dimension = int(array.shape[1])
        state.dtype = array.dtype
        state.block_rows = resolve_block_rows(
            state.num_agents, state.dimension, block_rows, itemsize=array.dtype.itemsize
        )
        state.storage = "memmap" if isinstance(array, np.memmap) else "ram"
        state._path = None
        state._array = array
        return state

    @property
    def array(self) -> np.ndarray:
        """The backing ``(num_agents, dimension)`` array (view, not a copy)."""
        return self._array

    @property
    def nbytes(self) -> int:
        return self.num_agents * self.dimension * self.dtype.itemsize

    # ------------------------------------------------------------------
    # Blocked access
    # ------------------------------------------------------------------
    def blocks(self, readonly: bool = False) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, view)`` over the configured row blocks.

        With ``readonly=True`` each view is write-protected: stages that
        only *read* the fleet (e.g. the gossip source rows) iterate over
        these views, so a buggy stage that tries to write through one
        raises immediately instead of silently corrupting the backing
        store.
        """
        for start, stop in row_blocks(self.num_agents, self.block_rows):
            view = self._array[start:stop]
            if readonly:
                view = view.view()
                view.flags.writeable = False
            yield start, stop, view

    @property
    def readonly_array(self) -> np.ndarray:
        """A write-protected view of the whole backing array (no copy)."""
        view = self._array.view()
        view.flags.writeable = False
        return view

    def map_blocks(self, fn: Callable[[np.ndarray], np.ndarray]) -> "FleetState":
        """Apply ``fn`` to each ``(block, d)`` chunk, writing results in place.

        ``fn`` receives a row-block view and returns the transformed block
        (same shape); row-wise kernels (clipping, codecs, noise) applied this
        way are identical to the whole-matrix call because they never look
        across rows.
        """
        for start, stop, view in self.blocks():
            self._array[start:stop] = fn(view)
        return self

    def fill_from(self, source: np.ndarray) -> "FleetState":
        """Copy ``source`` into the backing store block by block."""
        source = np.asarray(source)
        if source.shape != (self.num_agents, self.dimension):
            raise ValueError(
                f"source has shape {source.shape}, expected "
                f"({self.num_agents}, {self.dimension})"
            )
        for start, stop in row_blocks(self.num_agents, self.block_rows):
            self._array[start:stop] = source[start:stop]
        return self

    def mix_from(self, operator, source: "FleetState") -> "FleetState":
        """One gossip step ``self <- W @ source`` streamed block by block.

        Delegates to
        :meth:`~repro.topology.mixing.MixingOperator.mix_rows_blocked`, so
        the result is bit-identical to the one-shot ``operator.apply``; the
        output lands directly in this state's backing store (which may be a
        memmap), never materialising a second fleet-sized temporary.
        """
        if source.num_agents != self.num_agents or source.dimension != self.dimension:
            raise ValueError("source fleet shape does not match")
        # The source is a pure input of the gossip product: read it through
        # a write-protected view so an aliasing bug in the kernel raises
        # instead of corrupting the source mid-mix.
        operator.mix_rows_blocked(source.readonly_array, self.block_rows, out=self._array)
        return self

    def to_array(self) -> np.ndarray:
        """The state as an in-RAM ndarray (copies when memmap-backed)."""
        if self.storage == "memmap":
            return np.array(self._array)
        return self._array

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush memmap-backed storage to disk (no-op for RAM storage)."""
        if isinstance(self._array, np.memmap):
            self._array.flush()

    def close(self) -> None:
        """Release the backing store; memmap files are unlinked."""
        path = self._path
        self._path = None
        self._array = np.zeros((0, self.dimension), dtype=self.dtype)
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def __enter__(self) -> "FleetState":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetState(num_agents={self.num_agents}, dimension={self.dimension}, "
            f"dtype={self.dtype.name}, block_rows={self.block_rows}, "
            f"storage={self.storage!r})"
        )
