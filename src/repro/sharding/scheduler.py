"""Parallel execution of independent row blocks within a round stage.

The streamed round pipeline (``core/base.py``) decomposes every stage of a
training round — batch drawing + gradient evaluation, clip+noise, momentum
and state updates, gossip — into work over disjoint ``(block_rows, d)`` row
blocks.  Each block owns its rows exclusively and consumes only the
per-agent RNG streams of those rows, so blocks of one stage are
*independent*: they can run in any order, or concurrently, and produce
bit-identical results.

:class:`RoundScheduler` is the small dispatcher that exploits this.  With
``workers=1`` (the default) it runs blocks serially in ascending row order
— exactly the historical loop.  With ``workers > 1`` it submits the blocks
to a shared :class:`~concurrent.futures.ThreadPoolExecutor`; the heavy
per-block work is NumPy kernels (matmuls, reductions, RNG fills), which
release the GIL, so on multi-core hosts the blocks genuinely overlap.
Results are still collected in submission (ascending-block) order, and
exceptions from any block propagate to the caller.

Threads — not processes — are the right tool here: blocks write into
disjoint row ranges of shared (possibly memmap-backed) fleet matrices, so
a fork/pickle boundary would force fleet-sized copies, defeating the
out-of-core design.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["RoundScheduler"]

T = TypeVar("T")


class RoundScheduler:
    """Run per-block stage callables, serially or on a thread pool.

    Parameters
    ----------
    workers:
        Number of worker threads.  ``1`` (default) executes blocks inline
        on the calling thread in ascending order — no pool is ever
        created, so the serial path has zero scheduling overhead and is
        trivially bit-identical.  Values > 1 lazily create a persistent
        ``ThreadPoolExecutor`` reused across stages and rounds.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether this scheduler may run blocks concurrently."""
        return self.workers > 1

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-block"
            )
        return self._pool

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[int, int], T],
        blocks: Iterable[Tuple[int, int]],
        serial: bool = False,
    ) -> List[T]:
        """Apply ``fn(start, stop)`` to every block; results in block order.

        ``serial=True`` forces inline execution regardless of ``workers``
        — stages that touch state which is not safe to share across
        threads (e.g. a mutable scalar :class:`~repro.nn.model.Model`
        without a stacked evaluator) use this escape hatch.  A single
        block also runs inline: there is nothing to overlap.

        Exceptions raised by any block propagate to the caller (after all
        submitted blocks have settled, so partially-written disjoint rows
        are never silently abandoned mid-flight).
        """
        block_list: Sequence[Tuple[int, int]] = list(blocks)
        if serial or not self.parallel or len(block_list) <= 1:
            return [fn(start, stop) for start, stop in block_list]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, start, stop) for start, stop in block_list]
        results: List[T] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool recreated on demand)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "RoundScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundScheduler(workers={self.workers})"
