"""Decentralized-learning simulation engine.

The paper evaluates PDSL by simulating ``M`` agents exchanging models and
gradients over a communication graph.  This package provides that substrate:

* :class:`Network` — per-round mailbox message passing between agents, with
  optional message-drop fault injection and traffic accounting;
* :class:`Metrics` containers (:class:`RoundRecord`, :class:`TrainingHistory`)
  recording the quantities the paper plots (average training loss per round,
  test accuracy, consensus distance);
* :class:`RunSession` — the round loop as an explicit lifecycle
  (start/step/checkpoint/finish) with a :class:`CallbackBus` for round
  events and bit-identical checkpoint/resume;
* :func:`run_decentralized` — the one-call wrapper: step the algorithm,
  evaluate, record.
"""

from repro.simulation.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.simulation.network import Message, Network
from repro.simulation.metrics import (
    RoundRecord,
    TrainingHistory,
    consensus_distance,
    histories_equal,
    history_from_dict,
    history_to_dict,
)
from repro.simulation.runner import (
    CallbackBus,
    EvaluationConfig,
    RunSession,
    run_decentralized,
)

__all__ = [
    "Message",
    "Network",
    "RoundRecord",
    "TrainingHistory",
    "consensus_distance",
    "histories_equal",
    "history_from_dict",
    "history_to_dict",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "CallbackBus",
    "EvaluationConfig",
    "RunSession",
    "run_decentralized",
]
