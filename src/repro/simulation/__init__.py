"""Decentralized-learning simulation engine.

The paper evaluates PDSL by simulating ``M`` agents exchanging models and
gradients over a communication graph.  This package provides that substrate:

* :class:`Network` — per-round mailbox message passing between agents, with
  optional message-drop fault injection and traffic accounting;
* :class:`Metrics` containers (:class:`RoundRecord`, :class:`TrainingHistory`)
  recording the quantities the paper plots (average training loss per round,
  test accuracy, consensus distance);
* :func:`run_decentralized` — the round loop: step the algorithm, evaluate,
  record.
"""

from repro.simulation.network import Message, Network
from repro.simulation.metrics import RoundRecord, TrainingHistory, consensus_distance
from repro.simulation.runner import EvaluationConfig, run_decentralized

__all__ = [
    "Message",
    "Network",
    "RoundRecord",
    "TrainingHistory",
    "consensus_distance",
    "EvaluationConfig",
    "run_decentralized",
]
