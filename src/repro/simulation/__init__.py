"""Decentralized-learning simulation engine.

The paper evaluates PDSL by simulating ``M`` agents exchanging models and
gradients over a communication graph.  This package provides that substrate:

* :class:`Network` — per-round mailbox message passing between agents, with
  optional message-drop fault injection and traffic accounting;
* :class:`Metrics` containers (:class:`RoundRecord`, :class:`TrainingHistory`)
  recording the quantities the paper plots (average training loss per round,
  test accuracy, consensus distance);
* :class:`RunSession` — the round loop as an explicit lifecycle
  (start/step/checkpoint/finish) with a :class:`CallbackBus` for round
  events and bit-identical checkpoint/resume;
* :func:`run_decentralized` — the one-call wrapper: step the algorithm,
  evaluate, record.
* :mod:`repro.simulation.events` — the discrete-event time model: a
  deterministic event queue, per-agent :class:`DeviceTrace` objects and the
  :class:`AsyncEngine` wrapper that runs any algorithm on simulated time
  (barrier mode is bit-identical to the plain engines under uniform unit
  traces; async mode gossips on message arrival).
"""

from repro.simulation.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.simulation.network import Message, Network
from repro.simulation.metrics import (
    RoundRecord,
    TrainingHistory,
    consensus_distance,
    histories_equal,
    history_from_dict,
    history_to_dict,
)
from repro.simulation.runner import (
    CallbackBus,
    EvaluationConfig,
    RunSession,
    run_decentralized,
)
from repro.simulation.events import (
    AsyncEngine,
    DeviceTrace,
    Event,
    EventQueue,
    engine_from_time_model,
    load_traces,
    save_traces,
    synthetic_traces,
    uniform_traces,
)

__all__ = [
    "Message",
    "Network",
    "RoundRecord",
    "TrainingHistory",
    "consensus_distance",
    "histories_equal",
    "history_from_dict",
    "history_to_dict",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "CallbackBus",
    "EvaluationConfig",
    "RunSession",
    "run_decentralized",
    "AsyncEngine",
    "DeviceTrace",
    "Event",
    "EventQueue",
    "engine_from_time_model",
    "load_traces",
    "save_traces",
    "synthetic_traces",
    "uniform_traces",
]
