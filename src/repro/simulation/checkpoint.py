"""Durable run state: atomic file writes and training checkpoints.

Two concerns live here because they share one invariant — **an interrupt can
never leave a corrupt artifact behind**:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` write to a temporary
  file in the destination directory and promote it with :func:`os.replace`,
  so readers only ever observe the old complete file or the new complete
  file, never a torn write.  Every JSON the experiment layer persists
  (histories, run-store specs and statuses) goes through these.
* :func:`save_checkpoint` / :func:`load_checkpoint` persist the state a
  :class:`~repro.simulation.runner.RunSession` needs to resume a training
  run **bit-identically**: the algorithm's
  :meth:`~repro.core.base.DecentralizedAlgorithm.state_dict` (fleet matrices
  and every per-agent RNG stream), the partial
  :class:`~repro.simulation.metrics.TrainingHistory`, and the session's
  bookkeeping.  Checkpoints are pickled, not JSON: exact float64 and
  bit-generator round-trips are what make a resumed trajectory identical to
  an uninterrupted one, and the payload contains NumPy arrays throughout.
  They are local, trusted artifacts (the run directory is produced and
  consumed by the same experiment pipeline); never load a checkpoint from an
  untrusted source.

Checkpoint files inside a run directory follow the ``round_<NNNNNN>.ckpt``
naming scheme so :func:`latest_checkpoint` can find the resume point without
any side index.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

__all__ = [
    "CHECKPOINT_FORMAT",
    "MEMMAP_THRESHOLD_BYTES",
    "atomic_write_bytes",
    "atomic_write_text",
    "save_memmap_array",
    "load_memmap_array",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_path",
    "latest_checkpoint",
    "list_checkpoints",
]

PathLike = Union[str, Path]

#: Version stamp embedded in every checkpoint so a future layout change can
#: detect (and refuse, with a clear error) files written by older code.
CHECKPOINT_FORMAT = 1

#: Arrays at least this large are written as memory-mapped ``.npy`` sidecars
#: when a checkpoint is saved with ``out_of_core=True``; smaller arrays stay
#: in the pickle, where the sidecar bookkeeping would cost more than it saves.
MEMMAP_THRESHOLD_BYTES = 1 << 20

#: Marker key identifying an externalized array inside a pickled payload.
_MEMMAP_MARKER = "__memmap_sidecar__"

#: Default byte budget per staged row block when streaming an array into a
#: memmap sidecar.  The row-block size is derived from this and the row
#: width, so a wide fleet matrix never stages gigabytes per block.
_COPY_BLOCK_BYTES = 32 << 20

#: Row-block cap for streaming array copies into a memmap sidecar.
_COPY_BLOCK_ROWS = 65536

_CHECKPOINT_NAME = re.compile(r"^round_(\d+)\.ckpt$")


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` so readers never see a partial file.

    The bytes go to a temporary file in the same directory (same filesystem,
    so the final :func:`os.replace` is atomic); the temporary is fsynced and
    then promoted over ``path`` in one step.  On any failure the temporary is
    removed and ``path`` is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates the file 0600; give the promoted artifact the
        # ordinary umask-governed mode a plain open() would have, so saved
        # histories stay readable to whoever could read them before.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomic counterpart of ``Path.write_text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def save_memmap_array(
    path: PathLike, array: np.ndarray, block_rows: Optional[int] = None
) -> Path:
    """Write an array as a ``.npy`` file atomically, streaming row blocks.

    The array is copied into a ``np.lib.format.open_memmap`` temporary in
    the destination directory ``block_rows`` rows at a time (so saving a
    fleet matrix never holds a second in-RAM copy), fsynced, and promoted
    with :func:`os.replace` — the same all-or-nothing dance as
    :func:`atomic_write_bytes`.  When ``block_rows`` is omitted it is sized
    so each staged block stays near ``_COPY_BLOCK_BYTES`` regardless of row
    width (capped at ``_COPY_BLOCK_ROWS``).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    array = np.asarray(array)
    if block_rows is None:
        row_bytes = max(1, array.itemsize * int(np.prod(array.shape[1:], dtype=np.int64)))
        block_rows = max(1, min(_COPY_BLOCK_ROWS, _COPY_BLOCK_BYTES // row_bytes))
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    os.close(descriptor)
    try:
        target = np.lib.format.open_memmap(
            tmp_name, mode="w+", dtype=array.dtype, shape=array.shape
        )
        if array.ndim >= 1 and array.shape[0] > block_rows:
            for start in range(0, array.shape[0], block_rows):
                stop = min(start + block_rows, array.shape[0])
                target[start:stop] = array[start:stop]
        else:
            target[...] = array
        target.flush()
        del target
        with open(tmp_name, "rb+") as handle:
            os.fsync(handle.fileno())
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_memmap_array(path: PathLike, mode: str = "r") -> np.ndarray:
    """Open a ``.npy`` array written by :func:`save_memmap_array` as a memmap.

    The returned array is backed by the file — the OS pages rows in on
    access, so a resuming process reads the fleet matrix without ever
    holding two in-RAM copies.
    """
    return np.load(Path(path), mmap_mode=mode)


def _sidecar_name(path: Path, index: int) -> Path:
    return path.parent / f"{path.name}.arr{index}.npy"


def _externalize_arrays(value, path: Path, counter: List[int]):
    """Swap large ndarrays for sidecar markers, writing each as a memmap file."""
    if isinstance(value, np.ndarray) and value.nbytes >= MEMMAP_THRESHOLD_BYTES:
        index = counter[0]
        counter[0] += 1
        sidecar = _sidecar_name(path, index)
        save_memmap_array(sidecar, value)
        return {
            _MEMMAP_MARKER: sidecar.name,
            "shape": tuple(int(s) for s in value.shape),
            "dtype": str(value.dtype),
        }
    if isinstance(value, dict):
        return {key: _externalize_arrays(item, path, counter) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        swapped = [_externalize_arrays(item, path, counter) for item in value]
        return type(value)(swapped) if isinstance(value, tuple) else swapped
    return value


def _attach_arrays(value, path: Path):
    """Resolve sidecar markers back into (read-only memmap) arrays."""
    if isinstance(value, dict):
        if _MEMMAP_MARKER in value:
            sidecar = path.parent / str(value[_MEMMAP_MARKER])
            if not sidecar.is_file():
                raise ValueError(
                    f"checkpoint {path} references missing array sidecar {sidecar}"
                )
            array = load_memmap_array(sidecar)
            expected = tuple(value.get("shape", array.shape))
            if tuple(array.shape) != expected:
                raise ValueError(
                    f"array sidecar {sidecar} has shape {tuple(array.shape)}, "
                    f"expected {expected}"
                )
            return array
        return {key: _attach_arrays(item, path) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        resolved = [_attach_arrays(item, path) for item in value]
        return type(value)(resolved) if isinstance(value, tuple) else resolved
    return value


def save_checkpoint(
    path: PathLike, payload: Dict[str, object], out_of_core: bool = False
) -> Path:
    """Persist a checkpoint payload atomically.

    ``payload`` is whatever the caller needs to resume (for training runs:
    ``algorithm_state``, ``history`` and ``session`` — see
    :meth:`repro.simulation.runner.RunSession.checkpoint`); this function
    adds the ``format`` stamp and guarantees the write is all-or-nothing.

    With ``out_of_core=True`` every array of at least
    ``MEMMAP_THRESHOLD_BYTES`` (the fleet matrices, at scale) is written as
    a memory-mapped ``.npy`` sidecar next to the checkpoint
    (``<name>.arr<k>.npy``, each promoted atomically, rows streamed in
    blocks) and replaced by a marker in the pickle — so saving and resuming
    never hold two in-RAM copies of the fleet.  :func:`load_checkpoint`
    re-attaches sidecars transparently as read-only memmaps.  Sidecars are
    deterministic per checkpoint path; rewriting the same checkpoint
    replaces them in place.
    """
    if out_of_core:
        payload = _externalize_arrays(dict(payload), Path(path), [0])
    stamped = {"format": CHECKPOINT_FORMAT, **payload}
    return atomic_write_bytes(path, pickle.dumps(stamped, protocol=pickle.HIGHEST_PROTOCOL))


def load_checkpoint(path: PathLike) -> Dict[str, object]:
    """Read a checkpoint written by :func:`save_checkpoint` (format-checked).

    Out-of-core array sidecars are re-attached as read-only memmaps, so the
    caller sees ordinary arrays while the OS pages data in on access.
    """
    path = Path(path)
    with path.open("rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or "format" not in payload:
        raise ValueError(f"{path} is not a run checkpoint")
    if payload["format"] != CHECKPOINT_FORMAT:
        raise ValueError(
            f"{path} has checkpoint format {payload['format']!r}; "
            f"this code reads format {CHECKPOINT_FORMAT}"
        )
    return _attach_arrays(payload, path)


def checkpoint_path(directory: PathLike, rounds_done: int) -> Path:
    """Canonical file name for the checkpoint taken after ``rounds_done`` rounds."""
    if rounds_done < 0:
        raise ValueError("rounds_done must be non-negative")
    return Path(directory) / f"round_{rounds_done:06d}.ckpt"


def list_checkpoints(directory: PathLike) -> List[Path]:
    """All checkpoint files in ``directory``, oldest (fewest rounds) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        (int(match.group(1)), entry)
        for entry in directory.iterdir()
        if (match := _CHECKPOINT_NAME.match(entry.name)) is not None
    ]
    return [entry for _, entry in sorted(found)]


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """The most advanced checkpoint in ``directory`` (``None`` when empty)."""
    checkpoints = list_checkpoints(directory)
    return checkpoints[-1] if checkpoints else None
