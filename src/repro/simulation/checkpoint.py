"""Durable run state: atomic file writes and training checkpoints.

Two concerns live here because they share one invariant — **an interrupt can
never leave a corrupt artifact behind**:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` write to a temporary
  file in the destination directory and promote it with :func:`os.replace`,
  so readers only ever observe the old complete file or the new complete
  file, never a torn write.  Every JSON the experiment layer persists
  (histories, run-store specs and statuses) goes through these.
* :func:`save_checkpoint` / :func:`load_checkpoint` persist the state a
  :class:`~repro.simulation.runner.RunSession` needs to resume a training
  run **bit-identically**: the algorithm's
  :meth:`~repro.core.base.DecentralizedAlgorithm.state_dict` (fleet matrices
  and every per-agent RNG stream), the partial
  :class:`~repro.simulation.metrics.TrainingHistory`, and the session's
  bookkeeping.  Checkpoints are pickled, not JSON: exact float64 and
  bit-generator round-trips are what make a resumed trajectory identical to
  an uninterrupted one, and the payload contains NumPy arrays throughout.
  They are local, trusted artifacts (the run directory is produced and
  consumed by the same experiment pipeline); never load a checkpoint from an
  untrusted source.

Checkpoint files inside a run directory follow the ``round_<NNNNNN>.ckpt``
naming scheme so :func:`latest_checkpoint` can find the resume point without
any side index.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "CHECKPOINT_FORMAT",
    "atomic_write_bytes",
    "atomic_write_text",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_path",
    "latest_checkpoint",
    "list_checkpoints",
]

PathLike = Union[str, Path]

#: Version stamp embedded in every checkpoint so a future layout change can
#: detect (and refuse, with a clear error) files written by older code.
CHECKPOINT_FORMAT = 1

_CHECKPOINT_NAME = re.compile(r"^round_(\d+)\.ckpt$")


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` so readers never see a partial file.

    The bytes go to a temporary file in the same directory (same filesystem,
    so the final :func:`os.replace` is atomic); the temporary is fsynced and
    then promoted over ``path`` in one step.  On any failure the temporary is
    removed and ``path`` is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates the file 0600; give the promoted artifact the
        # ordinary umask-governed mode a plain open() would have, so saved
        # histories stay readable to whoever could read them before.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomic counterpart of ``Path.write_text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def save_checkpoint(path: PathLike, payload: Dict[str, object]) -> Path:
    """Persist a checkpoint payload atomically.

    ``payload`` is whatever the caller needs to resume (for training runs:
    ``algorithm_state``, ``history`` and ``session`` — see
    :meth:`repro.simulation.runner.RunSession.checkpoint`); this function
    adds the ``format`` stamp and guarantees the write is all-or-nothing.
    """
    stamped = {"format": CHECKPOINT_FORMAT, **payload}
    return atomic_write_bytes(path, pickle.dumps(stamped, protocol=pickle.HIGHEST_PROTOCOL))


def load_checkpoint(path: PathLike) -> Dict[str, object]:
    """Read a checkpoint written by :func:`save_checkpoint` (format-checked)."""
    path = Path(path)
    with path.open("rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or "format" not in payload:
        raise ValueError(f"{path} is not a run checkpoint")
    if payload["format"] != CHECKPOINT_FORMAT:
        raise ValueError(
            f"{path} has checkpoint format {payload['format']!r}; "
            f"this code reads format {CHECKPOINT_FORMAT}"
        )
    return payload


def checkpoint_path(directory: PathLike, rounds_done: int) -> Path:
    """Canonical file name for the checkpoint taken after ``rounds_done`` rounds."""
    if rounds_done < 0:
        raise ValueError("rounds_done must be non-negative")
    return Path(directory) / f"round_{rounds_done:06d}.ckpt"


def list_checkpoints(directory: PathLike) -> List[Path]:
    """All checkpoint files in ``directory``, oldest (fewest rounds) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        (int(match.group(1)), entry)
        for entry in directory.iterdir()
        if (match := _CHECKPOINT_NAME.match(entry.name)) is not None
    ]
    return [entry for _, entry in sorted(found)]


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """The most advanced checkpoint in ``directory`` (``None`` when empty)."""
    checkpoints = list_checkpoints(directory)
    return checkpoints[-1] if checkpoints else None
