"""Discrete-event simulation layer: simulated time for decentralized runs.

The synchronous engines treat a round as an indivisible unit; this package
makes *time* a simulated, measurable quantity.  Three pieces:

* :mod:`repro.simulation.events.queue` — a deterministic event queue keyed
  by ``(time, priority, seq)`` with explicit tie-breaking, lazy
  cancellation and full checkpoint round-trips;
* :mod:`repro.simulation.events.traces` — per-agent :class:`DeviceTrace`
  objects (compute seconds per step, link bandwidth, latency) from uniform
  defaults, seeded log-normal synthesis, or JSON trace files;
* :mod:`repro.simulation.events.engine` — the :class:`AsyncEngine` wrapper
  that drives any of the six algorithms on simulated time, in barrier mode
  (synchronous numerics, simulated timing — bit-identical to the plain
  engines under uniform unit traces) or async mode (agents train on their
  own clocks and gossip on message arrival with staleness-weighted mixing).

Declared via ``ExperimentSpec.time_model`` and wrapped automatically by the
experiment harness; ``RunSession`` records simulated wall-clock and fleet
utilization into :class:`~repro.simulation.metrics.TrainingHistory`.
"""

from repro.simulation.events.engine import AsyncEngine, engine_from_time_model
from repro.simulation.events.queue import (
    PRIORITY_ARRIVAL,
    PRIORITY_BARRIER,
    PRIORITY_COMPUTE,
    Event,
    EventQueue,
)
from repro.simulation.events.traces import (
    TIME_MODEL_KEYS,
    DeviceTrace,
    load_traces,
    save_traces,
    synthetic_traces,
    traces_from_spec,
    transfer_seconds,
    uniform_traces,
    validate_time_model,
)

__all__ = [
    "AsyncEngine",
    "engine_from_time_model",
    "PRIORITY_ARRIVAL",
    "PRIORITY_BARRIER",
    "PRIORITY_COMPUTE",
    "Event",
    "EventQueue",
    "TIME_MODEL_KEYS",
    "DeviceTrace",
    "load_traces",
    "save_traces",
    "synthetic_traces",
    "traces_from_spec",
    "transfer_seconds",
    "uniform_traces",
    "validate_time_model",
]
