"""Event-driven execution of a decentralized algorithm under a time model.

:class:`AsyncEngine` wraps an already-constructed
:class:`~repro.core.base.DecentralizedAlgorithm` and makes *time* a
simulated quantity: every agent owns a :class:`~repro.simulation.events.traces.DeviceTrace`
(compute speed, link bandwidth, latency), and the engine schedules compute
completions and message arrivals on a deterministic
:class:`~repro.simulation.events.queue.EventQueue`.  The wrapper proxies
every attribute it does not own to the wrapped algorithm, so
:class:`~repro.simulation.runner.RunSession`, the experiment harness and
the orchestrator drive it exactly like a bare algorithm.

Two execution modes, selected by ``async_mode``:

**Barrier mode** (the default) keeps the synchronous numerics and simulates
*when* the round would finish on the trace fleet: compute-done events per
active agent, arrival events per directed edge (at the codec's wire size),
and the round's simulated duration is the latest arrival.  The numeric
round is then delegated, unchanged, to ``algorithm.run_round()`` — the
timing machinery consumes **no** algorithm randomness, which is why uniform
unit traces reproduce the synchronous engine **bit for bit** (the
equivalence harness in ``tests/simulation/test_async_equivalence.py`` pins
this for all six algorithms, on static and dynamic topologies).  Message
latencies are recorded into the :class:`~repro.simulation.network.Network`'s
latency counters per arrival.

**Async mode** (``async_mode=True``) replaces the global round with genuine
event-driven execution: each agent trains on its own clock (momentum-SGD
local steps drawn from its own sampler and DP-noise streams), broadcasts
its model when a step completes, and *mixes on message arrival* with
staleness-weighted gossip — ``x_j += W_ji * exp(-staleness_decay * s) *
(payload - x_j)`` where ``s`` is the payload's simulated age.  Stragglers
and slow links are emergent behaviour of the traces rather than per-round
masks; a "round" (for history/eval purposes) completes when every agent has
finished one more local step, so fast agents legitimately run ahead.  Each
completed local step is a separate clipped+noised release, so the privacy
accountant composes over the *fastest* agent's step count (the worst-case
per-agent loss), not one event per round.
Requires a static topology and the identity codec.

Both modes checkpoint: :meth:`AsyncEngine.state_dict` embeds the event
queue (in-flight payloads included), per-agent clocks and busy-time
accumulators alongside the algorithm's own state, so an interrupted run
resumes *mid-queue* bit-identically.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.simulation.events.queue import (
    PRIORITY_ARRIVAL,
    PRIORITY_COMPUTE,
    EventQueue,
)
from repro.simulation.events.traces import (
    DeviceTrace,
    traces_from_spec,
    transfer_seconds,
    uniform_traces,
    validate_time_model,
)

__all__ = ["AsyncEngine", "engine_from_time_model"]


class AsyncEngine:
    """Drive a wrapped algorithm on simulated time (barrier or async mode).

    Parameters
    ----------
    algorithm:
        A fully constructed :class:`~repro.core.base.DecentralizedAlgorithm`.
        The engine proxies unknown attributes to it, so it can stand in for
        the algorithm anywhere (``RunSession``, evaluation, checkpointing).
    traces:
        One :class:`DeviceTrace` per agent; defaults to uniform unit traces
        (one second per step, instantaneous wires) — the configuration under
        which barrier mode is bit-identical to the synchronous engine.
    async_mode:
        ``False`` (barrier): synchronous numerics, simulated timing.
        ``True``: event-driven local steps with gossip on arrival.
    staleness_decay:
        Async mode only — exponential down-weighting rate applied to a
        payload's mixing weight per simulated second of transit age.  0
        mixes arrivals at the full topology weight.
    """

    def __init__(
        self,
        algorithm: Any,
        traces: Optional[Sequence[DeviceTrace]] = None,
        async_mode: bool = False,
        staleness_decay: float = 0.0,
    ) -> None:
        self._algorithm = algorithm
        if traces is None:
            traces = uniform_traces(algorithm.num_agents)
        self.traces: List[DeviceTrace] = list(traces)
        if len(self.traces) != algorithm.num_agents:
            raise ValueError(
                f"got {len(self.traces)} device traces for "
                f"{algorithm.num_agents} agents"
            )
        self.async_mode = bool(async_mode)
        self.staleness_decay = float(staleness_decay)
        if self.staleness_decay < 0:
            raise ValueError("staleness_decay must be non-negative")
        if self.async_mode:
            if not algorithm.schedule.is_static:
                raise ValueError(
                    "async mode replaces per-round masks with trace-driven "
                    "timing and requires a static topology schedule — "
                    "stragglers and partitions are emergent from the traces"
                )
            if not algorithm.codec.is_identity:
                raise ValueError(
                    "async mode sends raw model payloads and requires the "
                    "identity codec"
                )
            if algorithm.compression_config.communication_interval != 1:
                raise ValueError(
                    "communication_interval is a synchronous-round concept; "
                    "async mode requires communication_interval=1"
                )
        self.queue = EventQueue()
        self._sim_time = 0.0
        self._steps_done = np.zeros(algorithm.num_agents, dtype=np.int64)
        self._busy_seconds = np.zeros(algorithm.num_agents, dtype=np.float64)
        # Async mode: privatized local steps already composed into the
        # privacy accountant (tracks the fastest agent's release count).
        self._accounted_steps = 0
        self._bootstrapped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Proxying: everything the engine does not own belongs to the algorithm
    # ------------------------------------------------------------------
    def __getattr__(self, item: str) -> Any:
        if item == "_algorithm":
            raise AttributeError(item)
        return getattr(self._algorithm, item)

    @property
    def algorithm(self) -> Any:
        """The wrapped algorithm (the engine owns timing, not numerics)."""
        return self._algorithm

    @property
    def backend(self) -> str:
        """``"event-async"`` in async mode, else the wrapped engine's backend."""
        if self.async_mode:
            return "event-async"
        return self._algorithm.backend

    # ------------------------------------------------------------------
    # Simulated-time observables
    # ------------------------------------------------------------------
    @property
    def simulated_time(self) -> float:
        """Total simulated seconds elapsed since the start of the run."""
        return self._sim_time

    def utilization(self) -> np.ndarray:
        """Per-agent fraction of simulated time spent computing (vs idle/waiting)."""
        if self._sim_time <= 0.0:
            return np.zeros(self._algorithm.num_agents, dtype=np.float64)
        return self._busy_seconds / self._sim_time

    def mean_utilization(self) -> float:
        """Fleet-average compute utilization over the simulated run so far."""
        return float(self.utilization().mean())

    @property
    def time_model_metadata(self) -> Dict[str, object]:
        """Describes the time model for ``TrainingHistory.metadata``."""
        uniform = all(trace == self.traces[0] for trace in self.traces)
        return {
            "async": self.async_mode,
            "staleness_decay": self.staleness_decay,
            "traces": "uniform" if uniform else "heterogeneous",
        }

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """One history round on simulated time (dispatches on the mode)."""
        if self.async_mode:
            self._run_round_async()
        else:
            self._run_round_barrier()

    def _round_topology(self, round_index: int):
        schedule = self._algorithm.schedule
        if schedule.is_static:
            return self._algorithm.topology
        return schedule.topology_at(round_index)

    def _run_round_barrier(self) -> None:
        """Simulate the round's timing, then delegate the numerics unchanged.

        The event pass touches no algorithm RNG stream and no fleet state —
        it only schedules compute/arrival events, advances the simulated
        clock to the latest arrival, and records per-message latency — so
        ``algorithm.run_round()`` sees exactly the world it would see
        without the wrapper.  That is the whole bit-identity argument.

        Messages are sized at the algorithm's full wire payload
        (``gossip_wire_cost(num_gossip_channels)``), so two-channel
        algorithms like PDSL pay for both streams in simulated time.

        Latency counters here are **pre-fault-injection**: the delegated
        numeric round applies drop faults and departed-agent rejection with
        its own RNG, which this timing pass must not consume (doing so
        would break bit-identity with the bare engine).  With
        ``drop_probability > 0`` the barrier-mode arrival/latency counters
        therefore describe scheduled transmissions, not confirmed
        deliveries; async mode, which routes real payloads through
        :meth:`Network.send`, counts actual deliveries only.
        """
        algorithm = self._algorithm
        round_index = algorithm.rounds_completed
        schedule = algorithm.schedule
        mask = None if schedule.is_static else schedule.active_mask_at(round_index)
        topology = self._round_topology(round_index)
        gossiping = algorithm.gossip_now(round_index)
        _, wire_bytes = algorithm.gossip_wire_cost(algorithm.num_gossip_channels)
        start = self._sim_time
        queue = self.queue
        for agent in range(algorithm.num_agents):
            if mask is not None and not mask[agent]:
                continue
            queue.push(
                start + self.traces[agent].compute_seconds,
                "compute",
                agent=agent,
                priority=PRIORITY_COMPUTE,
            )
        last = start
        while queue:
            event = queue.pop()
            self.events_processed += 1
            last = event.time
            if event.kind == "compute":
                sender = event.agent
                self._busy_seconds[sender] += self.traces[sender].compute_seconds
                self._steps_done[sender] += 1
                if not gossiping:
                    continue
                for neighbor in topology.neighbors(sender, include_self=False):
                    if mask is not None and not mask[neighbor]:
                        continue
                    arrival = event.time + transfer_seconds(
                        self.traces[sender], self.traces[neighbor], wire_bytes
                    )
                    queue.push(
                        arrival,
                        "arrival",
                        agent=neighbor,
                        priority=PRIORITY_ARRIVAL,
                        sender=sender,
                        sent_at=event.time,
                    )
            elif event.kind == "arrival":
                algorithm.network.record_latency(
                    "model", event.time - event.data["sent_at"]
                )
        self._sim_time = last
        algorithm.run_round()

    def _run_round_async(self) -> None:
        """Advance simulated time until every agent completes one more step.

        Fast agents keep training and broadcasting while slow ones catch up
        — the straggler effect is emergent, not masked.  Numerics happen at
        event granularity: a local momentum-SGD step per compute event
        (consuming that agent's own sampler/noise streams), a
        staleness-weighted mix per arrival event.
        """
        algorithm = self._algorithm
        algorithm.network.advance_round()
        target = algorithm.rounds_completed + 1
        queue = self.queue
        if not self._bootstrapped:
            for agent in range(algorithm.num_agents):
                queue.push(
                    self._sim_time + self.traces[agent].compute_seconds,
                    "compute",
                    agent=agent,
                    priority=PRIORITY_COMPUTE,
                )
            self._bootstrapped = True
        while int(self._steps_done.min()) < target:
            event = queue.pop()
            self.events_processed += 1
            self._sim_time = event.time
            if event.kind == "compute":
                self._complete_local_step(event.agent, event.time)
            elif event.kind == "arrival":
                self._deliver(event)
        if algorithm.config.epsilon is not None and algorithm.sigma > 0:
            # Every completed local step is a separate clipped+noised
            # release, and fast agents finish several per round — compose
            # over the fastest agent's release count, not one per round,
            # so the reported budget covers the worst-case agent.
            max_steps = int(self._steps_done.max())
            releases = max_steps - self._accounted_steps
            if releases > 0:
                algorithm.accountant.record(
                    algorithm.config.epsilon,
                    algorithm.config.delta,
                    count=releases,
                )
            self._accounted_steps = max_steps
        algorithm.rounds_completed = target

    def _complete_local_step(self, agent: int, now: float) -> None:
        """One finished local step: update, broadcast, reschedule."""
        algorithm = self._algorithm
        config = algorithm.config
        trace = self.traces[agent]
        batch = algorithm.samplers[agent].next_batch()
        gradient = algorithm.local_gradient(agent, algorithm.params[agent], batch)
        perturbed = algorithm.privatize(agent, gradient)
        update = config.momentum * algorithm.momenta[agent] + perturbed
        algorithm.momenta[agent] = update
        algorithm.params[agent] = (
            algorithm.params[agent] - config.learning_rate * update
        )
        self._steps_done[agent] += 1
        self._busy_seconds[agent] += trace.compute_seconds
        payload = np.array(algorithm.params[agent], dtype=np.float64)
        for neighbor in algorithm.topology.neighbors(agent, include_self=False):
            arrival = now + transfer_seconds(
                trace, self.traces[neighbor], payload.nbytes
            )
            self.queue.push(
                arrival,
                "arrival",
                agent=neighbor,
                priority=PRIORITY_ARRIVAL,
                sender=agent,
                sent_at=now,
                payload=payload,
            )
        self.queue.push(
            now + trace.compute_seconds,
            "compute",
            agent=agent,
            priority=PRIORITY_COMPUTE,
        )

    def _deliver(self, event) -> None:
        """One message arrival: account it, then mix with staleness weighting.

        Bytes and latency are tagged at *arrival* time through
        :meth:`Network.send` — which also applies drop fault-injection and
        departed-agent rejection, so lost messages are simply never mixed.
        """
        algorithm = self._algorithm
        sender = int(event.data["sender"])
        recipient = event.agent
        staleness = event.time - float(event.data["sent_at"])
        delivered = algorithm.network.send(
            sender, recipient, "model", event.data["payload"], latency=staleness
        )
        if not delivered:
            return
        # Drain immediately: async mixing is per-arrival, and empty
        # mailboxes at round boundaries keep the checkpoint contract.
        algorithm.network.receive(recipient, "model")
        weight = float(algorithm.topology.weight(recipient, sender))
        if self.staleness_decay > 0.0:
            weight *= math.exp(-self.staleness_decay * staleness)
        current = algorithm.params[recipient]
        algorithm.params[recipient] = current + weight * (
            np.asarray(event.data["payload"]) - current
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self, copy: bool = True) -> Dict[str, object]:
        """The wrapped algorithm's state plus the time model's own state.

        The extra ``"time_model"`` entry carries the event queue (pending
        arrivals with their payload arrays included), the simulated clock,
        per-agent step counts and busy-time accumulators — everything needed
        to resume *mid-queue* bit-identically.
        """
        payload = self._algorithm.state_dict(copy=copy)
        payload["time_model"] = {
            "async": self.async_mode,
            "staleness_decay": self.staleness_decay,
            "sim_time": self._sim_time,
            "steps_done": self._steps_done.tolist(),
            "busy_seconds": self._busy_seconds.tolist(),
            "accounted_steps": self._accounted_steps,
            "bootstrapped": self._bootstrapped,
            "events_processed": self.events_processed,
            "queue": self.queue.state_dict(),
        }
        return payload

    def load_state_dict(self, payload: Mapping[str, object]) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        payload = dict(payload)
        timing = payload.pop("time_model", None)
        if timing is None:
            raise ValueError(
                "checkpoint carries no time-model state — it was written by "
                "a bare algorithm, not an AsyncEngine-wrapped run"
            )
        if bool(timing["async"]) != self.async_mode:
            raise ValueError(
                f"checkpoint was written in "
                f"{'async' if timing['async'] else 'barrier'} mode but this "
                f"engine runs in {'async' if self.async_mode else 'barrier'} mode"
            )
        self._algorithm.load_state_dict(payload)
        self.staleness_decay = float(timing["staleness_decay"])
        self._sim_time = float(timing["sim_time"])
        self._steps_done = np.asarray(timing["steps_done"], dtype=np.int64)
        self._busy_seconds = np.asarray(timing["busy_seconds"], dtype=np.float64)
        self._accounted_steps = int(timing["accounted_steps"])
        self._bootstrapped = bool(timing["bootstrapped"])
        self.events_processed = int(timing["events_processed"])
        self.queue.load_state_dict(timing["queue"])


def engine_from_time_model(
    algorithm: Any, time_model: Mapping[str, object]
) -> AsyncEngine:
    """Build the engine an ``ExperimentSpec.time_model`` declaration asks for.

    Validates the declaration, resolves the trace fleet (uniform unit
    traces when unspecified) and wraps ``algorithm``.  This is the hook the
    experiment harness and orchestrator call, so a spec with ``time_model``
    runs on simulated time through every execution path.
    """
    validate_time_model(time_model, num_agents=algorithm.num_agents)
    traces = traces_from_spec(time_model.get("traces"), algorithm.num_agents)
    return AsyncEngine(
        algorithm,
        traces=traces,
        async_mode=bool(time_model.get("async", False)),
        staleness_decay=float(time_model.get("staleness_decay", 0.0)),
    )
