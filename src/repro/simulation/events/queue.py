"""Deterministic discrete-event queue for the simulated time model.

The queue is a binary heap keyed by ``(time, priority, seq)``:

* ``time`` — simulated seconds at which the event fires;
* ``priority`` — explicit tie-break between event *kinds* scheduled for the
  same instant (lower fires first; see :data:`PRIORITY_ARRIVAL` /
  :data:`PRIORITY_COMPUTE`).  Message arrivals outrank compute completions,
  so a payload that lands exactly when its recipient finishes a step is
  mixed before the recipient's next broadcast — either convention would be
  deterministic, but one must be *chosen* and pinned;
* ``seq`` — the monotone insertion counter, which makes the ordering a
  total order: events pushed with equal ``(time, priority)`` pop in FIFO
  (insertion) order, never in heap-internal or hash order.

Because the key is a pure function of the push sequence, replaying the same
pushes yields the same pops — the property tests in
``tests/properties/test_property_events.py`` pin this, along with clock
monotonicity (``pop`` times never decrease, and scheduling into the past is
an error) and loss-freedom under cancellation.

Cancellation is lazy: :meth:`EventQueue.cancel` marks the sequence number
and :meth:`EventQueue.pop` discards marked entries when they surface, so
cancelling is O(1) and cannot perturb the order of surviving events.

The whole queue — live entries, the insertion counter, the simulated clock —
round-trips through :meth:`EventQueue.state_dict`, which is how an
interrupted :class:`~repro.simulation.events.engine.AsyncEngine` run resumes
mid-queue bit-identically.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "PRIORITY_ARRIVAL",
    "PRIORITY_COMPUTE",
    "PRIORITY_BARRIER",
    "Event",
    "EventQueue",
]

#: Message arrivals fire first among events scheduled for the same instant.
PRIORITY_ARRIVAL = 0
#: Compute completions fire after any same-instant arrivals.
PRIORITY_COMPUTE = 1
#: Barrier/bookkeeping events fire last at their instant.
PRIORITY_BARRIER = 2


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence in simulated time.

    ``kind`` names what happens (``"compute"``, ``"arrival"``, ...);
    ``agent`` is the agent the event happens *to* (the recipient for an
    arrival); ``data`` carries kind-specific payload (sender id, send time,
    the transmitted array, ...).
    """

    time: float
    priority: int
    seq: int
    kind: str
    agent: int = -1
    data: Dict[str, Any] = field(default_factory=dict)


class EventQueue:
    """Deterministic priority queue over simulated time.

    Events are totally ordered by ``(time, priority, seq)``; ``seq`` is the
    push counter, so the order is reproducible across runs, platforms and
    checkpoint/resume boundaries.  The queue also owns the simulated clock:
    ``now`` is the timestamp of the last popped event, pops are
    non-decreasing in time, and pushing an event before ``now`` raises.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, str, int, Dict[str, Any]]] = []
        self._cancelled: set = set()
        # Sequence numbers currently live in the heap — the O(1) membership
        # test behind cancel().
        self._live: set = set()
        self._next_seq = 0
        self._now = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Simulated seconds at the last popped event (0 before any pop)."""
        return self._now

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def peek_time(self) -> Optional[float]:
        """Fire time of the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        kind: str,
        agent: int = -1,
        priority: int = PRIORITY_COMPUTE,
        **data: Any,
    ) -> int:
        """Schedule an event; returns its sequence number (for :meth:`cancel`).

        ``time`` must be finite and not before the simulated clock — an
        event cannot fire in the past.
        """
        time = float(time)
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before the simulated "
                f"clock (now={self._now})"
            )
        if not kind:
            raise ValueError("event kind must be a non-empty string")
        seq = self._next_seq
        self._next_seq += 1
        heapq.heappush(self._heap, (time, int(priority), seq, str(kind), int(agent), data))
        self._live.add(seq)
        return seq

    def cancel(self, seq: int) -> bool:
        """Cancel a pending event by sequence number (lazy; O(1)).

        Returns ``True`` when the event was live and is now cancelled,
        ``False`` when it already fired, was already cancelled, or never
        existed.  Cancellation never reorders surviving events.
        """
        seq = int(seq)
        if seq not in self._live:
            return False
        self._live.discard(seq)
        self._cancelled.add(seq)
        return True

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0][2] in self._cancelled:
            entry = heapq.heappop(self._heap)
            self._cancelled.discard(entry[2])

    def pop(self) -> Event:
        """Remove and return the next event, advancing the simulated clock.

        Raises ``IndexError`` when no live event remains.
        """
        self._discard_cancelled()
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, priority, seq, kind, agent, data = heapq.heappop(self._heap)
        self._live.discard(seq)
        self._now = time
        return Event(
            time=time, priority=priority, seq=seq, kind=kind, agent=agent, data=data
        )

    def clear(self) -> None:
        """Drop every pending event (the clock and counter are kept)."""
        self._heap = []
        self._cancelled = set()
        self._live = set()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Everything needed to resume the queue bit-identically.

        Live entries keep their original sequence numbers, so FIFO order
        among equal ``(time, priority)`` keys survives the round trip.
        Entry payloads travel as-is (arrays included) — checkpoints are
        pickled, not JSON.
        """
        self._discard_cancelled()
        return {
            "now": self._now,
            "next_seq": self._next_seq,
            "entries": [
                (time, priority, seq, kind, agent, dict(data))
                for time, priority, seq, kind, agent, data in sorted(self._heap)
                if seq not in self._cancelled
            ],
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self._now = float(payload["now"])
        self._next_seq = int(payload["next_seq"])
        self._cancelled = set()
        self._heap = [
            (float(time), int(priority), int(seq), str(kind), int(agent), dict(data))
            for time, priority, seq, kind, agent, data in payload["entries"]
        ]
        heapq.heapify(self._heap)
        self._live = {entry[2] for entry in self._heap}
