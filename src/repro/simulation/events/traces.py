"""Per-agent device traces: compute speed, link bandwidth, link latency.

A :class:`DeviceTrace` is the time model of one agent — how long a local
training step takes on its hardware and what its network link can carry.
The :class:`~repro.simulation.events.engine.AsyncEngine` turns a fleet of
traces into event timestamps: compute completions at ``now +
compute_seconds``, message arrivals at ``now + transfer_seconds`` where the
transfer is limited by the *slower* endpoint's link (the classic
store-and-forward model of fondefjobn/decentralized-learning-simulator).

Trace fleets come from three places:

* :func:`uniform_traces` — every agent identical.  With the defaults (one
  second per step, infinite bandwidth, zero latency) this is the *unit
  trace* fleet under which barrier-mode simulation must reproduce the
  synchronous engine bit for bit;
* :func:`synthetic_traces` — log-normal heterogeneity around configurable
  medians, seeded and deterministic (the "realistic fleet" generator);
* :func:`load_traces` / :func:`save_traces` — JSON trace files measured on
  real devices.

``ExperimentSpec.time_model`` declares all of this declaratively; the
:data:`TIME_MODEL_KEYS` vocabulary and :func:`validate_time_model` are the
spec-side contract, and :func:`traces_from_spec` resolves the declaration
into concrete traces.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "TIME_MODEL_KEYS",
    "DeviceTrace",
    "uniform_traces",
    "synthetic_traces",
    "save_traces",
    "load_traces",
    "traces_from_spec",
    "transfer_seconds",
    "validate_time_model",
]

#: The vocabulary of ``ExperimentSpec.time_model``: ``traces`` declares the
#: per-agent device traces (``"uniform"``, a generator mapping, or an
#: explicit per-agent list), ``async`` switches from barrier mode to genuine
#: event-driven gossip-on-arrival, and ``staleness_decay`` exponentially
#: down-weights stale payloads when mixing on arrival.
TIME_MODEL_KEYS = frozenset({"traces", "async", "staleness_decay"})


@dataclass(frozen=True)
class DeviceTrace:
    """The time model of one agent's device.

    Attributes
    ----------
    compute_seconds:
        Simulated seconds one local training step takes on this device.
    bandwidth_bytes_per_s:
        Link capacity; ``math.inf`` models an instantaneous wire.  A
        transfer between two agents is limited by the slower endpoint.
    latency_seconds:
        Fixed propagation delay added to every outgoing message.
    """

    compute_seconds: float = 1.0
    bandwidth_bytes_per_s: float = math.inf
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.compute_seconds) and self.compute_seconds > 0):
            raise ValueError(
                f"compute_seconds must be finite and positive, got "
                f"{self.compute_seconds!r}"
            )
        if not self.bandwidth_bytes_per_s > 0:
            raise ValueError(
                f"bandwidth_bytes_per_s must be positive, got "
                f"{self.bandwidth_bytes_per_s!r}"
            )
        if not (math.isfinite(self.latency_seconds) and self.latency_seconds >= 0):
            raise ValueError(
                f"latency_seconds must be finite and non-negative, got "
                f"{self.latency_seconds!r}"
            )

    def to_dict(self) -> Dict[str, float]:
        return {
            "compute_seconds": self.compute_seconds,
            "bandwidth_bytes_per_s": self.bandwidth_bytes_per_s,
            "latency_seconds": self.latency_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DeviceTrace":
        unknown = sorted(set(payload) - {f for f in cls.__dataclass_fields__})
        if unknown:
            raise ValueError(f"unknown DeviceTrace fields: {unknown}")
        return cls(**{key: float(value) for key, value in payload.items()})


def transfer_seconds(sender: DeviceTrace, receiver: DeviceTrace, nbytes: int) -> float:
    """Simulated seconds to move ``nbytes`` from ``sender`` to ``receiver``.

    ``latency + nbytes / min(bandwidths)``: the fixed propagation delay of
    the sender's link plus serialisation at the slower endpoint's rate.
    Infinite bandwidth contributes zero serialisation time.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    bandwidth = min(sender.bandwidth_bytes_per_s, receiver.bandwidth_bytes_per_s)
    serialisation = 0.0 if math.isinf(bandwidth) else float(nbytes) / bandwidth
    return sender.latency_seconds + serialisation


def uniform_traces(
    num_agents: int,
    compute_seconds: float = 1.0,
    bandwidth_bytes_per_s: float = math.inf,
    latency_seconds: float = 0.0,
) -> List[DeviceTrace]:
    """Every agent with the identical trace.

    The defaults are the *unit traces*: one simulated second per step,
    instantaneous wires.  Under barrier mode these make the event layer a
    pure relabelling of the synchronous round — the equivalence harness's
    baseline.
    """
    if num_agents <= 0:
        raise ValueError("num_agents must be positive")
    trace = DeviceTrace(
        compute_seconds=compute_seconds,
        bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        latency_seconds=latency_seconds,
    )
    return [trace] * num_agents


def synthetic_traces(
    num_agents: int,
    seed: int = 0,
    compute_median_seconds: float = 1.0,
    compute_spread: float = 0.4,
    bandwidth_median_bytes_per_s: float = 1e7,
    bandwidth_spread: float = 0.6,
    latency_median_seconds: float = 0.01,
    latency_spread: float = 0.3,
) -> List[DeviceTrace]:
    """A heterogeneous fleet drawn from log-normal distributions.

    Log-normal is the standard model for device/link heterogeneity: most
    devices cluster near the median with a heavy tail of stragglers and
    slow links.  ``*_spread`` is the sigma of the underlying normal (0
    collapses to the median).  Deterministic in ``seed``.
    """
    if num_agents <= 0:
        raise ValueError("num_agents must be positive")
    for name, value in (
        ("compute_spread", compute_spread),
        ("bandwidth_spread", bandwidth_spread),
        ("latency_spread", latency_spread),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative")
    rng = np.random.default_rng(int(seed))
    compute = compute_median_seconds * np.exp(
        rng.normal(0.0, compute_spread, size=num_agents)
    )
    bandwidth = bandwidth_median_bytes_per_s * np.exp(
        rng.normal(0.0, bandwidth_spread, size=num_agents)
    )
    latency = latency_median_seconds * np.exp(
        rng.normal(0.0, latency_spread, size=num_agents)
    )
    return [
        DeviceTrace(
            compute_seconds=float(compute[i]),
            bandwidth_bytes_per_s=float(bandwidth[i]),
            latency_seconds=float(latency[i]),
        )
        for i in range(num_agents)
    ]


def save_traces(traces: Sequence[DeviceTrace], path: Union[str, Path]) -> Path:
    """Write a trace fleet to a JSON file (inverse of :func:`load_traces`).

    Infinite bandwidth is stored as the string ``"inf"`` so the file stays
    strict JSON (parseable by non-Python tools).
    """
    path = Path(path)
    rows = []
    for trace in traces:
        row = trace.to_dict()
        if math.isinf(row["bandwidth_bytes_per_s"]):
            row["bandwidth_bytes_per_s"] = "inf"
        rows.append(row)
    path.write_text(json.dumps({"traces": rows}, indent=2) + "\n")
    return path


def load_traces(path: Union[str, Path]) -> List[DeviceTrace]:
    """Read a trace fleet written by :func:`save_traces` (or by hand)."""
    payload = json.loads(Path(path).read_text())
    rows = payload["traces"] if isinstance(payload, Mapping) else payload
    traces = []
    for row in rows:
        row = dict(row)
        if row.get("bandwidth_bytes_per_s") == "inf":
            row["bandwidth_bytes_per_s"] = math.inf
        traces.append(DeviceTrace.from_dict(row))
    if not traces:
        raise ValueError(f"trace file {path} contains no traces")
    return traces


def traces_from_spec(
    value: object, num_agents: int
) -> List[DeviceTrace]:
    """Resolve the ``time_model["traces"]`` declaration into concrete traces.

    Accepted forms:

    * ``None`` or ``"uniform"`` — unit traces (the bit-identical baseline);
    * a mapping ``{"kind": "uniform", ...}`` / ``{"kind": "synthetic",
      "seed": 3, ...}`` / ``{"kind": "file", "path": "fleet.json"}`` with
      the generator's keyword arguments;
    * an explicit per-agent list of trace dicts (or :class:`DeviceTrace`).
    """
    if value is None or value == "uniform":
        return uniform_traces(num_agents)
    if isinstance(value, Mapping):
        kwargs = dict(value)
        kind = kwargs.pop("kind", "uniform")
        if kind == "uniform":
            return uniform_traces(num_agents, **kwargs)
        if kind == "synthetic":
            return synthetic_traces(num_agents, **kwargs)
        if kind == "file":
            path = kwargs.pop("path", None)
            if path is None or kwargs:
                raise ValueError(
                    'traces {"kind": "file"} requires exactly one other key, "path"'
                )
            traces = load_traces(path)
            if len(traces) != num_agents:
                raise ValueError(
                    f"trace file {path} has {len(traces)} traces for "
                    f"{num_agents} agents"
                )
            return traces
        raise ValueError(
            f"unknown traces kind {kind!r}; expected 'uniform', 'synthetic' or 'file'"
        )
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        traces = [
            trace if isinstance(trace, DeviceTrace) else DeviceTrace.from_dict(trace)
            for trace in value
        ]
        if len(traces) != num_agents:
            raise ValueError(
                f"got {len(traces)} explicit traces for {num_agents} agents"
            )
        return traces
    raise ValueError(
        f"traces must be 'uniform', a generator mapping or a per-agent list, "
        f"got {value!r}"
    )


def validate_time_model(
    value: Optional[Mapping[str, object]], num_agents: Optional[int] = None
) -> None:
    """Validate an ``ExperimentSpec.time_model`` declaration (``None`` is fine).

    Checks the key vocabulary, the value types, and — when ``num_agents``
    is known and the declaration doesn't point at an external file — that
    the traces actually resolve.  Raises ``ValueError`` with the offending
    key named.
    """
    if value is None:
        return
    if not isinstance(value, Mapping):
        raise ValueError(f"time_model must be a mapping or None, got {value!r}")
    unknown = sorted(set(value) - TIME_MODEL_KEYS)
    if unknown:
        raise ValueError(
            f"unknown time_model keys: {unknown}; expected a subset of "
            f"{sorted(TIME_MODEL_KEYS)}"
        )
    if "async" in value and not isinstance(value["async"], bool):
        raise ValueError(
            f'time_model["async"] must be a bool, got {value["async"]!r}'
        )
    if "staleness_decay" in value:
        decay = value["staleness_decay"]
        if not isinstance(decay, (int, float)) or isinstance(decay, bool) or decay < 0:
            raise ValueError(
                f'time_model["staleness_decay"] must be a non-negative number, '
                f"got {decay!r}"
            )
    traces = value.get("traces")
    defer_resolution = (
        isinstance(traces, Mapping) and traces.get("kind") == "file"
    ) or num_agents is None
    if traces is not None and not defer_resolution:
        traces_from_spec(traces, num_agents)
