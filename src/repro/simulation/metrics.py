"""Metric containers for decentralized training runs.

The paper reports two quantities: the **average training loss** across the
agents at each round (Figs. 1–6) and the final **test accuracy** (Tables I
and II).  :class:`TrainingHistory` records both, plus the consensus distance
(how far apart the agents' models are), which is a useful diagnostic for the
gossip component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "RoundRecord",
    "TrainingHistory",
    "consensus_distance",
    "history_to_dict",
    "history_from_dict",
    "histories_equal",
]


def consensus_distance(parameter_vectors: Sequence[np.ndarray]) -> float:
    """Average squared distance of agent parameters from their mean.

    ``(1/M) * sum_i || x_i - x_bar ||^2`` — the quantity bounded by Lemma 6.
    Accepts either a sequence of per-agent vectors or an already stacked
    ``(num_agents, dimension)`` state matrix.
    """
    if len(parameter_vectors) == 0:
        return 0.0
    if isinstance(parameter_vectors, np.ndarray) and parameter_vectors.ndim == 2:
        stacked = np.asarray(parameter_vectors, dtype=np.float64)
    else:
        stacked = np.stack(
            [np.asarray(v, dtype=np.float64) for v in parameter_vectors], axis=0
        )
    mean = stacked.mean(axis=0, keepdims=True)
    return float(np.mean(np.sum((stacked - mean) ** 2, axis=1)))


@dataclass
class RoundRecord:
    """Metrics collected after one communication round.

    When evaluation is strided (``eval_every > 1``), ``wall_clock_seconds``
    and ``topology_events`` cover every round since the previous record, so
    nothing is lost between evaluation points.
    """

    round: int
    average_train_loss: float
    test_accuracy: Optional[float] = None
    consensus: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)
    wall_clock_seconds: Optional[float] = None
    active_agents: Optional[int] = None
    topology_events: List[Dict[str, object]] = field(default_factory=list)
    # Simulated seconds the time model attributes to the covered rounds, and
    # the fleet-mean compute utilization at the record point; ``None`` for
    # runs without a time model (the synchronous engines).
    sim_seconds: Optional[float] = None
    utilization: Optional[float] = None


@dataclass
class TrainingHistory:
    """The full trajectory of a decentralized training run."""

    algorithm: str
    records: List[RoundRecord] = field(default_factory=list)
    final_test_accuracy: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def rounds(self) -> List[int]:
        return [r.round for r in self.records]

    @property
    def losses(self) -> List[float]:
        return [r.average_train_loss for r in self.records]

    @property
    def accuracies(self) -> List[Optional[float]]:
        return [r.test_accuracy for r in self.records]

    @property
    def wall_clock_per_record(self) -> List[Optional[float]]:
        return [r.wall_clock_seconds for r in self.records]

    def total_wall_clock(self) -> float:
        """Total training seconds recorded across the run (evaluation excluded)."""
        return float(
            sum(r.wall_clock_seconds for r in self.records if r.wall_clock_seconds)
        )

    @property
    def sim_seconds_per_record(self) -> List[Optional[float]]:
        """Simulated seconds each record covers (``None`` without a time model)."""
        return [r.sim_seconds for r in self.records]

    def total_sim_seconds(self) -> float:
        """Total simulated wall-clock of the learning process.

        The first-class output of the event-driven time model: how long the
        run would have taken on the declared device fleet.  0 for runs
        without a time model.
        """
        return float(sum(r.sim_seconds for r in self.records if r.sim_seconds))

    @property
    def topology_events(self) -> List[Dict[str, object]]:
        """Every topology-change / churn / straggler event recorded in the run."""
        return [event for record in self.records for event in record.topology_events]

    def event_counts(self) -> Dict[str, int]:
        """``{event kind: count}`` over the whole run (empty for static runs)."""
        counts: Dict[str, int] = {}
        for event in self.topology_events:
            kind = str(event.get("kind", "unknown"))
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def final_loss(self) -> float:
        """Training loss at the last recorded round."""
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].average_train_loss

    def best_accuracy(self) -> Optional[float]:
        """Best test accuracy observed at any evaluation point."""
        observed = [a for a in self.accuracies if a is not None]
        if self.final_test_accuracy is not None:
            observed.append(self.final_test_accuracy)
        return max(observed) if observed else None

    def rounds_to_loss(self, threshold: float) -> Optional[int]:
        """First round at which the average training loss drops to ``threshold`` or below."""
        for record in self.records:
            if record.average_train_loss <= threshold:
                return record.round
        return None

    def loss_auc(self) -> float:
        """Area under the loss curve (lower is better); a scalar convergence summary."""
        if not self.records:
            return 0.0
        return float(np.trapezoid(self.losses, self.rounds))

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for serialisation in experiment reports."""
        return {
            "algorithm": self.algorithm,
            "metadata": dict(self.metadata),
            "final_test_accuracy": self.final_test_accuracy,
            "rounds": self.rounds,
            "losses": self.losses,
            "accuracies": self.accuracies,
            "consensus": [r.consensus for r in self.records],
            "wall_clock_seconds": self.wall_clock_per_record,
            "active_agents": [r.active_agents for r in self.records],
            "topology_events": self.topology_events,
            "sim_seconds": self.sim_seconds_per_record,
            "utilization": [r.utilization for r in self.records],
        }


def history_to_dict(history: TrainingHistory) -> Dict[str, object]:
    """JSON-serialisable representation of a training history (round-trippable).

    Unlike :meth:`TrainingHistory.to_dict` (a flattened view for reports),
    this form preserves every :class:`RoundRecord` field and is the inverse
    of :func:`history_from_dict`; it is what run checkpoints and the
    experiment store persist.
    """
    return {
        "algorithm": history.algorithm,
        "metadata": dict(history.metadata),
        "final_test_accuracy": history.final_test_accuracy,
        "records": [
            {
                "round": record.round,
                "average_train_loss": record.average_train_loss,
                "test_accuracy": record.test_accuracy,
                "consensus": record.consensus,
                "extra": dict(record.extra),
                "wall_clock_seconds": record.wall_clock_seconds,
                "active_agents": record.active_agents,
                "topology_events": [dict(e) for e in record.topology_events],
                "sim_seconds": record.sim_seconds,
                "utilization": record.utilization,
            }
            for record in history.records
        ],
    }


def history_from_dict(payload: Mapping[str, object]) -> TrainingHistory:
    """Inverse of :func:`history_to_dict`."""
    if "algorithm" not in payload or "records" not in payload:
        raise ValueError("payload is missing required keys 'algorithm' / 'records'")
    history = TrainingHistory(
        algorithm=str(payload["algorithm"]),
        metadata=dict(payload.get("metadata", {})),
        final_test_accuracy=payload.get("final_test_accuracy"),
    )
    for item in payload["records"]:
        history.append(
            RoundRecord(
                round=int(item["round"]),
                average_train_loss=float(item["average_train_loss"]),
                test_accuracy=item.get("test_accuracy"),
                consensus=item.get("consensus"),
                extra=dict(item.get("extra", {})),
                wall_clock_seconds=item.get("wall_clock_seconds"),
                active_agents=item.get("active_agents"),
                topology_events=[dict(e) for e in item.get("topology_events", [])],
                sim_seconds=item.get("sim_seconds"),
                utilization=item.get("utilization"),
            )
        )
    return history


def histories_equal(
    a: TrainingHistory, b: TrainingHistory, include_timing: bool = False
) -> bool:
    """Whether two histories record the same deterministic trajectory.

    Compares every reproducible field exactly — round numbers, losses,
    accuracies, consensus, active-agent counts, topology events, metadata
    and the final test accuracy.  ``wall_clock_seconds`` is excluded by
    default: it is the one field that legitimately differs between an
    uninterrupted run and a checkpoint-resumed one (or between two machines),
    while everything else must match bit for bit.
    """
    if a.algorithm != b.algorithm or len(a) != len(b):
        return False
    if a.final_test_accuracy != b.final_test_accuracy:
        return False
    if dict(a.metadata) != dict(b.metadata):
        return False
    for rec_a, rec_b in zip(a.records, b.records):
        if (
            rec_a.round != rec_b.round
            or rec_a.average_train_loss != rec_b.average_train_loss
            or rec_a.test_accuracy != rec_b.test_accuracy
            or rec_a.consensus != rec_b.consensus
            or rec_a.active_agents != rec_b.active_agents
            or dict(rec_a.extra) != dict(rec_b.extra)
            or rec_a.topology_events != rec_b.topology_events
            or rec_a.sim_seconds != rec_b.sim_seconds
            or rec_a.utilization != rec_b.utilization
        ):
            return False
        if include_timing and rec_a.wall_clock_seconds != rec_b.wall_clock_seconds:
            return False
    return True
