"""Message-passing network between simulated agents.

Agents in the decentralized algorithms never read each other's state
directly: every exchange — broadcasting the current model to the neighbours
(Algorithm 1, line 5), returning perturbed cross-gradients (line 11), sharing
momentum buffers and models for the gossip step (line 21) — goes through a
:class:`Network` mailbox.  This keeps the information flow identical to a
real deployment and lets tests assert on exactly what was transmitted.

Message payloads are kept as opaque objects (typically NumPy arrays); the
network records per-tag traffic statistics (message counts, float counts and
wire bytes) so experiments can report communication cost.  A payload wrapped
in :class:`~repro.compression.codecs.CompressedPayload` is accounted at its
*encoded* size — the value count and byte count the codec reports — instead
of the dense float64 size, so compressed-gossip runs show the bandwidth a
real deployment would pay.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.compression.codecs import CompressedPayload

__all__ = ["Message", "Network"]


@dataclass(frozen=True)
class Message:
    """A single directed message."""

    sender: int
    recipient: int
    tag: str
    payload: Any
    round: int


class Network:
    """Mailbox-based point-to-point communication between ``num_agents`` agents.

    Parameters
    ----------
    num_agents:
        Number of participating agents, identified by integers ``0..M-1``.
    drop_probability:
        Probability that any individual message is silently dropped
        (fault-injection hook used by robustness tests); 0 disables drops
        and 1 models a fully partitioned network where nothing is ever
        delivered.
    rng:
        Randomness source for drops; required when ``drop_probability > 0``.

    Agents can also *depart* (churn, see
    :class:`~repro.topology.schedule.TopologySchedule`): sends to or from a
    departed agent are rejected — not delivered, counted in
    ``messages_rejected`` — because there is no process at the other end to
    accept the payload.  :meth:`set_active_mask` updates the roster each
    round.
    """

    def __init__(
        self,
        num_agents: int,
        drop_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_agents <= 0:
            raise ValueError("num_agents must be positive")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must lie in [0, 1]")
        if drop_probability > 0.0 and rng is None:
            raise ValueError("an rng is required when drop_probability > 0")
        self.num_agents = int(num_agents)
        self.drop_probability = float(drop_probability)
        self.rng = rng
        self._round = 0
        # None means every agent is reachable; otherwise a boolean roster.
        self._active_mask: Optional[np.ndarray] = None
        # mailboxes[recipient][tag] -> list of messages
        self._mailboxes: Dict[int, Dict[str, List[Message]]] = {
            agent: defaultdict(list) for agent in range(num_agents)
        }
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_rejected = 0
        self.floats_sent = 0
        self.bytes_sent = 0
        self.traffic_by_tag: Dict[str, int] = defaultdict(int)
        self.bytes_by_tag: Dict[str, int] = defaultdict(int)
        # Simulated-time delivery statistics (event-driven engine): how many
        # messages actually arrived and how long they spent in transit.
        self.messages_arrived = 0
        self.latency_seconds_total = 0.0
        self.latency_by_tag: Dict[str, float] = defaultdict(float)

    # ------------------------------------------------------------------
    # Round bookkeeping
    # ------------------------------------------------------------------
    @property
    def current_round(self) -> int:
        return self._round

    def advance_round(self) -> None:
        """Mark the start of a new communication round (purely for labelling)."""
        self._round += 1

    # ------------------------------------------------------------------
    # Agent roster (churn)
    # ------------------------------------------------------------------
    def set_active_mask(self, mask: Optional[np.ndarray]) -> None:
        """Update which agents are reachable; ``None`` restores everyone.

        Departed agents' pending messages are discarded — their process is
        gone, so anything still queued for them can never be read.
        """
        if mask is None:
            self._active_mask = None
            return
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_agents,):
            raise ValueError(
                f"active mask must have shape ({self.num_agents},), got {mask.shape}"
            )
        self._active_mask = mask
        for agent in np.flatnonzero(~mask):
            self._mailboxes[int(agent)] = defaultdict(list)

    def is_active(self, agent: int) -> bool:
        """Whether the agent is currently reachable."""
        self._validate_agent(agent)
        return self._active_mask is None or bool(self._active_mask[agent])

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _validate_agent(self, agent: int) -> None:
        if not 0 <= agent < self.num_agents:
            raise ValueError(f"agent id {agent} out of range [0, {self.num_agents})")

    def send(
        self,
        sender: int,
        recipient: int,
        tag: str,
        payload: Any,
        latency: Optional[float] = None,
    ) -> bool:
        """Send ``payload`` from ``sender`` to ``recipient`` under ``tag``.

        Returns ``True`` if the message was delivered, ``False`` if it was
        dropped by fault injection or rejected because either endpoint has
        departed the fleet.

        ``latency`` is the simulated transit time the event-driven engine
        observed for this message; it is recorded only on actual delivery —
        a rejected send counts no bytes and no latency, a dropped send
        counts its bytes (the wire carried them) but never arrived.
        """
        self._validate_agent(sender)
        self._validate_agent(recipient)
        if not tag:
            raise ValueError("tag must be a non-empty string")
        if not (self.is_active(sender) and self.is_active(recipient)):
            self.messages_rejected += 1
            return False
        self.messages_sent += 1
        if isinstance(payload, CompressedPayload):
            payload_size = int(payload.num_values)
            payload_bytes = int(payload.wire_bytes)
        else:
            payload_size = int(np.asarray(payload).size) if isinstance(payload, (np.ndarray, list, tuple)) else 1
            payload_bytes = 8 * payload_size
        self.floats_sent += payload_size
        self.bytes_sent += payload_bytes
        self.traffic_by_tag[tag] += payload_size
        self.bytes_by_tag[tag] += payload_bytes
        if self.drop_probability > 0.0 and self.rng is not None:
            if self.rng.random() < self.drop_probability:
                self.messages_dropped += 1
                return False
        message = Message(sender=sender, recipient=recipient, tag=tag, payload=payload, round=self._round)
        self._mailboxes[recipient][tag].append(message)
        if latency is not None:
            self.record_latency(tag, latency)
        return True

    def record_latency(self, tag: str, seconds: float, messages: int = 1) -> None:
        """Account a delivered message's simulated transit time.

        The event-driven barrier mode moves real payloads through
        :meth:`record_bulk` (the vectorized exchange) but still knows each
        message's individual arrival time; this hook tags the latency
        without enqueueing anything.  Async mode records latency through
        ``send(..., latency=...)`` instead.

        Because this hook bypasses :meth:`send`, callers decide what
        "arrived" means: barrier mode records every *scheduled* edge (its
        numeric round applies drop faults separately, with RNG the timing
        pass must not touch), so with fault injection these counters are
        pre-drop; async mode counts confirmed deliveries only.
        """
        if not tag:
            raise ValueError("tag must be a non-empty string")
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds!r}")
        if messages < 0:
            raise ValueError("message count must be non-negative")
        self.messages_arrived += int(messages)
        self.latency_seconds_total += seconds
        self.latency_by_tag[tag] += seconds

    def record_bulk(
        self,
        tag: str,
        num_messages: int,
        floats_per_message: int,
        bytes_per_message: Optional[int] = None,
    ) -> None:
        """Account for an exchange performed outside the mailbox (vectorized engine).

        The vectorized backend replaces per-message gossip with whole-fleet
        matrix operations; this hook keeps the traffic statistics identical to
        what the equivalent point-to-point exchange would have recorded, so
        communication-cost reporting is backend independent.  No messages are
        enqueued and fault injection does not apply (the vectorized engine is
        only used on loss-free networks).  ``bytes_per_message`` defaults to
        the dense float64 size (``8 * floats_per_message``); compressed
        exchanges pass the codec's encoded size instead.
        """
        if not tag:
            raise ValueError("tag must be a non-empty string")
        if num_messages < 0 or floats_per_message < 0:
            raise ValueError("message and float counts must be non-negative")
        if bytes_per_message is None:
            bytes_per_message = 8 * int(floats_per_message)
        if bytes_per_message < 0:
            raise ValueError("bytes_per_message must be non-negative")
        self.messages_sent += int(num_messages)
        self.floats_sent += int(num_messages) * int(floats_per_message)
        self.bytes_sent += int(num_messages) * int(bytes_per_message)
        self.traffic_by_tag[tag] += int(num_messages) * int(floats_per_message)
        self.bytes_by_tag[tag] += int(num_messages) * int(bytes_per_message)

    def broadcast(self, sender: int, recipients: List[int], tag: str, payload: Any) -> int:
        """Send the same payload to every recipient; returns the number delivered."""
        delivered = 0
        for recipient in recipients:
            if recipient == sender:
                continue
            if self.send(sender, recipient, tag, payload):
                delivered += 1
        return delivered

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive(self, recipient: int, tag: str) -> List[Message]:
        """Drain and return all pending messages for ``recipient`` under ``tag``."""
        self._validate_agent(recipient)
        box = self._mailboxes[recipient]
        messages = box.pop(tag, [])
        return list(messages)

    def receive_by_sender(self, recipient: int, tag: str) -> Dict[int, Any]:
        """Drain pending messages and return ``{sender: payload}``.

        If a sender delivered several messages under the same tag only the
        most recent payload is kept, matching "the latest value wins"
        semantics of the synchronous algorithms here.
        """
        payloads: Dict[int, Any] = {}
        for message in self.receive(recipient, tag):
            payloads[message.sender] = message.payload
        return payloads

    def pending(self, recipient: int, tag: Optional[str] = None) -> int:
        """Number of undelivered messages waiting for an agent (optionally per tag)."""
        self._validate_agent(recipient)
        box = self._mailboxes[recipient]
        if tag is not None:
            return len(box.get(tag, []))
        return sum(len(v) for v in box.values())

    def clear(self) -> None:
        """Drop all pending messages (used between independent experiments)."""
        for agent in range(self.num_agents):
            self._mailboxes[agent] = defaultdict(list)

    def traffic_summary(self) -> Dict[str, Any]:
        """Totals for reporting communication cost."""
        return {
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "messages_rejected": self.messages_rejected,
            "floats_sent": self.floats_sent,
            "bytes_sent": self.bytes_sent,
            "traffic_by_tag": dict(self.traffic_by_tag),
            "bytes_by_tag": dict(self.bytes_by_tag),
            "messages_arrived": self.messages_arrived,
            "latency_seconds_total": self.latency_seconds_total,
            "latency_by_tag": dict(self.latency_by_tag),
        }

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Resumable network state: round counter, traffic totals, drop RNG.

        Checkpoints are taken at round boundaries, where the synchronous
        algorithms have drained every mailbox — so only the counters and the
        fault-injection RNG stream (when drops are enabled) need capturing,
        and a resumed run's traffic statistics continue exactly where the
        interrupted run's left off.
        """
        return {
            "round": self._round,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "messages_rejected": self.messages_rejected,
            "floats_sent": self.floats_sent,
            "bytes_sent": self.bytes_sent,
            "traffic_by_tag": dict(self.traffic_by_tag),
            "bytes_by_tag": dict(self.bytes_by_tag),
            "messages_arrived": self.messages_arrived,
            "latency_seconds_total": self.latency_seconds_total,
            "latency_by_tag": dict(self.latency_by_tag),
            "rng_state": None if self.rng is None else self.rng.bit_generator.state,
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore a state captured by :meth:`state_dict`.

        Pending mailboxes are cleared (they were empty at capture time) and
        the active-agent roster is left for the next round's schedule pull.
        """
        self._round = int(payload["round"])
        self.messages_sent = int(payload["messages_sent"])
        self.messages_dropped = int(payload["messages_dropped"])
        self.messages_rejected = int(payload["messages_rejected"])
        self.floats_sent = int(payload["floats_sent"])
        # Checkpoints written before byte accounting existed carried dense
        # float64 traffic only; reconstruct the equivalent byte totals.
        self.bytes_sent = int(payload.get("bytes_sent", 8 * self.floats_sent))
        self.traffic_by_tag = defaultdict(int)
        self.traffic_by_tag.update(payload["traffic_by_tag"])
        self.bytes_by_tag = defaultdict(int)
        self.bytes_by_tag.update(
            payload.get(
                "bytes_by_tag",
                {tag: 8 * count for tag, count in self.traffic_by_tag.items()},
            )
        )
        # Latency counters appeared with the event-driven engine; checkpoints
        # written before it carried none (synchronous runs observe zero).
        self.messages_arrived = int(payload.get("messages_arrived", 0))
        self.latency_seconds_total = float(payload.get("latency_seconds_total", 0.0))
        self.latency_by_tag = defaultdict(float)
        self.latency_by_tag.update(payload.get("latency_by_tag", {}))
        if payload["rng_state"] is not None:
            if self.rng is None:
                raise ValueError(
                    "checkpoint carries a drop RNG stream but this network has "
                    "no rng (was it rebuilt with drop_probability=0?)"
                )
            self.rng.bit_generator.state = payload["rng_state"]
        self.clear()
