"""The round loop: step an algorithm, evaluate, record, checkpoint.

Keeps evaluation policy (how often to compute test accuracy, how many
training samples to use for the loss estimate) separate from the algorithms
themselves.

The loop is packaged as a :class:`RunSession` — an explicit
start/step/checkpoint/finish lifecycle instead of one opaque function call —
so callers can:

* drive rounds one at a time (``session.step()``) or in bulk
  (``session.run()``, optionally capped with ``max_rounds`` to hand control
  back mid-run);
* subscribe to round events through a :class:`CallbackBus` (progress
  printers, loggers, the experiment orchestrator's status updates);
* snapshot the run every ``checkpoint_every`` rounds and later *resume it
  bit-identically* via :meth:`RunSession.resume` — the checkpoint carries
  the algorithm's full :meth:`~repro.core.base.DecentralizedAlgorithm.state_dict`
  (fleet matrices and every per-agent RNG stream) plus the partial
  :class:`~repro.simulation.metrics.TrainingHistory`, so a killed run picks
  up where it stopped and produces the same trajectory an uninterrupted run
  would (only per-round wall-clock timings differ).

:func:`run_decentralized` remains the one-call convenience wrapper and is a
thin shim over a session.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

import numpy as np

from repro.data.dataset import Dataset
from repro.simulation.checkpoint import (
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.simulation.metrics import (
    RoundRecord,
    TrainingHistory,
    history_from_dict,
    history_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.base import DecentralizedAlgorithm

__all__ = ["EvaluationConfig", "CallbackBus", "RunSession", "run_decentralized"]


@dataclass
class EvaluationConfig:
    """How and how often to evaluate during a run.

    Attributes
    ----------
    eval_every:
        Record metrics every ``eval_every`` rounds (round 1 and the final
        round are always recorded).
    test_data:
        Held-out test dataset; when ``None`` no accuracy is computed.
    accuracy_mode:
        ``"mean_agent"`` or ``"average_model"`` (see
        :meth:`DecentralizedAlgorithm.test_accuracy`).
    loss_samples_per_agent:
        Cap on the number of local examples used for the training-loss
        estimate (keeps evaluation cheap for large shards).
    track_consensus:
        Whether to record the consensus distance each evaluation.
    """

    eval_every: int = 1
    test_data: Optional[Dataset] = None
    accuracy_mode: str = "mean_agent"
    loss_samples_per_agent: int = 256
    track_consensus: bool = True

    def __post_init__(self) -> None:
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.loss_samples_per_agent <= 0:
            raise ValueError("loss_samples_per_agent must be positive")
        if self.accuracy_mode not in ("mean_agent", "average_model"):
            raise ValueError("accuracy_mode must be 'mean_agent' or 'average_model'")


class CallbackBus:
    """Pluggable fan-out for run lifecycle events.

    Subscribers are callables ``fn(event: str, payload: dict)`` invoked
    synchronously, in subscription order, for every emitted event:

    * ``"start"``    — ``{"history", "rounds_done", "num_rounds"}``, once per
      session (including resumed ones, with ``rounds_done > 0``);
    * ``"round"``    — ``{"round", "seconds"}`` after every training round;
    * ``"record"``   — ``{"round", "record"}`` after each evaluation point;
    * ``"checkpoint"`` — ``{"round", "path"}`` after each snapshot;
    * ``"finish"``   — ``{"history"}`` when the session completes.

    The bus is deliberately minimal — no filtering, no priorities — because
    its one job is to let the orchestrator, progress printers and tests
    observe a run without the session knowing about any of them.
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[[str, Dict[str, object]], None]] = []

    def subscribe(
        self, callback: Callable[[str, Dict[str, object]], None]
    ) -> Callable[[str, Dict[str, object]], None]:
        """Register a subscriber; returns it, so the method works as a decorator."""
        if not callable(callback):
            raise TypeError("bus subscribers must be callable")
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[str, Dict[str, object]], None]) -> None:
        """Remove a previously subscribed callback (``ValueError`` if absent)."""
        self._subscribers.remove(callback)

    def emit(self, event: str, **payload: object) -> None:
        """Deliver ``(event, payload)`` to every subscriber, in subscription order."""
        for callback in list(self._subscribers):
            callback(event, payload)


class RunSession:
    """A resumable, observable training run of one algorithm.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.core.base.DecentralizedAlgorithm`, already
        constructed with its model, topology, shards and config.
    num_rounds:
        Total number of communication rounds ``T`` for the *whole run*
        (including rounds already executed when resuming).
    evaluation:
        Evaluation policy; defaults to evaluating the loss every round with
        no test accuracy.  Not checkpointed — a resuming caller passes the
        same policy it started with (the experiment layer derives it
        deterministically from the spec).
    checkpoint_every:
        Snapshot the run after every ``checkpoint_every`` rounds (0 disables
        automatic snapshots; :meth:`checkpoint` remains available).
    checkpoint_dir:
        Where automatic snapshots go (``round_<NNNNNN>.ckpt``); required when
        ``checkpoint_every > 0``.
    bus:
        A shared :class:`CallbackBus`; a private one is created by default.
    out_of_core:
        Write checkpoints with the fleet matrices externalized as
        memory-mapped ``.npy`` sidecars (see
        :func:`~repro.simulation.checkpoint.save_checkpoint`), so snapshots
        of large fleets never hold a second in-RAM copy of the state.
        Resume is transparent either way.
    """

    def __init__(
        self,
        algorithm: "DecentralizedAlgorithm",
        num_rounds: int,
        evaluation: Optional[EvaluationConfig] = None,
        checkpoint_every: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        bus: Optional[CallbackBus] = None,
        out_of_core: bool = False,
    ) -> None:
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if checkpoint_every > 0 and checkpoint_dir is None:
            raise ValueError("checkpoint_every > 0 requires a checkpoint_dir")
        self.algorithm = algorithm
        self.num_rounds = int(num_rounds)
        self.evaluation = evaluation or EvaluationConfig()
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.bus = bus if bus is not None else CallbackBus()
        self.out_of_core = bool(out_of_core)
        self._rounds_done = 0
        # Records are numbered 1..num_rounds relative to the run's start;
        # schedules and the engine number rounds absolutely, so remember the
        # offset (normally 0 — an algorithm that trained before this run).
        self._base_offset = int(getattr(algorithm, "rounds_completed", 0))
        self._pending_seconds = 0.0
        self._pending_events: List[Dict[str, object]] = []
        # Simulated-time bookkeeping (only for AsyncEngine-wrapped runs):
        # accumulate the simulated clock's advance between records, exactly
        # as _pending_seconds accumulates real time.
        self._pending_sim_seconds = 0.0
        self._sim_mark = self._current_sim_time()
        self._history: Optional[TrainingHistory] = None
        self._finished = False
        self._started = False
        # Events buffered by rounds driven outside any session belong to no
        # record of this run — discard them rather than mis-attribute them.
        if hasattr(algorithm, "consume_events"):
            algorithm.consume_events()

    def _current_sim_time(self) -> Optional[float]:
        """The algorithm's simulated clock, or ``None`` without a time model."""
        value = getattr(self.algorithm, "simulated_time", None)
        return None if value is None else float(value)

    def _mean_utilization(self) -> Optional[float]:
        """Fleet-mean compute utilization, or ``None`` without a time model."""
        fn = getattr(self.algorithm, "mean_utilization", None)
        return None if fn is None else float(fn())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rounds_done(self) -> int:
        """Rounds executed so far in this run (across interruptions)."""
        return self._rounds_done

    @property
    def remaining_rounds(self) -> int:
        """Rounds still to execute before the run is complete."""
        return self.num_rounds - self._rounds_done

    @property
    def done(self) -> bool:
        """Whether every training round has executed (finish may still be pending)."""
        return self._rounds_done >= self.num_rounds

    @property
    def history(self) -> TrainingHistory:
        """The (possibly partial) training history, creating it on first access."""
        if self._history is None:
            self._history = self._build_history()
        return self._history

    def _build_history(self) -> TrainingHistory:
        algorithm = self.algorithm
        metadata = {
            "num_agents": algorithm.num_agents,
            "topology": algorithm.topology.name,
            "sigma": algorithm.sigma,
            "epsilon": algorithm.config.epsilon,
            "learning_rate": algorithm.config.learning_rate,
            "momentum": algorithm.config.momentum,
            "rounds": self.num_rounds,
            # The effective engine (after e.g. the lossy-network fallback),
            # not merely the configured one.
            "backend": getattr(algorithm, "backend", "loop"),
        }
        schedule = getattr(algorithm, "schedule", None)
        if schedule is not None and not schedule.is_static:
            metadata["dynamics"] = schedule.describe()
            # The experiment's identity is the base graph, not whichever
            # per-round snapshot happens to be swapped in right now.
            metadata["topology"] = schedule.base.name
        time_model = getattr(algorithm, "time_model_metadata", None)
        if time_model is not None:
            metadata["time_model"] = dict(time_model)
        return TrainingHistory(algorithm=algorithm.name, metadata=metadata)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> TrainingHistory:
        """Materialise the history and announce the session (idempotent)."""
        history = self.history
        if not self._started:
            self._started = True
            self.bus.emit(
                "start",
                history=history,
                rounds_done=self._rounds_done,
                num_rounds=self.num_rounds,
            )
        return history

    def step(self) -> Optional[RoundRecord]:
        """Execute one training round; evaluate and record if the policy says so.

        Returns the :class:`RoundRecord` when this round was an evaluation
        point, else ``None``.  Training seconds and schedule events
        accumulate across non-evaluated rounds and are attached to the next
        record, so strided evaluation (``eval_every > 1``) loses neither
        timing nor event information.
        """
        if self.done:
            raise RuntimeError(
                f"all {self.num_rounds} rounds have already been executed"
            )
        self.start()
        algorithm = self.algorithm
        evaluation = self.evaluation
        started = time.perf_counter()
        algorithm.run_round()
        seconds = time.perf_counter() - started
        self._pending_seconds += seconds
        sim_now = self._current_sim_time()
        if sim_now is not None:
            self._pending_sim_seconds += sim_now - (self._sim_mark or 0.0)
            self._sim_mark = sim_now
        if hasattr(algorithm, "consume_events"):
            # Schedules number rounds 0-based (the engine's round index);
            # records number them 1-based within this run — renumber at this
            # boundary so an event and the record of the round it occurred
            # in agree.
            self._pending_events.extend(
                {**event.as_dict(), "round": event.round + 1 - self._base_offset}
                for event in algorithm.consume_events()
            )
        self._rounds_done += 1
        round_index = self._rounds_done
        self.bus.emit("round", round=round_index, seconds=seconds)

        record: Optional[RoundRecord] = None
        should_eval = (
            round_index == 1
            or round_index == self.num_rounds
            or round_index % evaluation.eval_every == 0
        )
        if should_eval:
            active_mask = getattr(algorithm, "active_mask", None)
            record = RoundRecord(
                round=round_index,
                average_train_loss=algorithm.average_train_loss(
                    max_samples_per_agent=evaluation.loss_samples_per_agent
                ),
                test_accuracy=(
                    algorithm.test_accuracy(
                        evaluation.test_data, mode=evaluation.accuracy_mode
                    )
                    if evaluation.test_data is not None
                    else None
                ),
                consensus=algorithm.consensus() if evaluation.track_consensus else None,
                wall_clock_seconds=self._pending_seconds,
                active_agents=(
                    int(np.sum(active_mask)) if active_mask is not None else None
                ),
                topology_events=self._pending_events,
                sim_seconds=(
                    self._pending_sim_seconds if sim_now is not None else None
                ),
                utilization=self._mean_utilization(),
            )
            self._pending_seconds = 0.0
            self._pending_events = []
            self._pending_sim_seconds = 0.0
            self.history.append(record)
            self.bus.emit("record", round=round_index, record=record)

        if (
            self.checkpoint_every > 0
            and round_index % self.checkpoint_every == 0
            and not self.done
        ):
            self.checkpoint()
        return record

    def run(self, max_rounds: Optional[int] = None) -> TrainingHistory:
        """Execute rounds until the run completes (or ``max_rounds`` elapse).

        With ``max_rounds`` set, at most that many rounds execute in this
        call and the (partial) history is returned — the caller checkpoints
        and resumes later, or calls ``run()`` again.  When the final round
        executes, :meth:`finish` runs automatically.
        """
        if max_rounds is not None and max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        self.start()
        steps = self.remaining_rounds
        if max_rounds is not None:
            steps = min(steps, max_rounds)
        for _ in range(steps):
            self.step()
        if self.done:
            return self.finish()
        return self.history

    def finish(self) -> TrainingHistory:
        """Final evaluation and the ``finish`` event (idempotent).

        Only legal once every round has executed; returns the completed
        history.
        """
        if not self.done:
            raise RuntimeError(
                f"cannot finish: {self.remaining_rounds} of {self.num_rounds} "
                "rounds still pending"
            )
        if not self._finished:
            if self.evaluation.test_data is not None:
                self.history.final_test_accuracy = self.algorithm.test_accuracy(
                    self.evaluation.test_data, mode=self.evaluation.accuracy_mode
                )
            self._finished = True
            self.bus.emit("finish", history=self.history)
        return self.history

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Snapshot the run so :meth:`resume` can continue it bit-identically.

        Writes (atomically) the algorithm's full ``state_dict``, the partial
        history, and the session bookkeeping (rounds done, the timing and
        events accumulated since the last record).  ``path`` defaults to
        ``checkpoint_dir/round_<rounds_done>.ckpt``.
        """
        if path is None:
            if self.checkpoint_dir is None:
                raise ValueError("no path given and the session has no checkpoint_dir")
            path = checkpoint_path(self.checkpoint_dir, self._rounds_done)
        path = Path(path)
        # Out-of-core saves stream the fleet matrices straight from the live
        # state into memmap sidecars — state_dict(copy=False) hands over
        # views, so the snapshot never doubles the fleet's RAM footprint.
        save_checkpoint(
            path,
            {
                "algorithm_state": self.algorithm.state_dict(
                    copy=not self.out_of_core
                ),
                "history": history_to_dict(self.history),
                "session": {
                    "num_rounds": self.num_rounds,
                    "rounds_done": self._rounds_done,
                    "base_offset": self._base_offset,
                    "pending_seconds": self._pending_seconds,
                    "pending_events": [dict(e) for e in self._pending_events],
                    "pending_sim_seconds": self._pending_sim_seconds,
                },
            },
            out_of_core=self.out_of_core,
        )
        self.bus.emit("checkpoint", round=self._rounds_done, path=path)
        return path

    @classmethod
    def resume(
        cls,
        algorithm: "DecentralizedAlgorithm",
        source: Union[str, Path, Dict[str, object]],
        evaluation: Optional[EvaluationConfig] = None,
        checkpoint_every: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        bus: Optional[CallbackBus] = None,
        out_of_core: bool = False,
    ) -> "RunSession":
        """Rebuild a session from a checkpoint and continue the run.

        ``algorithm`` must be constructed identically to the one that wrote
        the checkpoint (same model, topology/schedule, shards, config); its
        state is *replaced* by the checkpointed one.  ``source`` is a
        checkpoint file path or an already-loaded payload.  The resumed
        trajectory is bit-identical to the uninterrupted run's — only
        per-round wall-clock timings differ.
        """
        payload = (
            source if isinstance(source, dict) else load_checkpoint(source)
        )
        for key in ("algorithm_state", "history", "session"):
            if key not in payload:
                raise ValueError(f"checkpoint payload is missing {key!r}")
        algorithm.load_state_dict(payload["algorithm_state"])
        saved = payload["session"]
        session = cls(
            algorithm,
            num_rounds=int(saved["num_rounds"]),
            evaluation=evaluation,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            bus=bus,
            out_of_core=out_of_core,
        )
        session._history = history_from_dict(payload["history"])
        session._rounds_done = int(saved["rounds_done"])
        session._base_offset = int(saved["base_offset"])
        session._pending_seconds = float(saved["pending_seconds"])
        session._pending_events = [dict(e) for e in saved["pending_events"]]
        # (The constructor already re-read the restored simulated clock into
        # _sim_mark — algorithm state loads before the session is built.)
        session._pending_sim_seconds = float(saved.get("pending_sim_seconds", 0.0))
        expected = session._base_offset + session._rounds_done
        actual = int(getattr(algorithm, "rounds_completed", expected))
        if actual != expected:
            raise ValueError(
                f"restored algorithm reports {actual} completed rounds but the "
                f"checkpoint expects {expected} — was it built from a different "
                "spec?"
            )
        return session


def run_decentralized(
    algorithm: "DecentralizedAlgorithm",
    num_rounds: int,
    evaluation: Optional[EvaluationConfig] = None,
    progress_callback: Optional[Callable[[int, RoundRecord], None]] = None,
) -> TrainingHistory:
    """Run ``num_rounds`` communication rounds and return the training history.

    The one-call wrapper over :class:`RunSession` (no checkpointing): builds
    a session, wires ``progress_callback`` to the bus's ``record`` events,
    and runs to completion.

    Parameters
    ----------
    algorithm:
        Any :class:`DecentralizedAlgorithm` (PDSL or a baseline), already
        constructed with its model, topology, shards and config.
    num_rounds:
        Number of communication rounds ``T``.
    evaluation:
        Evaluation policy; defaults to evaluating the loss every round with
        no test accuracy.
    progress_callback:
        Optional hook called with ``(round_index, record)`` after every
        evaluation — used by the example scripts to print progress.
    """
    session = RunSession(algorithm, num_rounds, evaluation=evaluation)
    if progress_callback is not None:

        def forward(event: str, payload: Dict[str, object]) -> None:
            if event == "record":
                progress_callback(payload["round"], payload["record"])

        session.bus.subscribe(forward)
    return session.run()
