"""The round loop: step an algorithm, evaluate, record.

Keeps evaluation policy (how often to compute test accuracy, how many
training samples to use for the loss estimate) separate from the algorithms
themselves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.simulation.metrics import RoundRecord, TrainingHistory

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.base import DecentralizedAlgorithm

__all__ = ["EvaluationConfig", "run_decentralized"]


@dataclass
class EvaluationConfig:
    """How and how often to evaluate during a run.

    Attributes
    ----------
    eval_every:
        Record metrics every ``eval_every`` rounds (round 1 and the final
        round are always recorded).
    test_data:
        Held-out test dataset; when ``None`` no accuracy is computed.
    accuracy_mode:
        ``"mean_agent"`` or ``"average_model"`` (see
        :meth:`DecentralizedAlgorithm.test_accuracy`).
    loss_samples_per_agent:
        Cap on the number of local examples used for the training-loss
        estimate (keeps evaluation cheap for large shards).
    track_consensus:
        Whether to record the consensus distance each evaluation.
    """

    eval_every: int = 1
    test_data: Optional[Dataset] = None
    accuracy_mode: str = "mean_agent"
    loss_samples_per_agent: int = 256
    track_consensus: bool = True

    def __post_init__(self) -> None:
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.loss_samples_per_agent <= 0:
            raise ValueError("loss_samples_per_agent must be positive")
        if self.accuracy_mode not in ("mean_agent", "average_model"):
            raise ValueError("accuracy_mode must be 'mean_agent' or 'average_model'")


def run_decentralized(
    algorithm: "DecentralizedAlgorithm",
    num_rounds: int,
    evaluation: Optional[EvaluationConfig] = None,
    progress_callback: Optional[Callable[[int, RoundRecord], None]] = None,
) -> TrainingHistory:
    """Run ``num_rounds`` communication rounds and return the training history.

    Parameters
    ----------
    algorithm:
        Any :class:`DecentralizedAlgorithm` (PDSL or a baseline), already
        constructed with its model, topology, shards and config.
    num_rounds:
        Number of communication rounds ``T``.
    evaluation:
        Evaluation policy; defaults to evaluating the loss every round with
        no test accuracy.
    progress_callback:
        Optional hook called with ``(round_index, record)`` after every
        evaluation — used by the example scripts to print progress.
    """
    if num_rounds <= 0:
        raise ValueError("num_rounds must be positive")
    evaluation = evaluation or EvaluationConfig()

    metadata = {
        "num_agents": algorithm.num_agents,
        "topology": algorithm.topology.name,
        "sigma": algorithm.sigma,
        "epsilon": algorithm.config.epsilon,
        "learning_rate": algorithm.config.learning_rate,
        "momentum": algorithm.config.momentum,
        "rounds": num_rounds,
        # The effective engine (after e.g. the lossy-network fallback),
        # not merely the configured one.
        "backend": getattr(algorithm, "backend", "loop"),
    }
    schedule = getattr(algorithm, "schedule", None)
    if schedule is not None and not schedule.is_static:
        metadata["dynamics"] = schedule.describe()
        # The experiment's identity is the base graph, not whichever
        # per-round snapshot happens to be swapped in right now.
        metadata["topology"] = schedule.base.name
    history = TrainingHistory(algorithm=algorithm.name, metadata=metadata)

    # Training seconds and schedule events accumulate across non-evaluated
    # rounds and are attached to the next record, so strided evaluation
    # (eval_every > 1) loses neither timing nor event information.
    pending_seconds = 0.0
    pending_events: List[Dict[str, object]] = []
    # Schedules number rounds by the algorithm's absolute round index; this
    # run's records start at 1 even when the algorithm has trained before.
    # Events buffered by rounds driven outside any runner belong to no
    # record of this run — discard them rather than mis-attribute them.
    round_offset = int(getattr(algorithm, "rounds_completed", 0))
    if hasattr(algorithm, "consume_events"):
        algorithm.consume_events()
    for round_index in range(1, num_rounds + 1):
        started = time.perf_counter()
        algorithm.run_round()
        pending_seconds += time.perf_counter() - started
        if hasattr(algorithm, "consume_events"):
            # Schedules number rounds 0-based (the engine's round index);
            # records number them 1-based within this run — renumber at this
            # boundary so an event and the record of the round it occurred
            # in agree.
            pending_events.extend(
                {**event.as_dict(), "round": event.round + 1 - round_offset}
                for event in algorithm.consume_events()
            )
        should_eval = (
            round_index == 1
            or round_index == num_rounds
            or round_index % evaluation.eval_every == 0
        )
        if not should_eval:
            continue
        active_mask = getattr(algorithm, "active_mask", None)
        record = RoundRecord(
            round=round_index,
            average_train_loss=algorithm.average_train_loss(
                max_samples_per_agent=evaluation.loss_samples_per_agent
            ),
            test_accuracy=(
                algorithm.test_accuracy(evaluation.test_data, mode=evaluation.accuracy_mode)
                if evaluation.test_data is not None
                else None
            ),
            consensus=algorithm.consensus() if evaluation.track_consensus else None,
            wall_clock_seconds=pending_seconds,
            active_agents=(
                int(np.sum(active_mask)) if active_mask is not None else None
            ),
            topology_events=pending_events,
        )
        pending_seconds = 0.0
        pending_events = []
        history.append(record)
        if progress_callback is not None:
            progress_callback(round_index, record)

    if evaluation.test_data is not None:
        history.final_test_accuracy = algorithm.test_accuracy(
            evaluation.test_data, mode=evaluation.accuracy_mode
        )
    return history
