"""Communication-topology substrate.

Decentralized learning algorithms in this library communicate over an
undirected graph ``G = (M, W)`` whose weighted adjacency matrix ``W`` is
symmetric and doubly stochastic (Sec. III-A).  This package provides:

* graph constructors for the topologies used in the paper's evaluation
  (fully connected, ring, bipartite) plus scalable large-fleet topologies
  (star, 2-D torus/grid, Erdős–Rényi, random-regular, Watts–Strogatz
  small-world, hypercube, exponential);
* mixing-matrix builders (Metropolis–Hastings weights, uniform-neighbour
  averaging) in dense or edge-wise CSR form, and the
  :class:`~repro.topology.mixing.MixingOperator` abstraction the gossip
  engine applies ``W`` through (dense O(M^2 d) or sparse O(nnz d), selected
  by edge density, bit-identical results either way);
* time-varying topologies: a :class:`~repro.topology.schedule.TopologySchedule`
  provides a (cached) graph snapshot per round — static wrapper for
  backward compatibility, plus periodic rewiring, edge failure/recovery,
  agent churn and straggler masks (:mod:`repro.topology.schedule`);
* spectral diagnostics: the second-largest eigenvalue magnitude
  ``sqrt(rho)`` from Assumption 3 and the spectral gap, which drive the
  convergence bound of Theorem 2 — computed densely for small fleets and
  with a Lanczos iteration (``scipy.sparse.linalg.eigsh``) above
  ``DENSE_EIG_MAX_AGENTS``.
"""

from repro.topology.graphs import (
    Topology,
    bipartite_graph,
    erdos_renyi_graph,
    exponential_graph,
    fully_connected_graph,
    grid_graph,
    hypercube_graph,
    random_regular_graph,
    ring_graph,
    small_world_graph,
    star_graph,
    torus_graph,
)
from repro.topology.hierarchical import (
    HierarchicalTopology,
    TwoLevelMixingOperator,
    default_cluster_size,
    hierarchical_graph,
)
from repro.topology.schedule import (
    DYNAMICS_KEYS,
    DynamicTopologySchedule,
    StaticSchedule,
    TopologyEvent,
    TopologySchedule,
    churn_schedule,
    edge_failure_schedule,
    periodic_rewiring_schedule,
    schedule_from_dynamics,
    straggler_schedule,
    validate_dynamics,
)
from repro.topology.mixing import (
    AUTO_SPARSE_MAX_DENSITY,
    AUTO_SPARSE_MIN_AGENTS,
    DENSE_EIG_MAX_AGENTS,
    MixingOperator,
    metropolis_hastings_weights,
    uniform_neighbor_weights,
    is_doubly_stochastic,
    is_symmetric,
    preferred_mixing_format,
    spectral_gap,
    second_largest_eigenvalue,
    validate_mixing_matrix,
)

__all__ = [
    "Topology",
    "fully_connected_graph",
    "ring_graph",
    "bipartite_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "small_world_graph",
    "hypercube_graph",
    "exponential_graph",
    "HierarchicalTopology",
    "TwoLevelMixingOperator",
    "hierarchical_graph",
    "default_cluster_size",
    "TopologyEvent",
    "TopologySchedule",
    "StaticSchedule",
    "DynamicTopologySchedule",
    "periodic_rewiring_schedule",
    "edge_failure_schedule",
    "churn_schedule",
    "straggler_schedule",
    "schedule_from_dynamics",
    "validate_dynamics",
    "DYNAMICS_KEYS",
    "MixingOperator",
    "metropolis_hastings_weights",
    "uniform_neighbor_weights",
    "is_doubly_stochastic",
    "is_symmetric",
    "preferred_mixing_format",
    "spectral_gap",
    "second_largest_eigenvalue",
    "validate_mixing_matrix",
    "AUTO_SPARSE_MAX_DENSITY",
    "AUTO_SPARSE_MIN_AGENTS",
    "DENSE_EIG_MAX_AGENTS",
]
