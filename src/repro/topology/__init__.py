"""Communication-topology substrate.

Decentralized learning algorithms in this library communicate over an
undirected graph ``G = (M, W)`` whose weighted adjacency matrix ``W`` is
symmetric and doubly stochastic (Sec. III-A).  This package provides:

* graph constructors for the topologies used in the paper's evaluation
  (fully connected, ring, bipartite) plus extra topologies useful for
  ablations (star, 2-D torus/grid, Erdős–Rényi);
* mixing-matrix builders (Metropolis–Hastings weights, uniform-neighbour
  averaging) that turn a graph into a symmetric doubly stochastic ``W``;
* spectral diagnostics: the second-largest eigenvalue magnitude
  ``sqrt(rho)`` from Assumption 3 and the spectral gap, which drive the
  convergence bound of Theorem 2.
"""

from repro.topology.graphs import (
    Topology,
    bipartite_graph,
    erdos_renyi_graph,
    fully_connected_graph,
    grid_graph,
    ring_graph,
    star_graph,
)
from repro.topology.mixing import (
    metropolis_hastings_weights,
    uniform_neighbor_weights,
    is_doubly_stochastic,
    is_symmetric,
    spectral_gap,
    second_largest_eigenvalue,
    validate_mixing_matrix,
)

__all__ = [
    "Topology",
    "fully_connected_graph",
    "ring_graph",
    "bipartite_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi_graph",
    "metropolis_hastings_weights",
    "uniform_neighbor_weights",
    "is_doubly_stochastic",
    "is_symmetric",
    "spectral_gap",
    "second_largest_eigenvalue",
    "validate_mixing_matrix",
]
