"""Graph topologies for decentralized learning.

A :class:`Topology` wraps an undirected connected ``networkx`` graph together
with its symmetric doubly stochastic mixing matrix ``W`` and convenience
accessors used by the agents (neighbour sets ``M_i`` *including self*, edge
weights ``w_{ij}``).

``W`` may be stored densely (ndarray) or as a ``scipy.sparse`` CSR matrix:
the large-graph constructors (:func:`torus_graph`,
:func:`random_regular_graph`, :func:`small_world_graph`,
:func:`hypercube_graph`, :func:`exponential_graph` — and the pre-existing
ones via their ``sparse`` parameter) build CSR storage automatically once
the dense matrix would be mostly zeros, so a 100k-agent ring never
materialises a 10^10-entry array.  :meth:`Topology.mixing_operator` hands
the gossip engine a :class:`~repro.topology.mixing.MixingOperator` in the
requested (or density-auto-selected) format; conversions between the two
formats preserve every entry exactly, so the choice of storage cannot
change a trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.topology.mixing import (
    MixingMatrix,
    MixingOperator,
    metropolis_hastings_weights,
    preferred_mixing_format,
    validate_mixing_matrix,
    second_largest_eigenvalue,
    spectral_gap,
)

__all__ = [
    "Topology",
    "fully_connected_graph",
    "ring_graph",
    "bipartite_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "small_world_graph",
    "hypercube_graph",
    "exponential_graph",
]


@dataclass
class Topology:
    """A communication graph plus its doubly stochastic mixing matrix.

    Attributes
    ----------
    graph:
        The underlying undirected ``networkx`` graph on nodes ``0..M-1``.
    mixing_matrix:
        Symmetric doubly stochastic ``(M, M)`` matrix ``W`` with
        ``w_{ij} > 0`` only for edges (and the diagonal).  Either a dense
        ndarray or a CSR matrix; every accessor works with both.
    name:
        Human-readable topology name used in experiment reports.
    require_connected:
        Whether construction rejects a disconnected graph.  The default
        (``True``) matches Assumption 3; per-round snapshots produced by a
        :class:`~repro.topology.schedule.TopologySchedule` pass ``False``
        because churned-out agents appear as isolated nodes (their mixing
        row is the identity) and edge failures may split the active fleet
        for a round.
    """

    graph: nx.Graph
    mixing_matrix: MixingMatrix
    name: str = "topology"
    require_connected: bool = True
    _neighbor_cache: Dict[int, List[int]] = field(default_factory=dict, repr=False)
    _directed_pairs_cache: Optional[List[Tuple[int, int]]] = field(default=None, repr=False)
    _operator_cache: Dict[str, MixingOperator] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if sp.issparse(self.mixing_matrix):
            w: MixingMatrix = sp.csr_array(self.mixing_matrix)
            w.sum_duplicates()
            w.sort_indices()
        else:
            w = np.asarray(self.mixing_matrix, dtype=np.float64)
        validate_mixing_matrix(w)
        if w.shape[0] != self.graph.number_of_nodes():
            raise ValueError("mixing matrix size does not match the number of nodes")
        if self.require_connected and not nx.is_connected(self.graph):
            raise ValueError("communication graph must be connected")
        self.mixing_matrix = w

    @property
    def num_agents(self) -> int:
        return int(self.graph.number_of_nodes())

    @property
    def mixing_is_sparse(self) -> bool:
        """True when ``W`` is stored as a CSR matrix."""
        return bool(sp.issparse(self.mixing_matrix))

    @property
    def mixing_nnz(self) -> int:
        """Number of stored nonzero mixing weights."""
        if self.mixing_is_sparse:
            return int(self.mixing_matrix.nnz)
        return int(np.count_nonzero(self.mixing_matrix))

    def mixing_operator(self, format: Optional[str] = None) -> MixingOperator:
        """``W`` wrapped for the gossip engine, in the requested storage format.

        ``format`` may be ``"dense"``, ``"sparse"``/``"csr"``, or
        ``None``/``"auto"`` to let
        :func:`~repro.topology.mixing.preferred_mixing_format` pick by fleet
        size and edge density.  Conversions between formats preserve every
        matrix entry exactly, and the two operators' ``apply`` kernels are
        bit-identical, so the format is purely a performance choice.
        Operators are cached per format.
        """
        if format in (None, "auto"):
            format = preferred_mixing_format(self.num_agents, self.mixing_nnz)
        if format == "sparse":
            format = "csr"
        if format not in ("dense", "csr"):
            raise ValueError("mixing format must be 'auto', 'dense', 'sparse' or 'csr'")
        if format not in self._operator_cache:
            if format == "csr":
                matrix = (
                    self.mixing_matrix
                    if self.mixing_is_sparse
                    else sp.csr_array(self.mixing_matrix)
                )
            else:
                matrix = (
                    self.mixing_matrix.toarray()
                    if self.mixing_is_sparse
                    else self.mixing_matrix
                )
            self._operator_cache[format] = MixingOperator(matrix)
        return self._operator_cache[format]

    def neighbors(self, agent: int, include_self: bool = True) -> List[int]:
        """The neighbour set ``M_i`` of an agent (including the agent itself by default).

        Neighbourhood membership follows the mixing matrix: ``j in M_i`` iff
        ``w_{ij} > 0``, matching the paper's definition.
        """
        if agent not in self._neighbor_cache:
            if self.mixing_is_sparse:
                w = self.mixing_matrix
                start, stop = int(w.indptr[agent]), int(w.indptr[agent + 1])
                columns = w.indices[start:stop]
                values = w.data[start:stop]
                members = [int(j) for j in columns[values > 0.0]]
            else:
                row = self.mixing_matrix[agent]
                members = [int(j) for j in np.flatnonzero(row > 0.0)]
            self._neighbor_cache[agent] = members
        members = list(self._neighbor_cache[agent])
        if not include_self:
            members = [j for j in members if j != agent]
        elif agent not in members:
            members.append(agent)
        return sorted(members)

    def weight(self, i: int, j: int) -> float:
        """Mixing weight ``w_{ij}``."""
        return float(self.mixing_matrix[i, j])

    def degree(self, agent: int) -> int:
        """Graph degree (number of neighbours excluding self)."""
        return int(self.graph.degree[agent])

    @property
    def rho(self) -> float:
        """``rho`` from Assumption 3: ``max(|lambda_2|, |lambda_M|)^2 <= rho < 1``."""
        return float(second_largest_eigenvalue(self.mixing_matrix) ** 2)

    @property
    def spectral_gap(self) -> float:
        """``1 - sqrt(rho)``, the quantity appearing in the convergence bound."""
        return float(spectral_gap(self.mixing_matrix))

    def min_weight(self) -> float:
        """``omega_min``: the smallest positive mixing weight (Theorem 1)."""
        if self.mixing_is_sparse:
            data = self.mixing_matrix.data
            positive = data[data > 0.0]
        else:
            w = self.mixing_matrix
            positive = w[w > 0.0]
        return float(positive.min()) if positive.size else 0.0

    def edges(self) -> List[Tuple[int, int]]:
        return [(int(u), int(v)) for u, v in self.graph.edges()]

    def directed_pairs(self) -> List[Tuple[int, int]]:
        """Every ordered pair ``(i, j)`` with ``j`` a neighbour of ``i`` (``j != i``).

        Sorted by ``(i, j)``, i.e. grouped by agent with neighbours ascending —
        the exact order in which the loop backend's message-passing phases
        visit the pairs, which the vectorized engine mirrors so both backends
        consume per-agent randomness identically.
        """
        if self._directed_pairs_cache is None:
            self._directed_pairs_cache = [
                (i, j)
                for i in range(self.num_agents)
                for j in self.neighbors(i, include_self=False)
            ]
        return list(self._directed_pairs_cache)

    @property
    def num_directed_edges(self) -> int:
        """Number of directed communication channels (twice the edge count).

        Counted straight off the mixing matrix — positive off-diagonal
        entries, the same ``w_{ij} > 0`` membership rule :meth:`neighbors`
        uses — without materialising the :meth:`directed_pairs` list, which
        at fleet scale costs one Python tuple per channel.
        """
        if self._directed_pairs_cache is not None:
            return len(self._directed_pairs_cache)
        diagonal = (
            self.mixing_matrix.diagonal()
            if self.mixing_is_sparse
            else np.diagonal(self.mixing_matrix)
        )
        positive_diagonal = int(np.count_nonzero(np.asarray(diagonal) > 0.0))
        if self.mixing_is_sparse:
            positive = int(np.count_nonzero(self.mixing_matrix.data > 0.0))
        else:
            positive = int(np.count_nonzero(self.mixing_matrix > 0.0))
        return positive - positive_diagonal


def _build(
    graph: nx.Graph,
    name: str,
    mixing: Optional[MixingMatrix] = None,
    sparse: Optional[bool] = None,
) -> Topology:
    """Relabel nodes to ``0..M-1`` and attach Metropolis–Hastings weights.

    ``sparse=None`` auto-selects the storage format with the same density
    rule the gossip engine uses (:func:`preferred_mixing_format`), so large
    sparse graphs never materialise the dense matrix even transiently.
    """
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    if mixing is None:
        if sparse is None:
            m = graph.number_of_nodes()
            nnz = 2 * graph.number_of_edges() + m
            sparse = preferred_mixing_format(m, nnz) == "csr"
        mixing = metropolis_hastings_weights(graph, sparse=sparse)
    return Topology(graph=graph, mixing_matrix=mixing, name=name)


def fully_connected_graph(num_agents: int) -> Topology:
    """Complete graph: every pair of agents communicates (dense topology).

    The mixing matrix is the uniform averaging matrix ``W = 11^T / M``, which
    is the natural doubly stochastic choice for a complete graph and has
    spectral gap 1.  Always stored densely — there are no zeros to exploit.
    """
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    graph = nx.complete_graph(num_agents)
    mixing = np.full((num_agents, num_agents), 1.0 / num_agents, dtype=np.float64)
    return _build(graph, "fully_connected", mixing)


def ring_graph(num_agents: int, sparse: Optional[bool] = None) -> Topology:
    """Cycle topology: each agent talks to exactly two neighbours (sparse)."""
    if num_agents < 3:
        raise ValueError("a ring needs at least 3 agents")
    graph = nx.cycle_graph(num_agents)
    return _build(graph, "ring", sparse=sparse)


def bipartite_graph(num_agents: int, sparse: Optional[bool] = None) -> Topology:
    """Complete bipartite topology splitting the agents into two halves.

    Agents ``0 .. ceil(M/2)-1`` form one side and the rest the other side;
    every cross-side pair is connected.  This is the "bipartite" sparser
    topology of the paper's evaluation.
    """
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    left = num_agents // 2 + num_agents % 2
    right = num_agents - left
    if right == 0:
        raise ValueError("need at least 2 agents to form two sides")
    graph = nx.complete_bipartite_graph(left, right)
    return _build(graph, "bipartite", sparse=sparse)


def star_graph(num_agents: int, sparse: Optional[bool] = None) -> Topology:
    """Star topology: agent 0 is the hub (useful as a quasi-centralised ablation)."""
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    graph = nx.star_graph(num_agents - 1)
    return _build(graph, "star", sparse=sparse)


def grid_graph(
    rows: int, cols: int, periodic: bool = True, sparse: Optional[bool] = None
) -> Topology:
    """2-D grid / torus topology with ``rows * cols`` agents."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid must contain at least 2 agents")
    if periodic and (rows < 3 or cols < 3):
        # networkx requires >=3 per periodic dimension; fall back to a plain grid.
        periodic = False
    graph = nx.grid_2d_graph(rows, cols, periodic=periodic)
    return _build(graph, "torus" if periodic else "grid", sparse=sparse)


def torus_graph(rows: int, cols: Optional[int] = None, sparse: Optional[bool] = None) -> Topology:
    """2-D torus: a periodic grid where every agent has exactly 4 neighbours.

    The constant degree keeps the per-agent communication cost flat as the
    fleet grows, while the wrap-around links roughly square the spectral gap
    of a ring with the same number of agents — the canonical scalable
    topology for large decentralized fleets.  ``cols`` defaults to ``rows``
    (a square torus).
    """
    if cols is None:
        cols = rows
    if rows < 3 or cols < 3:
        raise ValueError("a torus needs at least 3 agents per dimension")
    return grid_graph(rows, cols, periodic=True, sparse=sparse)


def erdos_renyi_graph(
    num_agents: int,
    edge_probability: float,
    seed: Optional[int] = 0,
    max_tries: int = 100,
    sparse: Optional[bool] = None,
) -> Topology:
    """Random G(n, p) topology, re-sampled until connected."""
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    if not 0.0 < edge_probability <= 1.0:
        raise ValueError("edge_probability must be in (0, 1]")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        graph = nx.erdos_renyi_graph(num_agents, edge_probability, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return _build(graph, "erdos_renyi", sparse=sparse)
    raise RuntimeError(
        "failed to sample a connected Erdos-Renyi graph; increase edge_probability"
    )


def random_regular_graph(
    num_agents: int,
    degree: int = 4,
    seed: Optional[int] = 0,
    max_tries: int = 100,
    sparse: Optional[bool] = None,
) -> Topology:
    """Random ``k``-regular topology, re-sampled until connected.

    Every agent has exactly ``degree`` neighbours; random regular graphs are
    expanders with high probability, so the spectral gap stays bounded away
    from zero as the fleet grows — constant per-agent traffic with
    near-constant mixing time.
    """
    if num_agents < 3:
        raise ValueError("need at least 3 agents")
    if degree < 2 or degree >= num_agents:
        raise ValueError("degree must lie in [2, num_agents)")
    if (num_agents * degree) % 2 != 0:
        raise ValueError("num_agents * degree must be even")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        graph = nx.random_regular_graph(degree, num_agents, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return _build(graph, "random_regular", sparse=sparse)
    raise RuntimeError(
        "failed to sample a connected random regular graph; increase degree"
    )


def small_world_graph(
    num_agents: int,
    nearest_neighbors: int = 4,
    rewire_probability: float = 0.1,
    seed: Optional[int] = 0,
    sparse: Optional[bool] = None,
) -> Topology:
    """Watts–Strogatz small-world topology (connected variant).

    A ring lattice where each agent talks to its ``nearest_neighbors``
    closest agents, with each edge rewired to a random agent with probability
    ``rewire_probability``.  The shortcuts give logarithmic diameter — and a
    far larger spectral gap than a plain ring — at ring-like per-agent cost.
    """
    if num_agents < 4:
        raise ValueError("need at least 4 agents")
    if not 2 <= nearest_neighbors < num_agents:
        raise ValueError("nearest_neighbors must lie in [2, num_agents)")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError("rewire_probability must lie in [0, 1]")
    graph = nx.connected_watts_strogatz_graph(
        num_agents, nearest_neighbors, rewire_probability, tries=100, seed=seed
    )
    return _build(graph, "small_world", sparse=sparse)


def hypercube_graph(dimension: int, sparse: Optional[bool] = None) -> Topology:
    """Hypercube topology on ``2**dimension`` agents.

    Agent ``i`` and agent ``j`` are connected iff their ids differ in exactly
    one bit, so every agent has ``dimension = log2(M)`` neighbours and the
    spectral gap decays only as ``O(1 / log M)`` — logarithmic traffic for
    near-dense mixing quality.
    """
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    graph = nx.hypercube_graph(dimension)
    return _build(graph, "hypercube", sparse=sparse)


def exponential_graph(num_agents: int, sparse: Optional[bool] = None) -> Topology:
    """Exponential topology: agent ``i`` connects to ``(i ± 2^k) mod M``.

    Each agent has ``O(log M)`` neighbours at exponentially growing hop
    distances — the classic decentralized-SGD topology that combines
    logarithmic degree with a spectral gap far better than rings or grids of
    the same size.
    """
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    graph = nx.Graph()
    graph.add_nodes_from(range(num_agents))
    hop = 1
    while hop < num_agents:
        for i in range(num_agents):
            graph.add_edge(i, (i + hop) % num_agents)
        hop *= 2
    return _build(graph, "exponential", sparse=sparse)
