"""Graph topologies for decentralized learning.

A :class:`Topology` wraps an undirected connected ``networkx`` graph together
with its symmetric doubly stochastic mixing matrix ``W`` and convenience
accessors used by the agents (neighbour sets ``M_i`` *including self*, edge
weights ``w_{ij}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.topology.mixing import (
    metropolis_hastings_weights,
    validate_mixing_matrix,
    second_largest_eigenvalue,
    spectral_gap,
)

__all__ = [
    "Topology",
    "fully_connected_graph",
    "ring_graph",
    "bipartite_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi_graph",
]


@dataclass
class Topology:
    """A communication graph plus its doubly stochastic mixing matrix.

    Attributes
    ----------
    graph:
        The underlying undirected ``networkx`` graph on nodes ``0..M-1``.
    mixing_matrix:
        Symmetric doubly stochastic ``(M, M)`` matrix ``W`` with
        ``w_{ij} > 0`` only for edges (and the diagonal).
    name:
        Human-readable topology name used in experiment reports.
    """

    graph: nx.Graph
    mixing_matrix: np.ndarray
    name: str = "topology"
    _neighbor_cache: Dict[int, List[int]] = field(default_factory=dict, repr=False)
    _directed_pairs_cache: Optional[List[Tuple[int, int]]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        w = np.asarray(self.mixing_matrix, dtype=np.float64)
        validate_mixing_matrix(w)
        if w.shape[0] != self.graph.number_of_nodes():
            raise ValueError("mixing matrix size does not match the number of nodes")
        if not nx.is_connected(self.graph):
            raise ValueError("communication graph must be connected")
        self.mixing_matrix = w

    @property
    def num_agents(self) -> int:
        return int(self.graph.number_of_nodes())

    def neighbors(self, agent: int, include_self: bool = True) -> List[int]:
        """The neighbour set ``M_i`` of an agent (including the agent itself by default).

        Neighbourhood membership follows the mixing matrix: ``j in M_i`` iff
        ``w_{ij} > 0``, matching the paper's definition.
        """
        if agent not in self._neighbor_cache:
            row = self.mixing_matrix[agent]
            members = [int(j) for j in np.flatnonzero(row > 0.0)]
            self._neighbor_cache[agent] = members
        members = list(self._neighbor_cache[agent])
        if not include_self:
            members = [j for j in members if j != agent]
        elif agent not in members:
            members.append(agent)
        return sorted(members)

    def weight(self, i: int, j: int) -> float:
        """Mixing weight ``w_{ij}``."""
        return float(self.mixing_matrix[i, j])

    def degree(self, agent: int) -> int:
        """Graph degree (number of neighbours excluding self)."""
        return int(self.graph.degree[agent])

    @property
    def rho(self) -> float:
        """``rho`` from Assumption 3: ``max(|lambda_2|, |lambda_M|)^2 <= rho < 1``."""
        return float(second_largest_eigenvalue(self.mixing_matrix) ** 2)

    @property
    def spectral_gap(self) -> float:
        """``1 - sqrt(rho)``, the quantity appearing in the convergence bound."""
        return float(spectral_gap(self.mixing_matrix))

    def min_weight(self) -> float:
        """``omega_min``: the smallest positive mixing weight (Theorem 1)."""
        w = self.mixing_matrix
        positive = w[w > 0.0]
        return float(positive.min()) if positive.size else 0.0

    def edges(self) -> List[Tuple[int, int]]:
        return [(int(u), int(v)) for u, v in self.graph.edges()]

    def directed_pairs(self) -> List[Tuple[int, int]]:
        """Every ordered pair ``(i, j)`` with ``j`` a neighbour of ``i`` (``j != i``).

        Sorted by ``(i, j)``, i.e. grouped by agent with neighbours ascending —
        the exact order in which the loop backend's message-passing phases
        visit the pairs, which the vectorized engine mirrors so both backends
        consume per-agent randomness identically.
        """
        if self._directed_pairs_cache is None:
            self._directed_pairs_cache = [
                (i, j)
                for i in range(self.num_agents)
                for j in self.neighbors(i, include_self=False)
            ]
        return list(self._directed_pairs_cache)

    @property
    def num_directed_edges(self) -> int:
        """Number of directed communication channels (twice the edge count)."""
        if self._directed_pairs_cache is None:
            self.directed_pairs()
        return len(self._directed_pairs_cache)


def _build(graph: nx.Graph, name: str, mixing: Optional[np.ndarray] = None) -> Topology:
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    if mixing is None:
        mixing = metropolis_hastings_weights(graph)
    return Topology(graph=graph, mixing_matrix=mixing, name=name)


def fully_connected_graph(num_agents: int) -> Topology:
    """Complete graph: every pair of agents communicates (dense topology).

    The mixing matrix is the uniform averaging matrix ``W = 11^T / M``, which
    is the natural doubly stochastic choice for a complete graph and has
    spectral gap 1.
    """
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    graph = nx.complete_graph(num_agents)
    mixing = np.full((num_agents, num_agents), 1.0 / num_agents, dtype=np.float64)
    return _build(graph, "fully_connected", mixing)


def ring_graph(num_agents: int) -> Topology:
    """Cycle topology: each agent talks to exactly two neighbours (sparse)."""
    if num_agents < 3:
        raise ValueError("a ring needs at least 3 agents")
    graph = nx.cycle_graph(num_agents)
    return _build(graph, "ring")


def bipartite_graph(num_agents: int) -> Topology:
    """Complete bipartite topology splitting the agents into two halves.

    Agents ``0 .. ceil(M/2)-1`` form one side and the rest the other side;
    every cross-side pair is connected.  This is the "bipartite" sparser
    topology of the paper's evaluation.
    """
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    left = num_agents // 2 + num_agents % 2
    right = num_agents - left
    if right == 0:
        raise ValueError("need at least 2 agents to form two sides")
    graph = nx.complete_bipartite_graph(left, right)
    return _build(graph, "bipartite")


def star_graph(num_agents: int) -> Topology:
    """Star topology: agent 0 is the hub (useful as a quasi-centralised ablation)."""
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    graph = nx.star_graph(num_agents - 1)
    return _build(graph, "star")


def grid_graph(rows: int, cols: int, periodic: bool = True) -> Topology:
    """2-D grid / torus topology with ``rows * cols`` agents."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid must contain at least 2 agents")
    if periodic and (rows < 3 or cols < 3):
        # networkx requires >=3 per periodic dimension; fall back to a plain grid.
        periodic = False
    graph = nx.grid_2d_graph(rows, cols, periodic=periodic)
    return _build(graph, "torus" if periodic else "grid")


def erdos_renyi_graph(
    num_agents: int, edge_probability: float, seed: Optional[int] = 0, max_tries: int = 100
) -> Topology:
    """Random G(n, p) topology, re-sampled until connected."""
    if num_agents < 2:
        raise ValueError("need at least 2 agents")
    if not 0.0 < edge_probability <= 1.0:
        raise ValueError("edge_probability must be in (0, 1]")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        graph = nx.erdos_renyi_graph(num_agents, edge_probability, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return _build(graph, "erdos_renyi")
    raise RuntimeError(
        "failed to sample a connected Erdos-Renyi graph; increase edge_probability"
    )
