"""Hierarchical two-level gossip: intra-cluster averaging + inter-cluster mixing.

Production fleets are not flat: agents sit behind racks, cells or regions
with cheap local links and expensive cross-links.  Two-level gossip (the
``hierarchical`` flag of frameworks like Bagua) exploits this: each round,
agents first average *densely within their cluster* (cheap local traffic)
and the cluster aggregates then mix over a *sparse inter-cluster topology*
(few expensive hops).  For clusters of equal size ``c`` and a symmetric
doubly stochastic cluster-level matrix ``W_K`` on the ``K = N / c``
clusters, the effective fleet-level operator is the Kronecker blow-up

    ``W_eff = W_K  ⊗  (11^T / c)``,   i.e.  ``W_eff[i, j] = W_K[cluster(i), cluster(j)] / c``

which is symmetric and doubly stochastic whenever ``W_K`` is — and is
*validated* as such at construction, like every other mixing matrix in this
library.  Two implementations of the same operator live here:

* :class:`HierarchicalTopology` materialises ``W_eff`` as a CSR matrix, so
  it plugs into the engine exactly like any :class:`Topology` (and into a
  :class:`~repro.topology.schedule.StaticSchedule` / the experiment
  harness via ``topology="hierarchical"``), with both engines bit-identical
  as usual.  Its ``directed_edge_split`` lets
  :meth:`~repro.core.base.DecentralizedAlgorithm.record_fleet_exchange`
  account intra-cluster and inter-cluster traffic under separate tags.
* :class:`TwoLevelMixingOperator` applies the operator in factored form —
  per-cluster means, ``W_K`` on the ``(K, d)`` means, broadcast back — in
  O(N d + nnz(W_K) d) time and O(K d) extra memory, never materialising
  ``W_eff`` (whose nnz grows as ``nnz(W_K) · c²``).  This is what the
  scaling sweep runs at fleet sizes where even storing ``W_eff`` is off the
  table.  The factored apply reassociates the sum (mean first, then mix),
  so it matches the materialised operator to floating-point tolerance, not
  bitwise — the hierarchical tests pin the agreement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.topology.graphs import Topology
from repro.topology.mixing import (
    MixingMatrix,
    MixingOperator,
    metropolis_hastings_weights,
    validate_mixing_matrix,
)

__all__ = [
    "TwoLevelMixingOperator",
    "HierarchicalTopology",
    "hierarchical_graph",
    "default_cluster_size",
]


def default_cluster_size(num_agents: int) -> int:
    """The largest power of two ``<= sqrt(num_agents)`` that divides ``num_agents``.

    Balancing the two tiers: ``c ~ sqrt(N)`` equalises the intra-cluster
    fan-out (``c - 1`` local channels per agent) and the number of clusters
    the sparse upper tier must mix (``N / c``).
    """
    if num_agents < 4:
        raise ValueError("hierarchical gossip needs at least 4 agents")
    best = 2
    candidate = 2
    while candidate * candidate <= num_agents:
        if num_agents % candidate == 0:
            best = candidate
        candidate *= 2
    return best


class TwoLevelMixingOperator:
    """``W_K ⊗ (11^T / c)`` applied in factored form (never materialised).

    ``apply`` computes per-cluster means (the dense intra-cluster averaging
    step), mixes the ``(K, d)`` cluster aggregates with the sparse
    cluster-level operator, and broadcasts each mixed aggregate back to the
    cluster's members — algebraically identical to multiplying by the
    blown-up ``W_eff``, at O(N d + nnz(W_K) d) cost.  Float32 input stays
    float32 (the cluster operator's kernels are dtype-aware).

    ``effective_operator`` materialises ``W_eff`` as a CSR
    :class:`~repro.topology.mixing.MixingOperator` on demand — used by the
    validation tests and small-fleet comparisons; avoid it at scales where
    ``nnz(W_K) · c²`` entries no longer fit.
    """

    format = "two_level"

    def __init__(self, cluster_matrix: MixingMatrix, cluster_size: int) -> None:
        if cluster_size < 1:
            raise ValueError("cluster_size must be a positive integer")
        validate_mixing_matrix(cluster_matrix)
        self.cluster_operator = MixingOperator(cluster_matrix)
        self.cluster_size = int(cluster_size)
        self.num_clusters = self.cluster_operator.num_agents
        self._effective: Optional[MixingOperator] = None

    @property
    def num_agents(self) -> int:
        return self.num_clusters * self.cluster_size

    @property
    def nnz(self) -> int:
        """Stored nonzeros of the *materialised* effective matrix."""
        return self.cluster_operator.nnz * self.cluster_size * self.cluster_size

    def effective_matrix(self) -> sp.csr_array:
        """The blown-up ``W_eff`` as CSR (``nnz(W_K) · c²`` stored entries)."""
        c = self.cluster_size
        blow_up = np.full((c, c), 1.0 / c, dtype=np.float64)
        cluster = self.cluster_operator.matrix
        if not sp.issparse(cluster):
            cluster = sp.csr_array(cluster)
        effective = sp.csr_array(sp.kron(cluster, blow_up, format="csr"))
        effective.sum_duplicates()
        effective.sort_indices()
        return effective

    def effective_operator(self) -> MixingOperator:
        """``W_eff`` wrapped as a standard (exact, bit-stable) operator."""
        if self._effective is None:
            self._effective = MixingOperator(self.effective_matrix())
        return self._effective

    def apply(self, rows: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One two-level gossip step: cluster means → ``W_K`` → broadcast."""
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[0] != self.num_agents:
            raise ValueError(
                f"expected a ({self.num_agents}, d) stack of agent rows, "
                f"got shape {rows.shape}"
            )
        k, c = self.num_clusters, self.cluster_size
        means = rows.reshape(k, c, rows.shape[1]).mean(axis=1)
        mixed = self.cluster_operator.apply(means)
        if out is None:
            return np.repeat(mixed, c, axis=0)
        if out.shape != rows.shape:
            raise ValueError(f"out buffer has shape {out.shape}, expected {rows.shape}")
        for start in range(0, self.num_agents, c):
            out[start : start + c] = mixed[start // c]
        return out

    def mix_rows_blocked(
        self,
        rows: np.ndarray,
        block_rows: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Blocked-output variant of :meth:`apply` (same factored math).

        The cluster aggregates are tiny (``(K, d)``), so blocking only
        matters for the broadcast-back stage; results are identical to
        :meth:`apply`.
        """
        del block_rows  # the (K, d) aggregate stage has nothing to block
        if out is None:
            return self.apply(rows)
        return self.apply(rows, out=out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TwoLevelMixingOperator(num_clusters={self.num_clusters}, "
            f"cluster_size={self.cluster_size})"
        )


@dataclass
class HierarchicalTopology(Topology):
    """A :class:`Topology` whose mixing matrix is the two-level blow-up.

    Behaves exactly like any topology (the engine applies the materialised
    ``W_eff`` with the standard bit-stable kernels, both engines
    bit-identical), plus hierarchy metadata: ``cluster_size``,
    ``num_clusters``, the intra/inter directed-channel split used for
    two-tier traffic accounting, and :meth:`two_level_operator` for the
    factored O(N d) fast path.
    """

    cluster_size: int = 1
    cluster_matrix: Optional[MixingMatrix] = None

    @property
    def num_clusters(self) -> int:
        return self.num_agents // self.cluster_size

    @property
    def directed_edge_split(self) -> Tuple[int, int]:
        """``(intra, inter)`` directed channel counts for traffic accounting.

        Intra-cluster: every ordered pair within a cluster —
        ``N · (c - 1)`` channels over cheap local links.  Inter-cluster:
        everything else in the blow-up graph.
        """
        intra = self.num_agents * (self.cluster_size - 1)
        return intra, self.num_directed_edges - intra

    def two_level_operator(self) -> TwoLevelMixingOperator:
        """The factored fast-path operator (see :class:`TwoLevelMixingOperator`)."""
        assert self.cluster_matrix is not None
        return TwoLevelMixingOperator(self.cluster_matrix, self.cluster_size)


def hierarchical_graph(
    num_agents: int,
    cluster_size: Optional[int] = None,
    cluster_topology: str = "ring",
) -> HierarchicalTopology:
    """Two-level topology: dense clusters of ``cluster_size`` over a sparse core.

    Agents ``[k·c, (k+1)·c)`` form cluster ``k``; clusters are arranged on a
    ``cluster_topology`` graph (``"ring"`` or ``"fully_connected"``) with
    Metropolis–Hastings weights ``W_K``, and the fleet-level mixing matrix
    is the validated doubly stochastic blow-up ``W_K ⊗ (11^T / c)``.
    ``cluster_size`` must divide ``num_agents``; ``None`` picks
    :func:`default_cluster_size`.
    """
    if num_agents < 4:
        raise ValueError("hierarchical gossip needs at least 4 agents")
    c = default_cluster_size(num_agents) if cluster_size is None else int(cluster_size)
    if c < 1 or num_agents % c != 0:
        raise ValueError(
            f"cluster_size must be a positive divisor of num_agents, got {c} "
            f"for {num_agents} agents"
        )
    k = num_agents // c
    if k < 1:
        raise ValueError("need at least one cluster")
    if cluster_topology == "ring":
        if k >= 3:
            cluster_graph = nx.cycle_graph(k)
        elif k == 2:
            cluster_graph = nx.path_graph(2)
        else:
            cluster_graph = nx.Graph()
            cluster_graph.add_node(0)
        cluster_w = metropolis_hastings_weights(cluster_graph, sparse=k >= 3)
    elif cluster_topology == "fully_connected":
        cluster_graph = nx.complete_graph(k) if k > 1 else nx.Graph()
        if k == 1:
            cluster_graph.add_node(0)
        cluster_w = np.full((k, k), 1.0 / k, dtype=np.float64)
    else:
        raise ValueError("cluster_topology must be 'ring' or 'fully_connected'")

    # Blow-up graph: a clique inside each cluster, complete bipartite links
    # between adjacent clusters — the support of W_eff off the diagonal.
    graph = nx.Graph()
    graph.add_nodes_from(range(num_agents))
    for cluster in range(k):
        members = range(cluster * c, (cluster + 1) * c)
        graph.add_edges_from(itertools.combinations(members, 2))
    for a, b in cluster_graph.edges():
        graph.add_edges_from(
            (u, v)
            for u in range(a * c, (a + 1) * c)
            for v in range(b * c, (b + 1) * c)
        )

    operator = TwoLevelMixingOperator(cluster_w, c)
    effective = operator.effective_matrix()
    # Topology.__post_init__ re-validates: symmetric, doubly stochastic.
    return HierarchicalTopology(
        graph=graph,
        mixing_matrix=effective,
        name=f"hierarchical(c={c},{cluster_topology})",
        cluster_size=c,
        cluster_matrix=cluster_w,
    )
