"""Doubly stochastic mixing matrices and their spectral diagnostics.

Notation (matching the paper's Sec. III-A / Assumption 3): the communication
graph has ``M`` agents; ``W = (omega_{ij})`` is the ``(M, M)`` mixing matrix
whose entry ``omega_{ij}`` weights the message agent ``i`` receives from
agent ``j`` during gossip averaging (``x_i <- sum_j omega_{ij} x_j``,
eqs. 24–25); ``M_i = {j : omega_{ij} > 0}`` is agent ``i``'s closed
neighbourhood; ``lambda_1 >= lambda_2 >= ... >= lambda_M`` are the
eigenvalues of ``W``.

Assumption 3 requires two structural properties and one spectral one:

* **symmetry** — ``W = W^T`` (undirected communication, equal weights both
  ways);
* **double stochasticity** — non-negative entries with every row *and*
  column summing to 1, so gossip preserves the network average and every
  agent's contribution has equal total influence;
* **contraction** — ``lambda_1(W) = 1`` with
  ``max(|lambda_2|, |lambda_M|) <= sqrt(rho) < 1``, i.e. a strictly positive
  spectral gap.  This is what makes repeated gossip shrink the consensus
  distance geometrically (Lemma 6) and is equivalent to the graph being
  connected and ``W`` not flipping sign on a bipartition (guaranteed here by
  strictly positive diagonals).

Symmetry and double stochasticity are *structural* requirements checked by
:func:`validate_mixing_matrix` unconditionally; the contraction property is
optional there (``require_contraction=True``) because a disconnected or
zero-diagonal-bipartite ``W`` is still a valid averaging operator, it just
does not converge to consensus.  Metropolis–Hastings weights
(:func:`metropolis_hastings_weights`) satisfy all three conditions for any
connected undirected graph, which is why they are the default.

Sparse storage
--------------

On a sparse communication graph (ring, torus, random-regular, small-world)
``W`` has O(M) nonzeros, so storing it densely costs O(M^2) memory and every
gossip step O(M^2 d) time — at M = 4096 that is 16.7M matrix entries of
which only ~12k are nonzero.  The weight builders therefore accept
``sparse=True`` and assemble a ``scipy.sparse`` CSR matrix *edge-wise*,
never materialising the dense matrix; every helper in this module
(:func:`is_symmetric`, :func:`is_doubly_stochastic`,
:func:`validate_mixing_matrix`, the spectral diagnostics) accepts either
representation without densifying, and :class:`MixingOperator` applies
``W @ X`` in O(nnz * d) for CSR storage.  Above ``DENSE_EIG_MAX_AGENTS``
the spectral diagnostics switch from a full O(M^3) ``eigvalsh``
decomposition to a Lanczos iteration (``scipy.sparse.linalg.eigsh``) that
only needs matrix–vector products.
"""

from __future__ import annotations

from typing import Optional, Union

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import ArpackNoConvergence, eigsh

__all__ = [
    "MixingMatrix",
    "MixingOperator",
    "metropolis_hastings_weights",
    "uniform_neighbor_weights",
    "is_symmetric",
    "is_doubly_stochastic",
    "second_largest_eigenvalue",
    "spectral_gap",
    "validate_mixing_matrix",
    "preferred_mixing_format",
    "DENSE_EIG_MAX_AGENTS",
    "AUTO_SPARSE_MIN_AGENTS",
    "AUTO_SPARSE_MAX_DENSITY",
]

_TOLERANCE = 1e-9

#: Largest matrix for which the spectral diagnostics use a full dense
#: eigendecomposition; above this they switch to Lanczos (``eigsh``).
DENSE_EIG_MAX_AGENTS = 512

#: Auto-selection rule for :func:`preferred_mixing_format`: CSR wins once the
#: fleet is at least this large ...
AUTO_SPARSE_MIN_AGENTS = 64

#: ... and at most this fraction of the matrix entries is nonzero.  Below
#: ~25% density the O(nnz * d) CSR product beats the dense kernel; above it
#: the dense kernel's contiguous memory access wins.
AUTO_SPARSE_MAX_DENSITY = 0.25

#: Either storage format of a mixing matrix.
MixingMatrix = Union[np.ndarray, sp.csr_array]


def _graph_layout(graph: nx.Graph):
    """Sorted nodes, node -> row index, and the (i, j) edge list sans self-loops."""
    nodes = sorted(graph.nodes())
    index = {node: k for k, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges() if u != v]
    return nodes, index, edges


def _assemble_csr(
    m: int, edges: list, edge_weights: np.ndarray
) -> sp.csr_array:
    """Symmetric CSR matrix from per-edge weights plus the stochastic diagonal.

    Built entirely from edge arrays — the dense matrix is never materialised,
    so this scales to graphs with millions of nodes.  The diagonal receives
    the residual mass ``1 - sum_j w_{ij}`` with the off-diagonal row sums
    accumulated in ascending column order (CSR canonical order).
    """
    edge_weights = np.asarray(edge_weights, dtype=np.float64)
    if edges:
        ij = np.asarray(edges, dtype=np.int64)
        rows = np.concatenate([ij[:, 0], ij[:, 1]])
        cols = np.concatenate([ij[:, 1], ij[:, 0]])
        data = np.concatenate([edge_weights, edge_weights])
        off_diagonal = sp.coo_array((data, (rows, cols)), shape=(m, m)).tocsr()
        off_diagonal.sum_duplicates()
        off_diagonal.sort_indices()
        row_sums = np.asarray(off_diagonal.sum(axis=1)).reshape(-1)
    else:
        off_diagonal = sp.csr_array((m, m), dtype=np.float64)
        row_sums = np.zeros(m, dtype=np.float64)
    diagonal = sp.dia_array(
        (np.asarray([1.0 - row_sums]), [0]), shape=(m, m)
    )
    matrix = (off_diagonal + diagonal).tocsr()
    matrix.sum_duplicates()
    matrix.sort_indices()
    return matrix


def metropolis_hastings_weights(
    graph: nx.Graph, sparse: bool = False
) -> MixingMatrix:
    """Metropolis–Hastings mixing matrix for an undirected graph.

    ``w_{ij} = 1 / (1 + max(deg_i, deg_j))`` for each edge ``(i, j)``, zero for
    non-edges, and ``w_{ii} = 1 - sum_j w_{ij}``.  The result is symmetric,
    doubly stochastic and has strictly positive diagonal, so every agent's
    neighbourhood ``M_i`` includes itself as the paper assumes.

    With ``sparse=True`` the matrix is assembled edge-wise into CSR storage
    without ever materialising the dense ``(M, M)`` array; the edge weights
    are computed by the identical formula, so the two representations agree
    to floating-point round-off (the diagonals may differ in the last ulp
    because the residual row sums are accumulated in different orders).
    """
    nodes, index, edges = _graph_layout(graph)
    m = len(nodes)
    degrees = np.asarray([graph.degree[node] for node in nodes], dtype=np.float64)
    if sparse:
        if edges:
            ij = np.asarray(edges, dtype=np.int64)
            edge_weights = 1.0 / (1.0 + np.maximum(degrees[ij[:, 0]], degrees[ij[:, 1]]))
        else:
            edge_weights = np.zeros(0, dtype=np.float64)
        return _assemble_csr(m, edges, edge_weights)
    w = np.zeros((m, m), dtype=np.float64)
    for i, j in edges:
        weight = 1.0 / (1.0 + max(degrees[i], degrees[j]))
        w[i, j] = weight
        w[j, i] = weight
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


def uniform_neighbor_weights(
    graph: nx.Graph, sparse: bool = False
) -> MixingMatrix:
    """Uniform averaging over the *regular* closed neighbourhood.

    ``w_{ij} = 1 / (d_max + 1)`` for each edge where ``d_max`` is the maximum
    degree, and the remaining mass goes to the diagonal.  Like
    Metropolis–Hastings this is symmetric and doubly stochastic for any
    graph; on regular graphs (rings, complete graphs) it equals uniform
    neighbourhood averaging.  ``sparse=True`` assembles CSR storage
    edge-wise, exactly as in :func:`metropolis_hastings_weights`.
    """
    nodes, index, edges = _graph_layout(graph)
    m = len(nodes)
    if m == 0:
        return sp.csr_array((0, 0), dtype=np.float64) if sparse else np.zeros((0, 0))
    d_max = max((graph.degree[n] for n in nodes), default=0)
    share = 1.0 / (d_max + 1.0)
    if sparse:
        return _assemble_csr(m, edges, np.full(len(edges), share))
    w = np.zeros((m, m), dtype=np.float64)
    for i, j in edges:
        w[i, j] = share
        w[j, i] = share
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


def is_symmetric(matrix: MixingMatrix, tol: float = _TOLERANCE) -> bool:
    """True if the matrix equals its transpose within tolerance.

    CSR matrices are checked via the sparse difference ``W - W^T`` (O(nnz),
    no densification).
    """
    if sp.issparse(matrix):
        if matrix.shape[0] != matrix.shape[1]:
            return False
        difference = (matrix - matrix.T).tocoo()
        if difference.nnz == 0:
            return True
        return bool(np.max(np.abs(difference.data)) <= tol)
    matrix = np.asarray(matrix, dtype=np.float64)
    return bool(np.allclose(matrix, matrix.T, atol=tol))


def is_doubly_stochastic(matrix: MixingMatrix, tol: float = 1e-8) -> bool:
    """True if all entries are non-negative and all rows and columns sum to 1.

    CSR matrices are checked on their stored entries and axis sums only
    (O(nnz), no densification).
    """
    if sp.issparse(matrix):
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            return False
        csr = matrix.tocsr()
        if csr.nnz and float(csr.data.min()) < -tol:
            return False
        ones = np.ones(csr.shape[0])
        row_sums = np.asarray(csr.sum(axis=1)).reshape(-1)
        col_sums = np.asarray(csr.sum(axis=0)).reshape(-1)
        return bool(
            np.allclose(row_sums, ones, atol=tol)
            and np.allclose(col_sums, ones, atol=tol)
        )
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if (matrix < -tol).any():
        return False
    ones = np.ones(matrix.shape[0])
    return bool(
        np.allclose(matrix.sum(axis=0), ones, atol=tol)
        and np.allclose(matrix.sum(axis=1), ones, atol=tol)
    )


def second_largest_eigenvalue(matrix: MixingMatrix) -> float:
    """``max(|lambda_2|, |lambda_M|)`` for a symmetric stochastic matrix.

    For the mixing matrices used here this equals ``sqrt(rho)`` in
    Assumption 3: the contraction factor by which one gossip step shrinks
    the disagreement component (everything orthogonal to the consensus
    direction ``1``).  Values close to 0 mean near-instant consensus (e.g.
    the complete graph's ``W = 11^T / M``); values close to 1 mean slow
    mixing (long rings).

    Up to ``DENSE_EIG_MAX_AGENTS`` agents the full spectrum is computed with
    a dense ``eigvalsh`` (O(M^3), exact); above it a Lanczos iteration
    (``scipy.sparse.linalg.eigsh``) extracts only the two largest-magnitude
    eigenvalues — which are exactly ``{lambda_1, max(|lambda_2|, |lambda_M|)}``
    — at O(nnz) per matrix–vector product, so the diagnostic no longer pays
    an O(M^3) decomposition before training even starts.
    """
    n = matrix.shape[0]
    if n < 2:
        return 0.0
    if n <= DENSE_EIG_MAX_AGENTS:
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        eigenvalues = np.linalg.eigvalsh(dense)
        # eigvalsh returns ascending order; the largest should be ~1.
        sorted_by_magnitude = np.sort(np.abs(eigenvalues))[::-1]
        return float(sorted_by_magnitude[1])
    operand = matrix if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
    # Deterministic, non-special start vector (all-ones is the consensus
    # eigenvector of a doubly stochastic W and would degenerate the Krylov
    # space; a generic oscillating vector has mass on every eigenvector).
    v0 = np.cos(np.arange(n, dtype=np.float64))
    try:
        # ncv=64 Krylov vectors and a 1e-8 residual tolerance: slow-mixing
        # graphs (long rings) cluster lambda_1 and lambda_2 within ~1/n^2 of
        # each other, and the wider subspace cuts ARPACK's restarts several
        # fold while the achieved eigenvalue error stays < 1e-12.
        eigenvalues = eigsh(
            operand,
            k=2,
            which="LM",
            return_eigenvectors=False,
            tol=1e-8,
            v0=v0,
            ncv=min(n, 64),
        )
    except ArpackNoConvergence as error:
        eigenvalues = error.eigenvalues
        if eigenvalues is None or len(eigenvalues) < 2:
            raise
    sorted_by_magnitude = np.sort(np.abs(np.asarray(eigenvalues)))[::-1]
    return float(sorted_by_magnitude[1])


def spectral_gap(matrix: MixingMatrix) -> float:
    """``1 - max(|lambda_2|, |lambda_M|)`` = ``1 - sqrt(rho)``.

    Larger gap means faster consensus; this is the quantity that enters the
    denominator of the paper's convergence bound (Theorem 2).
    """
    return float(1.0 - second_largest_eigenvalue(matrix))


def validate_mixing_matrix(
    matrix: MixingMatrix, require_contraction: bool = False
) -> None:
    """Raise ``ValueError`` unless the matrix satisfies Assumption 3's structure.

    Checks, in order: squareness, symmetry (``W = W^T``) and double
    stochasticity (non-negative entries, rows and columns summing to 1).
    These are the properties gossip averaging relies on — without them the
    ``W @ X`` step would not preserve the network-average model, and the
    loop and vectorized engines could silently disagree.
    :class:`~repro.topology.graphs.Topology` validates at construction and
    :class:`~repro.core.base.DecentralizedAlgorithm` re-validates at
    algorithm construction, so a matrix mutated in between fails fast.

    CSR matrices are validated on their sparse structure directly — the
    checks are O(nnz) and never densify, so validation stays cheap even for
    fleet-scale graphs where the dense matrix would not fit in memory.

    ``require_contraction`` additionally demands ``sqrt(rho) < 1`` (strict
    positive spectral gap, the third part of Assumption 3), which holds for
    every connected graph with positive self-weights but can be violated by,
    e.g., a disconnected graph or a bipartite graph with zero diagonal.
    """
    if not sp.issparse(matrix):
        matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("mixing matrix must be square")
    if not is_symmetric(matrix):
        raise ValueError("mixing matrix must be symmetric")
    if not is_doubly_stochastic(matrix):
        raise ValueError("mixing matrix must be doubly stochastic with non-negative entries")
    if require_contraction and second_largest_eigenvalue(matrix) >= 1.0 - 1e-12:
        raise ValueError("mixing matrix must have spectral gap > 0 (connected topology)")


def preferred_mixing_format(num_agents: int, nnz: int) -> str:
    """The storage format the gossip engine should apply ``W`` in.

    ``"csr"`` once the fleet has at least ``AUTO_SPARSE_MIN_AGENTS`` agents
    *and* at most ``AUTO_SPARSE_MAX_DENSITY`` of the matrix entries are
    nonzero — the regime where the O(nnz * d) sparse product beats the dense
    kernel; ``"dense"`` otherwise (small fleets, dense graphs).
    """
    if num_agents <= 0:
        return "dense"
    density = nnz / float(num_agents * num_agents)
    if num_agents >= AUTO_SPARSE_MIN_AGENTS and density <= AUTO_SPARSE_MAX_DENSITY:
        return "csr"
    return "dense"


class MixingOperator:
    """A mixing matrix in an applicable storage format: the gossip step's ``W``.

    ``apply(X)`` computes ``W @ X`` — dense storage in O(M^2 d), CSR storage
    in O(nnz * d).  Both kernels accumulate each output row over the columns
    in ascending order with one separate multiply-add per term: the CSR
    product iterates a row's stored entries in index order, and the dense
    kernel uses ``np.einsum`` (a sequential sum-of-products loop) rather than
    the BLAS ``@``, whose blocked/FMA accumulation reorders the sum and
    perturbs the last ulp.  Because adding an exact zero never changes a
    partial sum, the two formats therefore produce **bit-identical** results
    for the same matrix — the property the engine-equivalence suite asserts
    so that switching a topology to sparse storage cannot silently change a
    trajectory.
    """

    __slots__ = ("matrix", "format", "_f32_matrix")

    def __init__(self, matrix: MixingMatrix) -> None:
        if sp.issparse(matrix):
            csr = sp.csr_array(matrix)
            csr.sum_duplicates()
            csr.sort_indices()
            self.matrix = csr
            self.format = "csr"
        else:
            self.matrix = np.asarray(matrix, dtype=np.float64)
            self.format = "dense"
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError("mixing operator requires a square matrix")
        self._f32_matrix: Optional[MixingMatrix] = None

    @property
    def num_agents(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def nnz(self) -> int:
        """Number of stored nonzero entries."""
        if self.format == "csr":
            return int(self.matrix.nnz)
        return int(np.count_nonzero(self.matrix))

    @property
    def density(self) -> float:
        """Fraction of matrix entries that are nonzero."""
        n = self.num_agents
        return self.nnz / float(n * n) if n else 0.0

    def _check_rows(self, rows: np.ndarray) -> np.ndarray:
        """Coerce ``rows`` to a valid ``(M, d)`` float stack, preserving float32."""
        rows = np.asarray(rows)
        if rows.dtype != np.float32:
            rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] != self.num_agents:
            raise ValueError(
                f"expected a ({self.num_agents}, d) stack of agent rows, "
                f"got shape {rows.shape}"
            )
        return rows

    def _matrix_for(self, dtype: np.dtype) -> MixingMatrix:
        """``W`` in the kernel dtype (the float32 cast is built once and cached)."""
        if dtype != np.float32:
            return self.matrix
        if self._f32_matrix is None:
            self._f32_matrix = self.matrix.astype(np.float32)
        return self._f32_matrix

    def apply(self, rows: np.ndarray) -> np.ndarray:
        """One gossip step for a stack of vectors: ``W @ rows``.

        ``rows`` is an ``(M, d)`` matrix whose row ``i`` is agent ``i``'s
        vector; the result is a new ``(M, d)`` dense matrix.  Float32 input
        selects the float32 kernel (``W`` cast once, cached) so low-precision
        fleet state never pays a transient float64 copy; every other input is
        coerced to float64 exactly as before.
        """
        rows = self._check_rows(rows)
        matrix = self._matrix_for(rows.dtype)
        if self.format == "csr":
            return matrix @ rows
        return np.einsum("ij,jk->ik", matrix, rows)

    def mix_rows_blocked(
        self,
        rows: np.ndarray,
        block_rows: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``W @ rows`` computed over ``(block_rows, d)`` output chunks.

        Each output block is the product of the corresponding row slice of
        ``W`` with the full input — and because both kernels (CSR row
        iteration and the einsum sum-of-products) accumulate each output row
        independently over the columns in ascending order, slicing the rows
        of ``W`` changes *nothing* about any row's accumulation: the blocked
        product is **bit-identical** to :meth:`apply` for every
        ``block_rows``.  What it buys is peak-memory control — the largest
        transient is one ``(block_rows, d)`` chunk instead of whatever the
        one-shot kernel allocates — and the ability to stream the output
        into a caller-owned buffer (``out``), e.g. a
        :class:`~repro.sharding.FleetState` shard or a memory-mapped array.
        """
        rows = self._check_rows(rows)
        n = self.num_agents
        if block_rows < 1:
            raise ValueError("block_rows must be a positive integer")
        if out is None:
            out = np.empty_like(rows)
        elif out.shape != rows.shape:
            raise ValueError(
                f"out buffer has shape {out.shape}, expected {rows.shape}"
            )
        matrix = self._matrix_for(rows.dtype)
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            block = matrix[start:stop]
            if self.format == "csr":
                out[start:stop] = block @ rows
            else:
                out[start:stop] = np.einsum("ij,jk->ik", block, rows)
        return out

    def mix_block(
        self, rows: np.ndarray, start: int, stop: int, out: np.ndarray
    ) -> None:
        """One output block of ``W @ rows``: ``out[start:stop] = W[start:stop] @ rows``.

        This is exactly the loop body of :meth:`mix_rows_blocked`, exposed
        so a caller (the :class:`~repro.sharding.RoundScheduler`) can run
        independent output blocks concurrently: each call reads all of
        ``rows`` but writes only its own disjoint ``out`` slice, so the
        parallel schedule is bit-identical to the serial one.
        """
        rows = self._check_rows(rows)
        matrix = self._matrix_for(rows.dtype)
        block = matrix[start:stop]
        if self.format == "csr":
            out[start:stop] = block @ rows
        else:
            out[start:stop] = np.einsum("ij,jk->ik", block, rows)

    def apply_mixed(
        self,
        rows: np.ndarray,
        block_rows: Optional[int] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``W @ rows`` for float32 state with float64 accumulation.

        The mixed-precision gossip kernel: state stays float32 (half the
        memory), but each output row is accumulated in float64 so repeated
        gossip does not compound single-precision rounding.  The CSR path
        gathers only the block's referenced input rows
        (``rows[block.indices]``, ~nnz_block rows) and upcasts *those* to
        float64 — never the whole fleet — then segment-reduces per output
        row; the result is rounded back to float32.  No bitwise guarantee is
        made against :meth:`apply` (the segmented reduction may reorder
        sums); accuracy is pinned by the precision tests instead.
        """
        rows = np.asarray(rows, dtype=np.float32)
        if rows.ndim != 2 or rows.shape[0] != self.num_agents:
            raise ValueError(
                f"expected a ({self.num_agents}, d) stack of agent rows, "
                f"got shape {rows.shape}"
            )
        n = self.num_agents
        if block_rows is None:
            block_rows = n
        if block_rows < 1:
            raise ValueError("block_rows must be a positive integer")
        if out is None:
            out = np.empty_like(rows)
        elif out.shape != rows.shape or out.dtype != np.float32:
            raise ValueError("out buffer must be a float32 array of matching shape")
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            if self.format == "csr":
                block = self.matrix[start:stop]
                if block.nnz == 0:
                    out[start:stop] = 0.0
                    continue
                contrib = block.data[:, None] * rows[block.indices].astype(np.float64)
                counts = np.diff(block.indptr)
                if counts.all():
                    acc = np.add.reduceat(contrib, block.indptr[:-1], axis=0)
                else:
                    # reduceat mishandles empty segments; scatter-add instead.
                    acc = np.zeros((stop - start, rows.shape[1]), dtype=np.float64)
                    np.add.at(
                        acc,
                        np.repeat(np.arange(stop - start), counts),
                        contrib,
                    )
            else:
                acc = np.einsum("ij,jk->ik", self.matrix[start:stop], rows)
            out[start:stop] = acc.astype(np.float32)
        return out

    def toarray(self) -> np.ndarray:
        """The matrix as a dense ndarray (converts CSR; entries are preserved exactly)."""
        if self.format == "csr":
            return self.matrix.toarray()
        return self.matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MixingOperator(format={self.format!r}, num_agents={self.num_agents}, "
            f"nnz={self.nnz})"
        )
