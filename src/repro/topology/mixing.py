"""Doubly stochastic mixing matrices and their spectral diagnostics.

Assumption 3 of the paper requires ``W`` to be symmetric doubly stochastic
with ``lambda_1(W) = 1`` and ``max(|lambda_2|, |lambda_M|) <= sqrt(rho) < 1``.
Metropolis–Hastings weights satisfy these conditions for any connected
undirected graph, which is why they are the default here.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

__all__ = [
    "metropolis_hastings_weights",
    "uniform_neighbor_weights",
    "is_symmetric",
    "is_doubly_stochastic",
    "second_largest_eigenvalue",
    "spectral_gap",
    "validate_mixing_matrix",
]

_TOLERANCE = 1e-9


def metropolis_hastings_weights(graph: nx.Graph) -> np.ndarray:
    """Metropolis–Hastings mixing matrix for an undirected graph.

    ``w_{ij} = 1 / (1 + max(deg_i, deg_j))`` for each edge ``(i, j)``, zero for
    non-edges, and ``w_{ii} = 1 - sum_j w_{ij}``.  The result is symmetric,
    doubly stochastic and has strictly positive diagonal, so every agent's
    neighbourhood ``M_i`` includes itself as the paper assumes.
    """
    nodes = sorted(graph.nodes())
    index = {node: k for k, node in enumerate(nodes)}
    m = len(nodes)
    w = np.zeros((m, m), dtype=np.float64)
    degrees = {node: graph.degree[node] for node in nodes}
    for u, v in graph.edges():
        if u == v:
            continue
        weight = 1.0 / (1.0 + max(degrees[u], degrees[v]))
        w[index[u], index[v]] = weight
        w[index[v], index[u]] = weight
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


def uniform_neighbor_weights(graph: nx.Graph) -> np.ndarray:
    """Uniform averaging over the *regular* closed neighbourhood.

    ``w_{ij} = 1 / (d_max + 1)`` for each edge where ``d_max`` is the maximum
    degree, and the remaining mass goes to the diagonal.  Like
    Metropolis–Hastings this is symmetric and doubly stochastic for any
    graph; on regular graphs (rings, complete graphs) it equals uniform
    neighbourhood averaging.
    """
    nodes = sorted(graph.nodes())
    index = {node: k for k, node in enumerate(nodes)}
    m = len(nodes)
    if m == 0:
        return np.zeros((0, 0), dtype=np.float64)
    d_max = max((graph.degree[n] for n in nodes), default=0)
    share = 1.0 / (d_max + 1.0)
    w = np.zeros((m, m), dtype=np.float64)
    for u, v in graph.edges():
        if u == v:
            continue
        w[index[u], index[v]] = share
        w[index[v], index[u]] = share
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


def is_symmetric(matrix: np.ndarray, tol: float = _TOLERANCE) -> bool:
    """True if the matrix equals its transpose within tolerance."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return bool(np.allclose(matrix, matrix.T, atol=tol))


def is_doubly_stochastic(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True if all entries are non-negative and all rows and columns sum to 1."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if (matrix < -tol).any():
        return False
    ones = np.ones(matrix.shape[0])
    return bool(
        np.allclose(matrix.sum(axis=0), ones, atol=tol)
        and np.allclose(matrix.sum(axis=1), ones, atol=tol)
    )


def second_largest_eigenvalue(matrix: np.ndarray) -> float:
    """``max(|lambda_2|, |lambda_M|)`` for a symmetric stochastic matrix.

    For the mixing matrices used here this equals ``sqrt(rho)`` in
    Assumption 3.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    eigenvalues = np.linalg.eigvalsh(matrix)
    # eigvalsh returns ascending order; the largest should be ~1.
    sorted_by_magnitude = np.sort(np.abs(eigenvalues))[::-1]
    if sorted_by_magnitude.size < 2:
        return 0.0
    return float(sorted_by_magnitude[1])


def spectral_gap(matrix: np.ndarray) -> float:
    """``1 - max(|lambda_2|, |lambda_M|)``; larger gap means faster consensus."""
    return float(1.0 - second_largest_eigenvalue(matrix))


def validate_mixing_matrix(matrix: np.ndarray, require_contraction: bool = False) -> None:
    """Raise ``ValueError`` unless the matrix satisfies Assumption 3's structure.

    ``require_contraction`` additionally demands ``sqrt(rho) < 1`` (strict),
    which holds for every connected graph with positive self-weights but can
    be violated by, e.g., a disconnected graph or a bipartite graph with zero
    diagonal.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("mixing matrix must be square")
    if not is_symmetric(matrix):
        raise ValueError("mixing matrix must be symmetric")
    if not is_doubly_stochastic(matrix):
        raise ValueError("mixing matrix must be doubly stochastic with non-negative entries")
    if require_contraction and second_largest_eigenvalue(matrix) >= 1.0 - 1e-12:
        raise ValueError("mixing matrix must have spectral gap > 0 (connected topology)")
