"""Doubly stochastic mixing matrices and their spectral diagnostics.

Notation (matching the paper's Sec. III-A / Assumption 3): the communication
graph has ``M`` agents; ``W = (omega_{ij})`` is the ``(M, M)`` mixing matrix
whose entry ``omega_{ij}`` weights the message agent ``i`` receives from
agent ``j`` during gossip averaging (``x_i <- sum_j omega_{ij} x_j``,
eqs. 24–25); ``M_i = {j : omega_{ij} > 0}`` is agent ``i``'s closed
neighbourhood; ``lambda_1 >= lambda_2 >= ... >= lambda_M`` are the
eigenvalues of ``W``.

Assumption 3 requires two structural properties and one spectral one:

* **symmetry** — ``W = W^T`` (undirected communication, equal weights both
  ways);
* **double stochasticity** — non-negative entries with every row *and*
  column summing to 1, so gossip preserves the network average and every
  agent's contribution has equal total influence;
* **contraction** — ``lambda_1(W) = 1`` with
  ``max(|lambda_2|, |lambda_M|) <= sqrt(rho) < 1``, i.e. a strictly positive
  spectral gap.  This is what makes repeated gossip shrink the consensus
  distance geometrically (Lemma 6) and is equivalent to the graph being
  connected and ``W`` not flipping sign on a bipartition (guaranteed here by
  strictly positive diagonals).

Symmetry and double stochasticity are *structural* requirements checked by
:func:`validate_mixing_matrix` unconditionally; the contraction property is
optional there (``require_contraction=True``) because a disconnected or
zero-diagonal-bipartite ``W`` is still a valid averaging operator, it just
does not converge to consensus.  Metropolis–Hastings weights
(:func:`metropolis_hastings_weights`) satisfy all three conditions for any
connected undirected graph, which is why they are the default.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

__all__ = [
    "metropolis_hastings_weights",
    "uniform_neighbor_weights",
    "is_symmetric",
    "is_doubly_stochastic",
    "second_largest_eigenvalue",
    "spectral_gap",
    "validate_mixing_matrix",
]

_TOLERANCE = 1e-9


def metropolis_hastings_weights(graph: nx.Graph) -> np.ndarray:
    """Metropolis–Hastings mixing matrix for an undirected graph.

    ``w_{ij} = 1 / (1 + max(deg_i, deg_j))`` for each edge ``(i, j)``, zero for
    non-edges, and ``w_{ii} = 1 - sum_j w_{ij}``.  The result is symmetric,
    doubly stochastic and has strictly positive diagonal, so every agent's
    neighbourhood ``M_i`` includes itself as the paper assumes.
    """
    nodes = sorted(graph.nodes())
    index = {node: k for k, node in enumerate(nodes)}
    m = len(nodes)
    w = np.zeros((m, m), dtype=np.float64)
    degrees = {node: graph.degree[node] for node in nodes}
    for u, v in graph.edges():
        if u == v:
            continue
        weight = 1.0 / (1.0 + max(degrees[u], degrees[v]))
        w[index[u], index[v]] = weight
        w[index[v], index[u]] = weight
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


def uniform_neighbor_weights(graph: nx.Graph) -> np.ndarray:
    """Uniform averaging over the *regular* closed neighbourhood.

    ``w_{ij} = 1 / (d_max + 1)`` for each edge where ``d_max`` is the maximum
    degree, and the remaining mass goes to the diagonal.  Like
    Metropolis–Hastings this is symmetric and doubly stochastic for any
    graph; on regular graphs (rings, complete graphs) it equals uniform
    neighbourhood averaging.
    """
    nodes = sorted(graph.nodes())
    index = {node: k for k, node in enumerate(nodes)}
    m = len(nodes)
    if m == 0:
        return np.zeros((0, 0), dtype=np.float64)
    d_max = max((graph.degree[n] for n in nodes), default=0)
    share = 1.0 / (d_max + 1.0)
    w = np.zeros((m, m), dtype=np.float64)
    for u, v in graph.edges():
        if u == v:
            continue
        w[index[u], index[v]] = share
        w[index[v], index[u]] = share
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


def is_symmetric(matrix: np.ndarray, tol: float = _TOLERANCE) -> bool:
    """True if the matrix equals its transpose within tolerance."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return bool(np.allclose(matrix, matrix.T, atol=tol))


def is_doubly_stochastic(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True if all entries are non-negative and all rows and columns sum to 1."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if (matrix < -tol).any():
        return False
    ones = np.ones(matrix.shape[0])
    return bool(
        np.allclose(matrix.sum(axis=0), ones, atol=tol)
        and np.allclose(matrix.sum(axis=1), ones, atol=tol)
    )


def second_largest_eigenvalue(matrix: np.ndarray) -> float:
    """``max(|lambda_2|, |lambda_M|)`` for a symmetric stochastic matrix.

    For the mixing matrices used here this equals ``sqrt(rho)`` in
    Assumption 3: the contraction factor by which one gossip step shrinks
    the disagreement component (everything orthogonal to the consensus
    direction ``1``).  Values close to 0 mean near-instant consensus (e.g.
    the complete graph's ``W = 11^T / M``); values close to 1 mean slow
    mixing (long rings).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    eigenvalues = np.linalg.eigvalsh(matrix)
    # eigvalsh returns ascending order; the largest should be ~1.
    sorted_by_magnitude = np.sort(np.abs(eigenvalues))[::-1]
    if sorted_by_magnitude.size < 2:
        return 0.0
    return float(sorted_by_magnitude[1])


def spectral_gap(matrix: np.ndarray) -> float:
    """``1 - max(|lambda_2|, |lambda_M|)`` = ``1 - sqrt(rho)``.

    Larger gap means faster consensus; this is the quantity that enters the
    denominator of the paper's convergence bound (Theorem 2).
    """
    return float(1.0 - second_largest_eigenvalue(matrix))


def validate_mixing_matrix(matrix: np.ndarray, require_contraction: bool = False) -> None:
    """Raise ``ValueError`` unless the matrix satisfies Assumption 3's structure.

    Checks, in order: squareness, symmetry (``W = W^T``) and double
    stochasticity (non-negative entries, rows and columns summing to 1).
    These are the properties gossip averaging relies on — without them the
    ``W @ X`` step would not preserve the network-average model, and the
    loop and vectorized engines could silently disagree.
    :class:`~repro.topology.graphs.Topology` validates at construction and
    :class:`~repro.core.base.DecentralizedAlgorithm` re-validates at
    algorithm construction, so a matrix mutated in between fails fast.

    ``require_contraction`` additionally demands ``sqrt(rho) < 1`` (strict
    positive spectral gap, the third part of Assumption 3), which holds for
    every connected graph with positive self-weights but can be violated by,
    e.g., a disconnected graph or a bipartite graph with zero diagonal.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("mixing matrix must be square")
    if not is_symmetric(matrix):
        raise ValueError("mixing matrix must be symmetric")
    if not is_doubly_stochastic(matrix):
        raise ValueError("mixing matrix must be doubly stochastic with non-negative entries")
    if require_contraction and second_largest_eigenvalue(matrix) >= 1.0 - 1e-12:
        raise ValueError("mixing matrix must have spectral gap > 0 (connected topology)")
