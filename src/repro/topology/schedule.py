"""Time-varying communication topologies: schedules, churn and stragglers.

The algorithms in :mod:`repro.core` were originally analysed on one fixed
graph, but real decentralized fleets rewire, lose agents and straggle.  A
:class:`TopologySchedule` turns the topology from a constructor-time constant
into a *per-round provider*: the engine asks ``schedule.topology_at(t)`` /
``schedule.operator_at(t)`` at the start of round ``t`` (0-based) and mixes
with whatever graph the schedule prescribes for that round.

Every per-round snapshot is a full ``Topology`` on all ``N`` constructed
agents.  Agents that are inactive for the round (departed through churn, or
masked as stragglers) appear as **isolated nodes whose mixing row is the
identity** (``w_ii = 1``): gossip leaves their parameters untouched, they
have no neighbours (so nobody sends to or receives from them), and the
Metropolis–Hastings weights of the surviving subgraph renormalise the
remaining agents' rows — the snapshot matrix therefore stays symmetric and
doubly stochastic, so one round of dynamic gossip still preserves the
average over *active* agents and Assumption 3's structure holds row by row.

Four dynamic mechanisms are provided, freely composable through
:class:`DynamicTopologySchedule` (or its convenience constructors):

* **periodic rewiring** — every ``rewire_every`` rounds the base graph's
  node labels are re-permuted with a fresh seed (epoch 0 keeps the base
  graph verbatim), preserving the degree structure and connectivity while
  changing who talks to whom;
* **edge failure / recovery** — a per-edge Markov chain: each up edge fails
  with probability ``edge_failure_rate`` per round, each failed edge
  recovers with probability ``edge_recovery_rate``;
* **agent churn** — each active agent leaves with probability
  ``churn_rate`` per round and each departed agent rejoins with probability
  ``rejoin_rate`` (``min_active`` is a participation floor: neither churn
  nor the straggler draw takes a round below it);
* **straggler masks** — each round, ``floor(straggler_fraction * active)``
  of the active agents are sampled as stragglers: too slow to contribute,
  they are zeroed out of the round's mixing exactly like departed agents,
  but only for that one round.

The base topology's weighting scheme is preserved wherever a weighting
exists to preserve: a round with no deviation at all (epoch 0, no failed
edges, everyone active) reuses the base ``Topology`` object itself, and a
*pure rewire* — a node relabelling — permutes the base mixing matrix
(``w'_{perm(u), perm(v)} = w_{uv}``), so custom or uniform-neighbour
weights survive epoch changes verbatim.  Only rounds that actually lose
agents or edges rebuild the surviving subgraph's weights with
Metropolis–Hastings (the scheme that stays symmetric and doubly stochastic
for any subgraph).

Snapshots are built lazily and memoised in an LRU cache keyed by the round's
*structure* (rewire epoch, failed edges, active mask), so a schedule that
holds the graph constant for 50 rounds pays Metropolis–Hastings construction
and validation once, not 50 times — and the per-round
:class:`~repro.topology.mixing.MixingOperator` rides on each cached
``Topology``'s own operator cache.

Round-state evolution is deterministic in the schedule's seed: each round's
draws come from a ``(seed, round)``-derived generator, so the churn/failure
Markov chain is a pure function of the previous state and any state can be
recomputed exactly.  A schedule shared by several algorithm instances — as
:func:`repro.experiments.harness.run_comparison` does — therefore serves
every instance the identical sequence of graphs, and memory stays bounded
over arbitrarily long runs (a small LRU of recent states plus sparse
permanent checkpoints, rather than one retained state per round).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.topology.graphs import Topology
from repro.topology.mixing import (
    MixingMatrix,
    MixingOperator,
    metropolis_hastings_weights,
    preferred_mixing_format,
)

__all__ = [
    "TopologyEvent",
    "TopologySchedule",
    "StaticSchedule",
    "DynamicTopologySchedule",
    "ShiftOneSchedule",
    "periodic_rewiring_schedule",
    "edge_failure_schedule",
    "churn_schedule",
    "straggler_schedule",
    "schedule_from_dynamics",
    "validate_dynamics",
    "DYNAMICS_KEYS",
]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class TopologyEvent:
    """One discrete change the schedule applied at the start of a round.

    ``kind`` is one of ``"rewire"``, ``"edge_failure"``, ``"edge_recovery"``,
    ``"leave"``, ``"join"``, ``"straggle"``; ``detail`` carries the affected
    epoch / edge / agents.  ``round`` is the schedule's 0-based round index
    (the engine's ``round_index``); the runner renumbers to the 1-based
    round numbering of :class:`~repro.simulation.metrics.RoundRecord` when
    it stores events in the training history.
    """

    round: int
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for :class:`~repro.simulation.metrics.RoundRecord`."""
        return {"round": self.round, "kind": self.kind, **self.detail}


class TopologySchedule:
    """Per-round provider of communication topologies (base class).

    Subclasses implement :meth:`_key_at` (a hashable signature of round
    ``t``'s graph structure), :meth:`_build` (construct the ``Topology`` for
    a signature), :meth:`active_mask_at` and :meth:`events_at`; this base
    class supplies the LRU snapshot cache and the operator accessor.
    """

    #: True only for :class:`StaticSchedule`; lets the engine skip all
    #: per-round schedule work on the (bit-identical) legacy path.
    is_static: bool = False

    def __init__(self, base: Topology, cache_size: int = 32) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.base = base
        self.cache_size = int(cache_size)
        self._snapshots: "OrderedDict[Hashable, Topology]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def num_agents(self) -> int:
        """Number of constructed agents (constant: snapshots cover all ``N``)."""
        return self.base.num_agents

    # -- subclass interface --------------------------------------------
    def _key_at(self, round_index: int) -> Hashable:
        raise NotImplementedError

    def _build(self, key: Hashable) -> Topology:
        raise NotImplementedError

    def active_mask_at(self, round_index: int) -> np.ndarray:
        """Boolean ``(N,)`` mask of agents that participate in the round."""
        raise NotImplementedError

    def events_at(self, round_index: int) -> List[TopologyEvent]:
        """The discrete changes applied at the start of the round."""
        raise NotImplementedError

    # -- shared accessors ----------------------------------------------
    def topology_at(self, round_index: int) -> Topology:
        """The (cached) ``N``-agent topology snapshot for round ``round_index``."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        key = self._key_at(round_index)
        snapshot = self._snapshots.get(key)
        if snapshot is not None:
            self._hits += 1
            self._snapshots.move_to_end(key)
            return snapshot
        self._misses += 1
        snapshot = self._build(key)
        self._snapshots[key] = snapshot
        while len(self._snapshots) > self.cache_size:
            self._snapshots.popitem(last=False)
        return snapshot

    def operator_at(
        self, round_index: int, format: Optional[str] = None
    ) -> MixingOperator:
        """Round ``round_index``'s mixing matrix wrapped for the gossip engine.

        ``format`` follows :meth:`Topology.mixing_operator` (``None``/"auto",
        ``"dense"``, ``"sparse"``/``"csr"``).  Operators are cached per
        snapshot, so repeated graphs pay construction once.
        """
        return self.topology_at(round_index).mixing_operator(format)

    def cache_info(self) -> Dict[str, int]:
        """Snapshot-cache statistics (used by the micro-benchmarks and tests)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._snapshots),
            "capacity": self.cache_size,
        }

    def describe(self) -> Dict[str, object]:
        """Serialisable summary for experiment metadata."""
        return {"kind": type(self).__name__, "base": self.base.name}


class StaticSchedule(TopologySchedule):
    """The backward-compatible wrapper: one fixed graph, every agent active.

    ``topology_at``/``operator_at`` return the *same objects* the engine
    would have used before schedules existed, so a run constructed with a
    static schedule is bit-identical to one constructed with the bare
    ``Topology``.
    """

    is_static = True

    def __init__(self, base: Topology) -> None:
        super().__init__(base, cache_size=1)
        self._all_active = np.ones(base.num_agents, dtype=bool)

    def topology_at(self, round_index: int) -> Topology:
        return self.base

    def operator_at(
        self, round_index: int, format: Optional[str] = None
    ) -> MixingOperator:
        return self.base.mixing_operator(format)

    def active_mask_at(self, round_index: int) -> np.ndarray:
        return self._all_active

    def events_at(self, round_index: int) -> List[TopologyEvent]:
        return []


@dataclass
class _RoundState:
    """Materialised dynamics for one round (memoised in round order)."""

    epoch: int
    failed_edges: FrozenSet[Edge]
    member_mask: np.ndarray  # churn state: True = agent is in the fleet
    straggler_mask: np.ndarray  # True = active member too slow this round
    events: List[TopologyEvent]
    active_mask: np.ndarray = field(init=False)  # member & not straggling
    key: Hashable = field(init=False)  # snapshot-cache signature

    def __post_init__(self) -> None:
        self.active_mask = self.member_mask & ~self.straggler_mask
        self.key = (self.epoch, self.failed_edges, self.active_mask.tobytes())


class DynamicTopologySchedule(TopologySchedule):
    """The workhorse schedule: rewiring, edge failures, churn and stragglers.

    All four mechanisms compose; disable any of them by leaving its rate at
    the default.  ``seed`` makes the whole trajectory of graphs
    deterministic.  See the module docstring for the semantics of each
    mechanism and of inactive agents.
    """

    def __init__(
        self,
        base: Topology,
        rewire_every: Optional[int] = None,
        edge_failure_rate: float = 0.0,
        edge_recovery_rate: float = 0.5,
        churn_rate: float = 0.0,
        rejoin_rate: float = 0.5,
        straggler_fraction: float = 0.0,
        min_active: int = 1,
        seed: int = 0,
        cache_size: int = 32,
    ) -> None:
        super().__init__(base, cache_size=cache_size)
        _validate_dynamics_values(
            rewire_every=rewire_every,
            edge_failure_rate=edge_failure_rate,
            edge_recovery_rate=edge_recovery_rate,
            churn_rate=churn_rate,
            rejoin_rate=rejoin_rate,
            straggler_fraction=straggler_fraction,
            min_active=min_active,
        )
        if min_active > base.num_agents:
            raise ValueError("min_active must lie in [1, num_agents]")
        self.rewire_every = rewire_every
        self.edge_failure_rate = float(edge_failure_rate)
        self.edge_recovery_rate = float(edge_recovery_rate)
        self.churn_rate = float(churn_rate)
        self.rejoin_rate = float(rejoin_rate)
        self.straggler_fraction = float(straggler_fraction)
        self.min_active = int(min_active)
        self.seed = int(seed)
        self._base_edges: List[Edge] = [
            (min(u, v), max(u, v)) for u, v in base.edges()
        ]
        # Round ``t``'s randomness comes from a generator derived from
        # ``(seed, t)``, so the Markov transition ``state_{t-1} -> state_t``
        # is a pure function and any round's state can be recomputed from
        # any earlier one.  That keeps memory bounded over arbitrarily long
        # runs: a small LRU of recent states serves the engine's sequential
        # access (and a second algorithm replaying the same schedule), and
        # sparse permanent checkpoints cap the recompute distance for
        # arbitrary access patterns.
        self._recent_states: "OrderedDict[int, _RoundState]" = OrderedDict()
        self._recent_capacity = 512
        self._checkpoints: Dict[int, _RoundState] = {}
        self._checkpoint_every = 256
        self._epoch_edges: "OrderedDict[int, List[Edge]]" = OrderedDict()
        self._epoch_cache_capacity = 8

    # -- epoch graphs ---------------------------------------------------
    def _epoch_of(self, round_index: int) -> int:
        if self.rewire_every is None:
            return 0
        return round_index // self.rewire_every

    def _permutation_for_epoch(self, epoch: int) -> np.ndarray:
        """Node-label permutation of the epoch (identity for epoch 0)."""
        if epoch == 0:
            return np.arange(self.num_agents)
        return np.random.default_rng([self.seed, 0x5EED, epoch]).permutation(
            self.num_agents
        )

    def _edges_for_epoch(self, epoch: int) -> List[Edge]:
        """The base graph's edge list under the epoch's label permutation.

        A pure function of ``(seed, epoch)``, memoised in a small LRU — old
        epochs are recomputable, so a long run never accumulates every
        epoch's edge list.
        """
        edges = self._epoch_edges.get(epoch)
        if edges is not None:
            self._epoch_edges.move_to_end(epoch)
            return edges
        if epoch == 0:
            edges = list(self._base_edges)
        else:
            perm = self._permutation_for_epoch(epoch)
            edges = [
                (min(int(perm[u]), int(perm[v])), max(int(perm[u]), int(perm[v])))
                for u, v in self._base_edges
            ]
        self._epoch_edges[epoch] = edges
        while len(self._epoch_edges) > self._epoch_cache_capacity:
            self._epoch_edges.popitem(last=False)
        return edges

    # -- round-state chain ---------------------------------------------
    def _state_at(self, round_index: int) -> _RoundState:
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        state = self._recent_states.get(round_index)
        if state is not None:
            self._recent_states.move_to_end(round_index)
            return state
        state = self._checkpoints.get(round_index)
        if state is not None:
            return state
        # Recompute forward from the nearest memoised state at or below the
        # requested round (a permanent checkpoint, or a fresher LRU entry).
        anchor_round, anchor = -1, None
        checkpoint = (round_index // self._checkpoint_every) * self._checkpoint_every
        while checkpoint >= 0:
            if checkpoint in self._checkpoints:
                anchor_round, anchor = checkpoint, self._checkpoints[checkpoint]
                break
            checkpoint -= self._checkpoint_every
        for cached_round, cached in self._recent_states.items():
            if anchor_round < cached_round <= round_index:
                anchor_round, anchor = cached_round, cached
        for current_round in range(anchor_round + 1, round_index + 1):
            anchor = self._advance(current_round, anchor)
            self._remember(current_round, anchor)
        return anchor

    def _remember(self, round_index: int, state: _RoundState) -> None:
        if round_index % self._checkpoint_every == 0:
            self._checkpoints[round_index] = state
        self._recent_states[round_index] = state
        self._recent_states.move_to_end(round_index)
        while len(self._recent_states) > self._recent_capacity:
            self._recent_states.popitem(last=False)

    def _advance(
        self, round_index: int, previous: Optional[_RoundState]
    ) -> _RoundState:
        """Compute round ``round_index``'s state from its predecessor.

        A pure function of ``(previous, round_index)`` — the round's draws
        come from a ``(seed, round_index)``-derived generator — so states
        evicted from the caches can be recomputed exactly.
        """
        rng = np.random.default_rng([self.seed, 0xD1CE, round_index])
        n = self.num_agents
        events: List[TopologyEvent] = []
        if round_index == 0:
            epoch = 0
            failed: FrozenSet[Edge] = frozenset()
            members = np.ones(n, dtype=bool)
        else:
            epoch = self._epoch_of(round_index)
            failed = previous.failed_edges
            members = previous.member_mask.copy()
            if epoch != previous.epoch:
                # A rewire replaces the graph wholesale; stale per-edge
                # failure state does not carry over to the new edge set.
                failed = frozenset()
                events.append(
                    TopologyEvent(round_index, "rewire", {"epoch": epoch})
                )
            failed, edge_events = self._step_edges(round_index, epoch, failed, rng)
            events.extend(edge_events)
            members, churn_events = self._step_churn(round_index, members, rng)
            events.extend(churn_events)
        stragglers = self._draw_stragglers(round_index, members, rng)
        if stragglers.any():
            events.append(
                TopologyEvent(
                    round_index,
                    "straggle",
                    {"agents": [int(i) for i in np.flatnonzero(stragglers)]},
                )
            )
        return _RoundState(
            epoch=epoch,
            failed_edges=failed,
            member_mask=members,
            straggler_mask=stragglers,
            events=events,
        )

    def _step_edges(
        self,
        round_index: int,
        epoch: int,
        failed: FrozenSet[Edge],
        rng: np.random.Generator,
    ) -> Tuple[FrozenSet[Edge], List[TopologyEvent]]:
        events: List[TopologyEvent] = []
        if self.edge_failure_rate == 0.0 and not failed:
            return failed, events
        next_failed = set(failed)
        for edge in self._edges_for_epoch(epoch):
            if edge in failed:
                if rng.random() < self.edge_recovery_rate:
                    next_failed.discard(edge)
                    events.append(
                        TopologyEvent(round_index, "edge_recovery", {"edge": list(edge)})
                    )
            elif rng.random() < self.edge_failure_rate:
                next_failed.add(edge)
                events.append(
                    TopologyEvent(round_index, "edge_failure", {"edge": list(edge)})
                )
        return frozenset(next_failed), events

    def _step_churn(
        self, round_index: int, members: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, List[TopologyEvent]]:
        events: List[TopologyEvent] = []
        if self.churn_rate == 0.0 and members.all():
            return members, events
        draws = rng.random(self.num_agents)
        joined = (~members) & (draws < self.rejoin_rate)
        left = members & (draws < self.churn_rate)
        members = members & ~left | joined
        # Never let the fleet shrink below min_active: cancel this round's
        # departures (lowest agent id first) until the floor is met.
        if int(members.sum()) < self.min_active:
            for agent in np.flatnonzero(left):
                members[agent] = True
                left[agent] = False
                if int(members.sum()) >= self.min_active:
                    break
        for agent in np.flatnonzero(left):
            events.append(TopologyEvent(round_index, "leave", {"agent": int(agent)}))
        for agent in np.flatnonzero(joined):
            events.append(TopologyEvent(round_index, "join", {"agent": int(agent)}))
        return members, events

    def _draw_stragglers(
        self, round_index: int, members: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        stragglers = np.zeros(self.num_agents, dtype=bool)
        if self.straggler_fraction == 0.0:
            return stragglers
        active = np.flatnonzero(members)
        # min_active is a *participation* floor: the straggler draw never
        # masks the round below it, even when churn already sits at the
        # membership floor.
        count = min(
            int(self.straggler_fraction * len(active)),
            max(0, len(active) - self.min_active),
        )
        if count > 0:
            chosen = rng.choice(active, size=count, replace=False)
            stragglers[chosen] = True
        return stragglers

    # -- TopologySchedule interface -------------------------------------
    def _key_at(self, round_index: int) -> Hashable:
        return self._state_at(round_index).key

    def _build(self, key: Hashable) -> Topology:
        epoch, failed_edges, mask_bytes = key
        active = np.frombuffer(mask_bytes, dtype=bool)
        if not failed_edges and active.all():
            if epoch == 0:
                # The pristine snapshot *is* the base topology — same graph,
                # same mixing matrix (which need not be Metropolis–Hastings),
                # so a dynamic schedule's quiet rounds match the static run
                # exactly.
                return self.base
            # A pure rewire is a node relabelling, so the base's weighting
            # scheme survives verbatim: W' = P W P^T, i.e.
            # w'_{perm(u), perm(v)} = w_{uv}.  Only rounds that lose agents
            # or edges need the Metropolis–Hastings renormalisation below.
            perm = self._permutation_for_epoch(epoch)
            inverse = np.empty(self.num_agents, dtype=np.intp)
            inverse[perm] = np.arange(self.num_agents)
            base_w = self.base.mixing_matrix
            if sp.issparse(base_w):
                mixing: MixingMatrix = sp.csr_array(base_w[inverse][:, inverse])
            else:
                mixing = base_w[np.ix_(inverse, inverse)]
            graph = nx.Graph()
            graph.add_nodes_from(range(self.num_agents))
            graph.add_edges_from(self._edges_for_epoch(epoch))
            return Topology(
                graph=graph,
                mixing_matrix=mixing,
                name=f"{self.base.name}+dynamic",
                require_connected=False,
            )
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_agents))
        graph.add_edges_from(
            (u, v)
            for u, v in self._edges_for_epoch(epoch)
            if (u, v) not in failed_edges and active[u] and active[v]
        )
        nnz = 2 * graph.number_of_edges() + self.num_agents
        sparse = preferred_mixing_format(self.num_agents, nnz) == "csr"
        mixing = metropolis_hastings_weights(graph, sparse=sparse)
        return Topology(
            graph=graph,
            mixing_matrix=mixing,
            name=f"{self.base.name}+dynamic",
            require_connected=False,
        )

    def active_mask_at(self, round_index: int) -> np.ndarray:
        return self._state_at(round_index).active_mask

    def events_at(self, round_index: int) -> List[TopologyEvent]:
        return list(self._state_at(round_index).events)

    def describe(self) -> Dict[str, object]:
        return {
            "kind": type(self).__name__,
            "base": self.base.name,
            "rewire_every": self.rewire_every,
            "edge_failure_rate": self.edge_failure_rate,
            "edge_recovery_rate": self.edge_recovery_rate,
            "churn_rate": self.churn_rate,
            "rejoin_rate": self.rejoin_rate,
            "straggler_fraction": self.straggler_fraction,
            "min_active": self.min_active,
            "seed": self.seed,
        }


class ShiftOneSchedule(TopologySchedule):
    """Rotating perfect-matching gossip: one peer per agent per round.

    Implements the ``"shift_one"`` peer-selection mode of
    :class:`~repro.compression.config.CompressionConfig`, mirroring Bagua's
    low-precision decentralized algorithm: instead of exchanging with every
    topology neighbour, each agent pairs up with exactly one peer per round,
    and the pairing rotates so that over one period of ``N - 1`` rounds
    (``N`` rounds for odd fleets, where one agent sits each round out as the
    bye) every agent meets every other agent exactly once.  The round's
    mixing matrix is ``W = (I + P) / 2`` for the matching's permutation
    ``P`` — symmetric and doubly stochastic, with ``w_ii = 1`` for the bye
    agent.

    Pairings come from the round-robin tournament ("circle") construction
    and deliberately ignore the base graph's edge set — like Bagua, this
    mode assumes any pair of agents can reach each other.  Every agent is
    active in every round, so the mode composes with
    ``communication_interval`` but not with churn/straggler schedules.
    """

    def __init__(self, base: Topology, cache_size: Optional[int] = None) -> None:
        n_even = base.num_agents + (base.num_agents % 2)
        self._period = max(1, n_even - 1)
        if cache_size is None:
            # One period covers every distinct matching; cap the cache so a
            # huge fleet does not pin thousands of snapshots.
            cache_size = min(self._period, 128)
        super().__init__(base, cache_size=cache_size)
        self._n_even = n_even
        self._all_active = np.ones(base.num_agents, dtype=bool)

    @property
    def period(self) -> int:
        """Rounds until the pairing sequence repeats (``N - 1``, or ``N`` odd)."""
        return self._period

    def pairs_at(self, round_index: int) -> List[Edge]:
        """The round's matching as sorted ``(u, v)`` pairs (bye agent omitted).

        Circle method: agent 0 stays fixed while the others rotate one slot
        per round; pairing the rotated order front-to-back yields a perfect
        matching, and the ``period`` rotations enumerate all matchings of
        the round-robin tournament.  Odd fleets add a phantom agent whose
        partner gets the bye.
        """
        n = self._n_even
        rotation = int(round_index) % self._period
        others = list(range(1, n))
        rotated = others[rotation:] + others[:rotation]
        order = [0] + rotated
        pairs: List[Edge] = []
        for i in range(n // 2):
            u, v = order[i], order[n - 1 - i]
            if u < self.num_agents and v < self.num_agents:
                pairs.append((min(u, v), max(u, v)))
        return pairs

    def _key_at(self, round_index: int) -> Hashable:
        return int(round_index) % self._period

    def _build(self, key: Hashable) -> Topology:
        pairs = self.pairs_at(int(key))
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_agents))
        graph.add_edges_from(pairs)
        weights = np.zeros((self.num_agents, self.num_agents), dtype=np.float64)
        np.fill_diagonal(weights, 1.0)
        for u, v in pairs:
            weights[u, u] = 0.5
            weights[v, v] = 0.5
            weights[u, v] = 0.5
            weights[v, u] = 0.5
        nnz = 2 * len(pairs) + self.num_agents
        mixing: MixingMatrix = weights
        if preferred_mixing_format(self.num_agents, nnz) == "csr":
            mixing = sp.csr_array(weights)
        return Topology(
            graph=graph,
            mixing_matrix=mixing,
            name=f"{self.base.name}+shift_one",
            require_connected=False,
        )

    def active_mask_at(self, round_index: int) -> np.ndarray:
        return self._all_active

    def events_at(self, round_index: int) -> List[TopologyEvent]:
        return []

    def describe(self) -> Dict[str, object]:
        return {
            "kind": type(self).__name__,
            "base": self.base.name,
            "period": self._period,
        }


def periodic_rewiring_schedule(
    base: Topology, rewire_every: int, seed: int = 0, cache_size: int = 32
) -> DynamicTopologySchedule:
    """Re-permute the base graph's labels every ``rewire_every`` rounds."""
    return DynamicTopologySchedule(
        base, rewire_every=rewire_every, seed=seed, cache_size=cache_size
    )


def edge_failure_schedule(
    base: Topology,
    failure_rate: float,
    recovery_rate: float = 0.5,
    seed: int = 0,
    cache_size: int = 32,
) -> DynamicTopologySchedule:
    """Per-edge Markov failures: links go down and come back round to round."""
    return DynamicTopologySchedule(
        base,
        edge_failure_rate=failure_rate,
        edge_recovery_rate=recovery_rate,
        seed=seed,
        cache_size=cache_size,
    )


def churn_schedule(
    base: Topology,
    churn_rate: float,
    rejoin_rate: float = 0.5,
    min_active: int = 1,
    seed: int = 0,
    cache_size: int = 32,
) -> DynamicTopologySchedule:
    """Agents leave and rejoin the fleet round to round."""
    return DynamicTopologySchedule(
        base,
        churn_rate=churn_rate,
        rejoin_rate=rejoin_rate,
        min_active=min_active,
        seed=seed,
        cache_size=cache_size,
    )


def straggler_schedule(
    base: Topology, straggler_fraction: float, seed: int = 0, cache_size: int = 32
) -> DynamicTopologySchedule:
    """Mask a fresh fraction of the fleet out of the mixing every round."""
    return DynamicTopologySchedule(
        base, straggler_fraction=straggler_fraction, seed=seed, cache_size=cache_size
    )


#: Keys accepted in an :class:`~repro.experiments.specs.ExperimentSpec`
#: ``dynamics`` mapping (and by :func:`schedule_from_dynamics`).
DYNAMICS_KEYS = frozenset(
    {
        "rewire_every",
        "edge_failure_rate",
        "edge_recovery_rate",
        "churn_rate",
        "rejoin_rate",
        "straggler_fraction",
        "min_active",
        "seed",
    }
)


def _validate_dynamics_values(
    rewire_every: Optional[int] = None,
    edge_failure_rate: float = 0.0,
    edge_recovery_rate: float = 0.5,
    churn_rate: float = 0.0,
    rejoin_rate: float = 0.5,
    straggler_fraction: float = 0.0,
    min_active: int = 1,
    seed: int = 0,
) -> None:
    """Range checks shared by the constructor and :func:`validate_dynamics`.

    Everything except the base-dependent ``min_active <= num_agents`` bound,
    which only the constructor can check.
    """
    del seed  # any int is a valid seed; accepted so dict-splat works
    if rewire_every is not None and rewire_every < 1:
        raise ValueError("rewire_every must be a positive round count")
    for name, rate in (
        ("edge_failure_rate", edge_failure_rate),
        ("edge_recovery_rate", edge_recovery_rate),
        ("churn_rate", churn_rate),
        ("rejoin_rate", rejoin_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1]")
    if not 0.0 <= straggler_fraction < 1.0:
        raise ValueError("straggler_fraction must lie in [0, 1)")
    if min_active < 1:
        raise ValueError("min_active must lie in [1, num_agents]")


def validate_dynamics(
    dynamics: Optional[Dict[str, object]], num_agents: Optional[int] = None
) -> None:
    """Raise ``ValueError`` unless the mapping is a valid dynamics declaration.

    Checks both the vocabulary (keys must come from :data:`DYNAMICS_KEYS`)
    and the value ranges — including ``min_active <= num_agents`` when the
    caller knows the fleet size — so an invalid declaration fails at spec
    construction instead of deep in the harness after data generation.  The
    single source of truth shared by
    :class:`~repro.experiments.specs.ExperimentSpec` and
    :func:`schedule_from_dynamics`.
    """
    if not dynamics:
        return
    unknown = sorted(set(dynamics) - DYNAMICS_KEYS)
    if unknown:
        raise ValueError(
            f"unknown dynamics keys: {unknown}; expected a subset of "
            f"{sorted(DYNAMICS_KEYS)}"
        )
    _validate_dynamics_values(**dynamics)
    min_active = dynamics.get("min_active")
    if num_agents is not None and min_active is not None and min_active > num_agents:
        raise ValueError("min_active must lie in [1, num_agents]")


def schedule_from_dynamics(
    base: Topology,
    dynamics: Optional[Dict[str, object]],
    seed: int = 0,
) -> TopologySchedule:
    """Build a schedule from a declarative dynamics mapping.

    ``dynamics`` uses the :data:`DYNAMICS_KEYS` vocabulary, e.g.
    ``{"rewire_every": 50, "churn_rate": 0.01, "straggler_fraction": 0.1}``;
    an empty or ``None`` mapping yields the backward-compatible
    :class:`StaticSchedule`.  ``seed`` is the default when the mapping does
    not carry its own ``"seed"`` entry.
    """
    if not dynamics:
        return StaticSchedule(base)
    validate_dynamics(dynamics)
    kwargs = dict(dynamics)
    rewire_every = kwargs.pop("rewire_every", None)
    kwargs.setdefault("seed", seed)
    return DynamicTopologySchedule(
        base,
        rewire_every=None if rewire_every is None else int(rewire_every),
        **kwargs,
    )
