"""Tests for the Theorem 2 / Corollary 1 bound evaluation."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    ConvergenceConstants,
    corollary1_rate,
    learning_rate_interval,
    theorem2_bound,
)


@pytest.fixture
def constants():
    return ConvergenceConstants(
        smoothness=1.0, gradient_variance=0.5, heterogeneity=1.0, rho=0.25, omega_min=0.2
    )


class TestConstantsValidation:
    def test_valid(self, constants):
        assert constants.smoothness == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(smoothness=0.0, gradient_variance=1, heterogeneity=1, rho=0.5, omega_min=0.2),
            dict(smoothness=1.0, gradient_variance=-1, heterogeneity=1, rho=0.5, omega_min=0.2),
            dict(smoothness=1.0, gradient_variance=1, heterogeneity=1, rho=1.0, omega_min=0.2),
            dict(smoothness=1.0, gradient_variance=1, heterogeneity=1, rho=0.5, omega_min=0.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ConvergenceConstants(**kwargs)


class TestLearningRateInterval:
    def test_interval_structure(self, constants):
        lower, upper = learning_rate_interval(constants, momentum=0.9)
        assert lower > 0
        assert upper > 0

    def test_window_is_empty_as_transcribed_from_the_paper(self, constants):
        """Reproduction finding: eq. 31/85's window is empty for every momentum.

        The lower bound (1-alpha)^2 / alpha (from requiring m1 > 0) always
        exceeds the upper bound derived from eq. 84 — one can show
        upper <= lower / 2 analytically.  We record the observation here and
        in EXPERIMENTS.md; the bound evaluation itself only enforces m1 > 0.
        """
        for momentum in (0.05, 0.5, 0.9, 0.97, 0.999):
            lower, upper = learning_rate_interval(constants, momentum=momentum)
            assert upper <= lower

    def test_low_momentum_gives_empty_window(self, constants):
        # with small alpha the lower bound (1-alpha)^2/alpha explodes
        lower, upper = learning_rate_interval(constants, momentum=0.05)
        assert lower > upper

    def test_invalid_momentum(self, constants):
        with pytest.raises(ValueError):
            learning_rate_interval(constants, momentum=0.0)
        with pytest.raises(ValueError):
            learning_rate_interval(constants, momentum=1.0)


class TestTheorem2Bound:
    def valid_kwargs(self, constants, **overrides):
        kwargs = dict(
            constants=constants,
            learning_rate=0.02,
            momentum=0.97,
            num_rounds=100,
            num_agents=10,
            clip_threshold=1.0,
            sigma=0.1,
            dimension=100,
            initial_gap=5.0,
        )
        kwargs.update(overrides)
        return kwargs

    def test_positive_and_finite(self, constants):
        bound = theorem2_bound(**self.valid_kwargs(constants))
        assert np.isfinite(bound)
        assert bound > 0

    def test_monotone_in_sigma(self, constants):
        low = theorem2_bound(**self.valid_kwargs(constants, sigma=0.05))
        high = theorem2_bound(**self.valid_kwargs(constants, sigma=0.5))
        assert high > low

    def test_monotone_in_initial_gap(self, constants):
        small = theorem2_bound(**self.valid_kwargs(constants, initial_gap=1.0))
        large = theorem2_bound(**self.valid_kwargs(constants, initial_gap=50.0))
        assert large > small

    def test_first_term_vanishes_with_rounds(self, constants):
        short = theorem2_bound(**self.valid_kwargs(constants, num_rounds=10))
        long = theorem2_bound(**self.valid_kwargs(constants, num_rounds=100000))
        assert long < short

    def test_learning_rate_below_window_rejected(self, constants):
        with pytest.raises(ValueError):
            theorem2_bound(**self.valid_kwargs(constants, learning_rate=1e-6))

    def test_invalid_arguments(self, constants):
        with pytest.raises(ValueError):
            theorem2_bound(**self.valid_kwargs(constants, num_rounds=0))
        with pytest.raises(ValueError):
            theorem2_bound(**self.valid_kwargs(constants, clip_threshold=0.0))
        with pytest.raises(ValueError):
            theorem2_bound(**self.valid_kwargs(constants, sigma=-0.1))


class TestCorollary1:
    def test_decreases_with_rounds(self):
        assert corollary1_rate(10_000, 10, 0.1, 100) < corollary1_rate(100, 10, 0.1, 100)

    def test_increases_with_noise(self):
        assert corollary1_rate(1000, 10, 1.0, 100) > corollary1_rate(1000, 10, 0.1, 100)

    def test_roughly_one_over_sqrt_t_scaling(self):
        r1 = corollary1_rate(10_000, 10, 0.0, 100)
        r2 = corollary1_rate(40_000, 10, 0.0, 100)
        # quadrupling T should roughly halve the bound when the 1/T terms are negligible
        assert r2 == pytest.approx(r1 / 2, rel=0.15)

    def test_more_agents_smaller_bound(self):
        assert corollary1_rate(1000, 100, 0.1, 100) < corollary1_rate(1000, 2, 0.1, 100)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            corollary1_rate(0, 10, 0.1, 100)
        with pytest.raises(ValueError):
            corollary1_rate(100, 10, -0.1, 100)
        with pytest.raises(ValueError):
            corollary1_rate(100, 10, 0.1, 100, constant=0.0)
