"""Tests for the Theorem 1 analysis wrapper."""

import numpy as np
import pytest

from repro.analysis.privacy_bounds import theorem1_sigma_bound
from repro.topology.graphs import bipartite_graph, fully_connected_graph, ring_graph


class TestTheorem1Analysis:
    def test_scalar_output_by_default(self):
        bound = theorem1_sigma_bound(fully_connected_graph(6), 0.3, 1e-5, 1.0)
        assert isinstance(bound, float)
        assert bound > 0

    def test_per_agent_output(self):
        topo = ring_graph(6)
        bounds = theorem1_sigma_bound(topo, 0.3, 1e-5, 1.0, per_agent=True)
        assert isinstance(bounds, dict)
        assert set(bounds) == set(range(6))
        assert all(v > 0 for v in bounds.values())

    def test_ring_agents_symmetric(self):
        bounds = theorem1_sigma_bound(ring_graph(8), 0.3, 1e-5, 1.0, per_agent=True)
        values = list(bounds.values())
        np.testing.assert_allclose(values, values[0])

    def test_smaller_epsilon_larger_bound(self):
        topo = bipartite_graph(8)
        assert theorem1_sigma_bound(topo, 0.08, 1e-5, 1.0) > theorem1_sigma_bound(topo, 0.3, 1e-5, 1.0)

    def test_clip_threshold_scales_linearly(self):
        topo = fully_connected_graph(5)
        b1 = theorem1_sigma_bound(topo, 0.3, 1e-5, 1.0)
        b2 = theorem1_sigma_bound(topo, 0.3, 1e-5, 2.0)
        np.testing.assert_allclose(b2, 2 * b1)

    def test_explicit_phi_min(self):
        topo = fully_connected_graph(5)
        pessimistic = theorem1_sigma_bound(topo, 0.3, 1e-5, 1.0, phi_min=0.01)
        optimistic = theorem1_sigma_bound(topo, 0.3, 1e-5, 1.0, phi_min=1.0)
        assert pessimistic > optimistic
