"""Tests for the fleet-scale batched attack engines.

The load-bearing guarantee is bit-identity: one fleet run must equal the
sequential per-victim loop exactly, for every architecture — stacked models
through the batched engine, CNNs through the fallback — so a campaign can
switch between the two freely.
"""

import numpy as np
import pytest

from repro.attacks import (
    FleetInversionAttack,
    GradientInversionAttack,
    inversion_stream,
    membership_inference_attack,
    membership_inference_fleet,
    membership_losses_fleet,
    membership_stream,
    per_sample_losses,
)
from repro.data.dataset import Dataset
from repro.data.synthetic import make_classification_dataset
from repro.nn.batched import StackedSequential
from repro.nn.zoo import make_linear_classifier, make_mlp, make_mnist_cnn
from repro.privacy.calibration import gaussian_sigma
from repro.privacy.mechanisms import GaussianMechanism

NUM_VICTIMS = 5
BATCH = 3
FEATURES = 6
CLASSES = 3


def _victim_fleet(model, num_victims=NUM_VICTIMS, batch=BATCH, seed=0):
    """(observed (N, d), params (d,), inputs (N, B, F), labels (N, B))."""
    rng = np.random.default_rng(seed)
    params = rng.normal(size=model.num_params)
    inputs = rng.normal(size=(num_victims, batch, FEATURES))
    labels = rng.integers(0, CLASSES, size=(num_victims, batch))
    _, observed = StackedSequential(model).loss_and_gradients(
        np.broadcast_to(params, (num_victims, model.num_params)), inputs, labels
    )
    return observed, params, inputs, labels


@pytest.mark.parametrize(
    "factory",
    [
        lambda: make_linear_classifier(FEATURES, CLASSES, seed=0),
        lambda: make_mlp(FEATURES, CLASSES, hidden_sizes=(8,), seed=0),
    ],
    ids=["linear", "mlp"],
)
class TestFleetInversionBitIdentity:
    def test_matches_sequential_loop(self, factory):
        model = factory()
        observed, params, _, _ = _victim_fleet(model)
        fleet = FleetInversionAttack(model, num_classes=CLASSES, iterations=12, seed=3)
        batched = fleet.run(observed, params, BATCH, (FEATURES,))
        for victim in range(NUM_VICTIMS):
            single = GradientInversionAttack(
                model,
                num_classes=CLASSES,
                iterations=12,
                rng=inversion_stream(3, victim),
            ).run(observed[victim], params, BATCH, (FEATURES,))
            np.testing.assert_array_equal(
                batched.reconstructed_inputs[victim], single.reconstructed_inputs
            )
            np.testing.assert_array_equal(
                batched.inferred_labels[victim], single.inferred_labels
            )
            assert float(batched.matching_losses[victim]) == single.matching_loss

    def test_per_victim_params_match_sequential(self, factory):
        model = factory()
        observed, params, _, _ = _victim_fleet(model)
        per_victim = np.random.default_rng(9).normal(
            size=(NUM_VICTIMS, model.num_params)
        )
        fleet = FleetInversionAttack(model, num_classes=CLASSES, iterations=8, seed=1)
        batched = fleet.run(observed, per_victim, BATCH, (FEATURES,))
        for victim in range(NUM_VICTIMS):
            single = fleet.single_attack(victim).run(
                observed[victim], per_victim[victim], BATCH, (FEATURES,)
            )
            np.testing.assert_array_equal(
                batched.reconstructed_inputs[victim], single.reconstructed_inputs
            )


class TestFleetInversionFallback:
    def test_cnn_routes_through_sequential_attacks(self):
        model = make_mnist_cnn(num_classes=2, channels=(2, 3), image_size=8, seed=0)
        rng = np.random.default_rng(0)
        params = rng.normal(size=model.num_params) * 0.1
        inputs = rng.normal(size=(2, 2, 1, 8, 8))
        labels = rng.integers(0, 2, size=(2, 2))
        observed = np.stack(
            [
                model.loss_and_gradient(inputs[v], labels[v], params=params)[1]
                for v in range(2)
            ]
        )
        fleet = FleetInversionAttack(model, num_classes=2, iterations=2, seed=5)
        assert fleet._stacked is None
        batched = fleet.run(observed, params, 2, (1, 8, 8))
        for victim in range(2):
            single = GradientInversionAttack(
                model, num_classes=2, iterations=2, rng=inversion_stream(5, victim)
            ).run(observed[victim], params, 2, (1, 8, 8))
            np.testing.assert_array_equal(
                batched.reconstructed_inputs[victim], single.reconstructed_inputs
            )
            assert float(batched.matching_losses[victim]) == single.matching_loss


class TestFleetInversionValidation:
    def test_invalid_arguments(self):
        model = make_linear_classifier(FEATURES, CLASSES, seed=0)
        observed, params, _, _ = _victim_fleet(model)
        attack = FleetInversionAttack(model, num_classes=CLASSES, iterations=4)
        with pytest.raises(ValueError):
            FleetInversionAttack(model, num_classes=1)
        with pytest.raises(ValueError):
            FleetInversionAttack(model, num_classes=CLASSES, iterations=0)
        with pytest.raises(ValueError):
            attack.run(observed[:, :-1], params, BATCH, (FEATURES,))
        with pytest.raises(ValueError):
            attack.run(observed[0], params, BATCH, (FEATURES,))
        with pytest.raises(ValueError):
            attack.run(observed, params, 0, (FEATURES,))
        with pytest.raises(ValueError):
            attack.run(observed[:0], params, BATCH, (FEATURES,))
        with pytest.raises(ValueError):
            attack.run(observed, params[:-1], BATCH, (FEATURES,))
        with pytest.raises(ValueError):
            attack.run(observed, np.zeros((NUM_VICTIMS + 1, len(params))), BATCH, (FEATURES,))
        result = attack.run(observed, params, BATCH, (FEATURES,))
        with pytest.raises(ValueError):
            result.errors_against(np.zeros((NUM_VICTIMS + 1, BATCH, FEATURES)))


class TestFleetMembership:
    def _setup(self):
        model = make_mlp(FEATURES, CLASSES, hidden_sizes=(8,), seed=0)
        rng = np.random.default_rng(2)
        rows = rng.normal(size=(4, model.num_params))
        members = Dataset(
            rng.normal(size=(10, FEATURES)), rng.integers(0, CLASSES, size=10)
        )
        non_members = Dataset(
            rng.normal(size=(10, FEATURES)) + 0.3, rng.integers(0, CLASSES, size=10)
        )
        return model, rows, members, non_members

    def test_losses_match_per_row_calls_shared_dataset(self):
        model, rows, members, _ = self._setup()
        fleet = membership_losses_fleet(model, rows, members)
        for k in range(rows.shape[0]):
            np.testing.assert_array_equal(
                fleet[k], per_sample_losses(model, rows[k], members)
            )

    def test_losses_match_per_row_calls_per_row_datasets(self):
        model, rows, _, _ = self._setup()
        rng = np.random.default_rng(7)
        datasets = [
            Dataset(rng.normal(size=(6, FEATURES)), rng.integers(0, CLASSES, size=6))
            for _ in range(rows.shape[0])
        ]
        fleet = membership_losses_fleet(model, rows, datasets)
        for k in range(rows.shape[0]):
            np.testing.assert_array_equal(
                fleet[k], per_sample_losses(model, rows[k], datasets[k])
            )

    def test_fleet_attack_matches_sequential_attacks(self):
        model, rows, members, non_members = self._setup()
        fleet = membership_inference_fleet(model, rows, members, non_members, seed=11)
        assert len(fleet.results) == rows.shape[0]
        for k, result in enumerate(fleet.results):
            single = membership_inference_attack(
                model, rows[k], members, non_members, rng=membership_stream(11, k)
            )
            assert result.threshold == single.threshold
            assert result.advantage == single.advantage
            assert result.accuracy == single.accuracy
        assert fleet.mean_advantage == pytest.approx(fleet.advantages.mean())
        assert fleet.advantages.shape == (rows.shape[0],)

    def test_validation(self):
        model, rows, members, non_members = self._setup()
        with pytest.raises(ValueError):
            membership_losses_fleet(model, rows[0], members)
        with pytest.raises(ValueError):
            membership_losses_fleet(model, rows, [members])  # wrong count
        rng = np.random.default_rng(0)
        unequal = [
            Dataset(rng.normal(size=(3 + k, FEATURES)), rng.integers(0, CLASSES, size=3 + k))
            for k in range(rows.shape[0])
        ]
        with pytest.raises(ValueError):
            membership_losses_fleet(model, rows, unequal)
        tiny = Dataset(rng.normal(size=(3, FEATURES)), rng.integers(0, CLASSES, size=3))
        with pytest.raises(ValueError):
            membership_inference_fleet(model, rows, tiny, non_members)


class TestAttackUnderDPNoise:
    def test_inversion_error_grows_as_epsilon_shrinks(self):
        """End to end: tighter privacy budgets blunt the fleet attack."""
        data = make_classification_dataset(
            64, num_features=FEATURES, num_classes=CLASSES, cluster_std=0.5, seed=0
        )
        model = make_linear_classifier(FEATURES, CLASSES, seed=0)
        params = model.get_flat_params()
        num_victims, batch = 4, 4
        inputs = data.inputs[: num_victims * batch].reshape(num_victims, batch, FEATURES)
        labels = data.labels[: num_victims * batch].reshape(num_victims, batch)
        _, clean = StackedSequential(model).loss_and_gradients(
            np.broadcast_to(params, (num_victims, model.num_params)),
            inputs,
            labels.astype(np.int64),
        )

        def mean_error(epsilon: float) -> float:
            sigma = gaussian_sigma(epsilon, 1e-5, sensitivity=2.0 / batch)
            observed = np.stack(
                [
                    GaussianMechanism(
                        sigma, np.random.default_rng([0, 0x0B5, v]), clip_threshold=1.0
                    ).privatize(clean[v])
                    for v in range(num_victims)
                ]
            )
            attack = FleetInversionAttack(
                model, num_classes=CLASSES, iterations=60, seed=2
            )
            result = attack.run(observed, params, batch, (FEATURES,))
            return float(result.errors_against(inputs).mean())

        loose = mean_error(epsilon=100.0)
        tight = mean_error(epsilon=0.2)
        # Heavy noise must not help the attacker (same slack as the
        # single-victim DP test: SPSA is stochastic, demand no improvement).
        assert tight >= loose * 0.8
