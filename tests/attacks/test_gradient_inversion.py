"""Tests for the gradient-inversion attack and the DP defence against it."""

import numpy as np
import pytest

from repro.attacks.gradient_inversion import (
    GradientInversionAttack,
    gradient_inversion_attack,
    reconstruction_error,
)
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.privacy.mechanisms import GaussianMechanism


@pytest.fixture
def victim_setup():
    data = make_classification_dataset(64, num_features=6, num_classes=3, cluster_std=0.5, seed=0)
    model = make_linear_classifier(6, 3, seed=0)
    params = model.get_flat_params()
    batch = data.subset(np.arange(4))
    _, gradient = model.loss_and_gradient(batch.inputs, batch.labels, params=params)
    return model, params, batch, gradient


class TestReconstructionError:
    def test_zero_for_identical_batches(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        assert reconstruction_error(x, x.copy()) == pytest.approx(0.0)

    def test_order_invariant(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        permuted = x[[2, 0, 1]]
        assert reconstruction_error(x, permuted) == pytest.approx(0.0)

    def test_positive_for_different_batches(self):
        rng = np.random.default_rng(0)
        assert reconstruction_error(rng.normal(size=(3, 5)), rng.normal(size=(3, 5)) + 10) > 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            reconstruction_error(np.zeros((0, 3)), np.zeros((2, 3)))


class TestLabelInference:
    def test_recovers_label_histogram_without_noise(self, victim_setup):
        model, params, batch, gradient = victim_setup
        attack = GradientInversionAttack(model, num_classes=3, rng=np.random.default_rng(1))
        counts = attack.infer_label_counts(gradient, batch_size=len(batch))
        true_counts = np.bincount(batch.labels, minlength=3)
        assert counts.sum() == len(batch)
        # the dominant class must be identified correctly
        assert int(np.argmax(counts)) == int(np.argmax(true_counts))

    def test_uniform_fallback_when_gradient_is_pure_noise(self, victim_setup):
        model, params, batch, _ = victim_setup
        attack = GradientInversionAttack(model, num_classes=3, rng=np.random.default_rng(1))
        noise_gradient = np.abs(np.random.default_rng(0).normal(size=model.num_params)) + 10.0
        counts = attack.infer_label_counts(noise_gradient, batch_size=6)
        assert counts.sum() == 6


class TestInversion:
    def test_attack_reduces_matching_loss(self, victim_setup):
        model, params, batch, gradient = victim_setup
        attack = GradientInversionAttack(
            model, num_classes=3, iterations=80, rng=np.random.default_rng(2)
        )
        result = attack.run(gradient, params, batch_size=len(batch), input_shape=batch.input_shape)
        # the optimised dummy batch matches the observed gradient better than random
        baseline = attack._matching_loss(
            params,
            np.random.default_rng(3).normal(0, 0.5, size=batch.inputs.shape),
            result.inferred_labels,
            gradient,
        )
        assert result.matching_loss < baseline

    def test_dp_noise_degrades_reconstruction(self, victim_setup):
        model, params, batch, gradient = victim_setup
        rng = np.random.default_rng(4)
        clean_result = gradient_inversion_attack(
            model, gradient, params, len(batch), batch.input_shape, num_classes=3,
            iterations=120, rng=np.random.default_rng(5),
        )
        mechanism = GaussianMechanism(2.0, np.random.default_rng(6), clip_threshold=1.0)
        noised_gradient = mechanism.privatize(gradient)
        noised_result = gradient_inversion_attack(
            model, noised_gradient, params, len(batch), batch.input_shape, num_classes=3,
            iterations=120, rng=np.random.default_rng(5),
        )
        clean_error = clean_result.error_against(batch.inputs)
        noised_error = noised_result.error_against(batch.inputs)
        # heavy DP noise must not make the attacker's reconstruction better
        assert noised_error >= clean_error * 0.8

    def test_invalid_arguments(self, victim_setup):
        model, params, batch, gradient = victim_setup
        with pytest.raises(ValueError):
            GradientInversionAttack(model, num_classes=1)
        with pytest.raises(ValueError):
            GradientInversionAttack(model, num_classes=3, iterations=0)
        attack = GradientInversionAttack(model, num_classes=3)
        with pytest.raises(ValueError):
            attack.run(gradient[:-1], params, batch_size=4, input_shape=batch.input_shape)
        with pytest.raises(ValueError):
            attack.run(gradient, params, batch_size=0, input_shape=batch.input_shape)
