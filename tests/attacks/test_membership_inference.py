"""Tests for the loss-threshold membership-inference attack."""

import numpy as np
import pytest

from repro.attacks.membership_inference import membership_inference_attack
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier


def train_overfit_model(members, epochs=300, lr=0.5):
    """Deliberately overfit a linear model on the member set."""
    model = make_linear_classifier(members.input_shape[0], members.num_classes, seed=0)
    params = model.get_flat_params()
    for _ in range(epochs):
        _, grad = model.loss_and_gradient(members.inputs, members.labels, params=params)
        params = params - lr * grad
    return model, params


@pytest.fixture
def populations():
    data = make_classification_dataset(
        400, num_features=10, num_classes=4, cluster_std=1.6, label_noise=0.1, seed=0
    )
    members = data.subset(np.arange(0, 60))
    non_members = data.subset(np.arange(200, 260))
    return members, non_members


class TestMembershipInference:
    def test_overfit_model_leaks_membership(self, populations):
        members, non_members = populations
        model, params = train_overfit_model(members)
        result = membership_inference_attack(
            model, params, members, non_members, rng=np.random.default_rng(0)
        )
        assert result.advantage > 0.15
        assert result.accuracy > 0.55

    def test_untrained_model_leaks_little(self, populations):
        members, non_members = populations
        model = make_linear_classifier(10, 4, seed=0)
        result = membership_inference_attack(
            model, model.get_flat_params(), members, non_members, rng=np.random.default_rng(0)
        )
        assert result.advantage < 0.25

    def test_rates_are_probabilities(self, populations):
        members, non_members = populations
        model, params = train_overfit_model(members, epochs=50)
        result = membership_inference_attack(
            model, params, members, non_members, rng=np.random.default_rng(1)
        )
        assert 0.0 <= result.true_positive_rate <= 1.0
        assert 0.0 <= result.false_positive_rate <= 1.0
        assert 0.0 <= result.accuracy <= 1.0

    def test_advantage_definition(self, populations):
        members, non_members = populations
        model, params = train_overfit_model(members, epochs=50)
        result = membership_inference_attack(
            model, params, members, non_members, rng=np.random.default_rng(2)
        )
        assert result.advantage == pytest.approx(
            result.true_positive_rate - result.false_positive_rate
        )

    def test_requires_minimum_population_sizes(self, populations):
        members, non_members = populations
        model, params = train_overfit_model(members, epochs=10)
        with pytest.raises(ValueError):
            membership_inference_attack(model, params, members.subset([0, 1]), non_members)
        with pytest.raises(ValueError):
            membership_inference_attack(
                model, params, members, non_members, calibration_fraction=1.0
            )
