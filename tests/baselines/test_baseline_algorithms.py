"""Tests shared across all baseline algorithms plus baseline-specific behaviour."""

import numpy as np
import pytest

from repro.baselines import DMSGD, DPCGA, DPDPSGD, DPNetFleet, DPSGDNonPrivate, Muffliato
from repro.baselines.dp_cga import min_norm_combination
from repro.core.config import AlgorithmConfig, CGAConfig, MuffliatoConfig, NetFleetConfig
from repro.data.partition import partition_dirichlet
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.topology.graphs import fully_connected_graph, ring_graph


def build_components(num_agents=4, seed=0):
    data = make_classification_dataset(400, num_features=8, num_classes=4, cluster_std=0.6, seed=seed)
    topology = fully_connected_graph(num_agents)
    rng = np.random.default_rng(seed)
    shards = partition_dirichlet(data, num_agents, alpha=0.5, rng=rng, min_samples_per_agent=8).shards
    model = make_linear_classifier(8, 4, seed=seed)
    return model, topology, shards, data


def make_baseline(name, model, topology, shards, sigma=0.0, seed=0):
    base = dict(learning_rate=0.1, sigma=sigma, clip_threshold=1.0, batch_size=16, seed=seed)
    if name == "DP-DPSGD":
        return DPDPSGD(model, topology, shards, AlgorithmConfig(momentum=0.0, **base))
    if name == "D-PSGD":
        return DPSGDNonPrivate(model, topology, shards, AlgorithmConfig(momentum=0.0, **base))
    if name == "DMSGD":
        return DMSGD(model, topology, shards, AlgorithmConfig(momentum=0.5, **base))
    if name == "MUFFLIATO":
        return Muffliato(model, topology, shards, MuffliatoConfig(momentum=0.0, gossip_steps=2, **base))
    if name == "DP-CGA":
        return DPCGA(model, topology, shards, CGAConfig(momentum=0.5, **base))
    if name == "DP-NET-FLEET":
        return DPNetFleet(model, topology, shards, NetFleetConfig(momentum=0.0, local_steps=2, **base))
    raise ValueError(name)


ALL_BASELINES = ["DP-DPSGD", "D-PSGD", "DMSGD", "MUFFLIATO", "DP-CGA", "DP-NET-FLEET"]


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_parameters_change_after_one_round(name):
    model, topology, shards, _ = build_components()
    algorithm = make_baseline(name, model, topology, shards)
    before = [p.copy() for p in algorithm.params]
    algorithm.run_round()
    assert any(not np.allclose(b, a) for b, a in zip(before, algorithm.params))


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_noise_free_training_reduces_loss(name):
    model, topology, shards, _ = build_components()
    algorithm = make_baseline(name, model, topology, shards, sigma=0.0)
    initial = algorithm.average_train_loss()
    for _ in range(15):
        algorithm.run_round()
    assert algorithm.average_train_loss() < initial


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_deterministic_given_seed(name):
    model1, topology, shards, _ = build_components(seed=2)
    model2 = make_linear_classifier(8, 4, seed=2)
    a = make_baseline(name, model1, topology, shards, sigma=0.1, seed=5)
    b = make_baseline(name, model2, topology, shards, sigma=0.1, seed=5)
    for _ in range(3):
        a.run_round()
        b.run_round()
    for pa, pb in zip(a.params, b.params):
        np.testing.assert_array_equal(pa, pb)


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_no_pending_messages_after_round(name):
    model, topology, shards, _ = build_components()
    algorithm = make_baseline(name, model, topology, shards)
    algorithm.run_round()
    for agent in range(topology.num_agents):
        assert algorithm.network.pending(agent) == 0


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_works_on_ring_topology(name):
    model, _, _, data = build_components()
    topology = ring_graph(5)
    rng = np.random.default_rng(1)
    shards = partition_dirichlet(data, 5, alpha=0.5, rng=rng, min_samples_per_agent=8).shards
    algorithm = make_baseline(name, model, topology, shards, sigma=0.0)
    for _ in range(3):
        algorithm.run_round()
    assert algorithm.rounds_completed == 3


class TestConfigTypeEnforcement:
    def test_muffliato_requires_its_config(self):
        model, topology, shards, _ = build_components()
        with pytest.raises(TypeError):
            Muffliato(model, topology, shards, AlgorithmConfig(sigma=0.0, batch_size=8))

    def test_cga_requires_its_config(self):
        model, topology, shards, _ = build_components()
        with pytest.raises(TypeError):
            DPCGA(model, topology, shards, AlgorithmConfig(sigma=0.0, batch_size=8))

    def test_netfleet_requires_its_config(self):
        model, topology, shards, _ = build_components()
        with pytest.raises(TypeError):
            DPNetFleet(model, topology, shards, AlgorithmConfig(sigma=0.0, batch_size=8))


class TestMuffliatoSpecifics:
    def test_more_gossip_steps_tightens_consensus_on_ring(self):
        _, _, _, data = build_components()
        topology = ring_graph(6)
        rng = np.random.default_rng(0)
        shards = partition_dirichlet(data, 6, alpha=0.5, rng=rng, min_samples_per_agent=8).shards

        def consensus_after(gossip_steps):
            model = make_linear_classifier(8, 4, seed=0)
            config = MuffliatoConfig(
                learning_rate=0.1, sigma=0.2, clip_threshold=1.0, batch_size=16,
                seed=0, momentum=0.0, gossip_steps=gossip_steps,
            )
            algorithm = Muffliato(model, topology, shards, config)
            for _ in range(5):
                algorithm.run_round()
            return algorithm.consensus()

        assert consensus_after(4) < consensus_after(1)


class TestCGASpecifics:
    def test_min_norm_weights_on_simplex(self):
        rng = np.random.default_rng(0)
        grads = [rng.normal(size=20) for _ in range(5)]
        lam = min_norm_combination(grads)
        assert np.all(lam >= -1e-9)
        np.testing.assert_allclose(lam.sum(), 1.0, atol=1e-8)

    def test_min_norm_single_gradient(self):
        lam = min_norm_combination([np.ones(4)])
        np.testing.assert_array_equal(lam, [1.0])

    def test_min_norm_prefers_small_gradient(self):
        small = np.zeros(10)
        large = np.full(10, 5.0)
        lam = min_norm_combination([large, small])
        assert lam[1] > 0.9

    def test_min_norm_empty_rejected(self):
        with pytest.raises(ValueError):
            min_norm_combination([])

    def test_min_norm_opposed_gradients_cancel(self):
        g = np.array([1.0, 0.0])
        lam = min_norm_combination([g, -g])
        combined = lam[0] * g + lam[1] * (-g)
        assert np.linalg.norm(combined) < 1e-6


class TestNetFleetSpecifics:
    def test_tracking_variables_initialised_on_first_round(self):
        model, topology, shards, _ = build_components()
        algorithm = make_baseline("DP-NET-FLEET", model, topology, shards)
        assert all(np.all(t == 0) for t in algorithm.tracking)
        algorithm.run_round()
        assert any(np.linalg.norm(t) > 0 for t in algorithm.tracking)

    def test_local_steps_respected(self):
        model, topology, shards, _ = build_components()
        config = NetFleetConfig(
            learning_rate=0.1, sigma=0.0, clip_threshold=1.0, batch_size=16, seed=0, local_steps=3
        )
        algorithm = DPNetFleet(model, topology, shards, config)
        algorithm.run_round()
        assert algorithm.rounds_completed == 1
