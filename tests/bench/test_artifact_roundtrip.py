"""BENCH artifact schema round-trip and regression-threshold math."""

from __future__ import annotations

import json

import pytest

from repro.bench.artifact import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    compare_artifacts,
    comparison_exit_code,
    format_comparison,
    load_artifact,
    results_to_artifact,
    write_artifact,
)
from repro.bench.registry import BenchResult


def make_result(
    name: str,
    best: float,
    floored: bool = False,
    params: dict | None = None,
    metrics: dict | None = None,
    floor_value: float = 7.0,
    floor_armed: bool = True,
    skipped: bool = False,
    skip_reason: str | None = None,
    notes: dict | None = None,
) -> BenchResult:
    floor = None
    if floored:
        floor = {
            "metric": "speedup",
            "minimum": 5.0,
            "value": floor_value,
            "armed": floor_armed,
            "reason": "armed" if floor_armed else "only 1 CPU(s) available",
            "passed": floor_value >= 5.0 if floor_armed else None,
        }
    return BenchResult(
        name=name,
        description=f"{name} probe",
        wall_seconds=[best, best * 1.1],
        best_seconds=best,
        mean_seconds=best * 1.05,
        std_seconds=best * 0.05,
        rss_peak_bytes=64 * 1024 * 1024,
        repeats=2,
        warmup=True,
        metrics=dict(metrics or {"speedup": 7.0}),
        params=dict(params or {"agents": [256]}),
        floor=floor,
        skipped=skipped,
        skip_reason=skip_reason,
        notes=dict(notes or {}),
    )


def artifact_for(suites: list[BenchResult]) -> dict:
    return results_to_artifact(suites)


class TestSchemaRoundtrip:
    def test_run_write_load_roundtrip(self, tmp_path):
        artifact = artifact_for(
            [make_result("a/one", 0.5, floored=True), make_result("b/two", 0.01)]
        )
        path = tmp_path / "BENCH_test.json"
        write_artifact(path, artifact)
        loaded = load_artifact(path)
        assert loaded["schema"] == ARTIFACT_SCHEMA
        assert loaded["schema_version"] == ARTIFACT_VERSION
        assert set(loaded["suites"]) == {"a/one", "b/two"}
        suite = loaded["suites"]["a/one"]
        assert suite["best_seconds"] == 0.5
        assert suite["metrics"]["speedup"] == 7.0
        assert suite["floor"]["minimum"] == 5.0
        assert loaded["host"]["cpus"] >= 1

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_artifact(path)

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"schema": "something-else", "suites": {}}))
        with pytest.raises(ValueError, match="not a repro-bench artifact"):
            load_artifact(path)

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.json"
        payload = artifact_for([make_result("a/one", 0.5)])
        payload["schema_version"] = ARTIFACT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            load_artifact(path)


class TestCompareThresholds:
    def compare(self, old_best: float, new_best: float, floored: bool = True, **kw):
        old = artifact_for([make_result("s/probe", old_best, floored=floored)])
        new = artifact_for([make_result("s/probe", new_best, floored=floored)])
        comparison = compare_artifacts(old, new, **kw)
        (row,) = comparison.rows
        return comparison, row

    def test_within_warn_threshold_is_ok(self):
        comparison, row = self.compare(1.0, 1.08)
        assert row.status == "ok"
        assert comparison_exit_code(comparison) == 0

    def test_beyond_warn_threshold_warns(self):
        comparison, row = self.compare(1.0, 1.15)
        assert row.status == "warn"
        assert row.delta == pytest.approx(0.15)
        assert comparison_exit_code(comparison) == 0

    def test_beyond_fail_threshold_fails_floored_suites(self):
        comparison, row = self.compare(1.0, 1.30)
        assert row.status == "fail"
        assert comparison.failures == [row]
        assert comparison_exit_code(comparison) == 1

    def test_beyond_fail_threshold_only_warns_informational_suites(self):
        comparison, row = self.compare(1.0, 2.0, floored=False)
        assert row.status == "warn"
        assert comparison_exit_code(comparison) == 0

    def test_noise_floor_protects_tiny_baselines(self):
        # +100% on a 1 ms baseline: under the 5 ms noise floor, never a fail.
        comparison, row = self.compare(0.001, 0.002)
        assert row.status == "warn"
        assert comparison_exit_code(comparison) == 0

    def test_improvement_is_labelled_faster(self):
        _, row = self.compare(1.0, 0.5)
        assert row.status == "faster"

    def test_custom_thresholds(self):
        _, row = self.compare(1.0, 1.30, warn_threshold=0.4, fail_threshold=0.5)
        assert row.status == "ok"
        with pytest.raises(ValueError, match="warn_threshold"):
            self.compare(1.0, 1.0, warn_threshold=0.5, fail_threshold=0.1)

    def test_param_mismatch_is_skipped(self):
        old = artifact_for(
            [make_result("s/probe", 1.0, params={"agents": [4096]})]
        )
        new = artifact_for(
            [make_result("s/probe", 99.0, params={"agents": [64]})]
        )
        (row,) = compare_artifacts(old, new).rows
        assert row.status == "skipped"
        assert "parameters differ" in row.note

    def test_suite_present_in_only_one_artifact_is_skipped(self):
        old = artifact_for([make_result("s/old-only", 1.0)])
        new = artifact_for([make_result("s/new-only", 1.0)])
        comparison = compare_artifacts(old, new)
        assert [row.status for row in comparison.rows] == ["skipped", "skipped"]
        assert comparison_exit_code(comparison) == 0

    def compare_metric(
        self, old_value: float, new_value: float, floored: bool = True, **kw
    ):
        """Wall clock held flat; only the floor metric (speedup) moves."""
        old = artifact_for(
            [make_result("s/probe", 1.0, floored=floored, floor_value=old_value)]
        )
        new = artifact_for(
            [make_result("s/probe", 1.0, floored=floored, floor_value=new_value)]
        )
        comparison = compare_artifacts(old, new, **kw)
        (row,) = comparison.rows
        return comparison, row

    def test_floor_metric_collapse_fails_despite_flat_wall_clock(self):
        # The scenario wall-clock gating cannot see: the protected fast
        # kernel regresses 10x but the suite's total time barely moves.
        comparison, row = self.compare_metric(1000.0, 100.0)
        assert row.status == "fail"
        assert row.metric_drop == pytest.approx(0.9)
        assert "floor metric 'speedup' dropped" in row.note
        assert comparison_exit_code(comparison) == 1

    def test_floor_metric_moderate_drop_warns(self):
        _, row = self.compare_metric(100.0, 85.0)
        assert row.status == "warn"
        assert row.metric_drop == pytest.approx(0.15)

    def test_floor_metric_stable_or_improving_is_ok(self):
        _, row = self.compare_metric(100.0, 98.0)
        assert row.status == "ok"
        _, row = self.compare_metric(100.0, 250.0)
        assert row.status == "ok"
        assert row.metric_drop == pytest.approx(-1.5)

    def test_floor_metric_gates_even_when_floor_is_disarmed(self):
        # A 1-CPU baseline records the speedup with armed=false — the ratio
        # is still comparable and must still protect the kernel.
        old = artifact_for(
            [
                make_result(
                    "s/probe", 1.0, floored=True, floor_value=900.0, floor_armed=False
                )
            ]
        )
        new = artifact_for(
            [
                make_result(
                    "s/probe", 1.0, floored=True, floor_value=80.0, floor_armed=False
                )
            ]
        )
        (row,) = compare_artifacts(old, new).rows
        assert row.status == "fail"

    def test_format_mentions_thresholds_and_rows(self):
        comparison, _ = self.compare(1.0, 1.3)
        text = format_comparison(comparison)
        assert "s/probe" in text
        assert "1 failure(s)" in text
        assert "warn > 10%" in text and "fail > 25%" in text


class TestSkippedSuites:
    def test_payload_carries_skip_and_notes(self):
        artifact = artifact_for(
            [
                make_result(
                    "s/skippy",
                    0.0,
                    skipped=True,
                    skip_reason="needs 48 GiB, 4 GiB available",
                    notes={"skip@262144": "too big"},
                )
            ]
        )
        suite = artifact["suites"]["s/skippy"]
        assert suite["skipped"] is True
        assert "48 GiB" in suite["skip_reason"]
        assert suite["notes"] == {"skip@262144": "too big"}

    def test_candidate_skip_compares_as_skipped_not_fail(self):
        old = artifact_for([make_result("s/probe", 1.0, floored=True)])
        new = artifact_for(
            [
                make_result(
                    "s/probe",
                    0.0,
                    floored=True,
                    skipped=True,
                    skip_reason="not enough memory",
                )
            ]
        )
        comparison = compare_artifacts(old, new)
        (row,) = comparison.rows
        assert row.status == "skipped"
        assert "candidate skipped" in row.note
        assert "not enough memory" in row.note
        assert comparison_exit_code(comparison) == 0

    def test_baseline_skip_is_named(self):
        old = artifact_for(
            [make_result("s/probe", 0.0, skipped=True, skip_reason="small host")]
        )
        new = artifact_for([make_result("s/probe", 1.0)])
        (row,) = compare_artifacts(old, new).rows
        assert row.status == "skipped"
        assert "baseline skipped" in row.note

    def test_both_sides_skipped(self):
        old = artifact_for([make_result("s/probe", 0.0, skipped=True)])
        new = artifact_for([make_result("s/probe", 0.0, skipped=True)])
        (row,) = compare_artifacts(old, new).rows
        assert row.status == "skipped"
        assert "both runs skipped" in row.note

    def test_report_renders_skip_and_notes(self):
        from repro.bench.report import render_markdown

        artifact = artifact_for(
            [
                make_result(
                    "s/skippy", 0.0, skipped=True, skip_reason="needs 48 GiB"
                ),
                make_result(
                    "s/ran", 1.0, notes={"skip@262144": "needs 48 GiB"}
                ),
            ]
        )
        page = render_markdown(artifact, "BENCH_test.json")
        assert "| `s/skippy` | skipped | - | - | - |" in page
        assert "Skipped: needs 48 GiB." in page
        assert "- `skip@262144`: needs 48 GiB" in page
