"""End-to-end ``repro-bench`` CLI: run → artifact → compare → report."""

from __future__ import annotations

import pytest

from repro.bench.artifact import load_artifact
from repro.bench.cli import main
from repro.bench.report import GENERATED_MARKER


@pytest.fixture()
def fast_knobs(monkeypatch):
    """Pin the cheap suites to milliseconds regardless of ambient env."""
    monkeypatch.setenv("REPRO_BENCH_SHAPLEY_PLAYERS", "6")
    monkeypatch.setenv("REPRO_BENCH_SHAPLEY_PERMS", "20")
    monkeypatch.setenv("REPRO_BENCH_NOISE_AGENTS", "64")
    monkeypatch.setenv("REPRO_BENCH_NOISE_DIM", "8")


def run_to_artifact(tmp_path, name: str, filters=("shapley", "noise")):
    out = tmp_path / name
    argv = ["run", "--out", str(out), "--repeats", "2"]
    for f in filters:
        argv += ["--filter", f]
    assert main(argv) == 0
    return out


def test_list_exits_zero(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "engine/round" in out and "gossip/sparse" in out


def test_run_emits_schema_versioned_artifact(tmp_path, fast_knobs):
    path = run_to_artifact(tmp_path, "BENCH_a.json")
    artifact = load_artifact(path)
    assert set(artifact["suites"]) == {"game/shapley-mc", "privacy/noise-rows"}
    for suite in artifact["suites"].values():
        assert suite["repeats"] == 2
        assert suite["best_seconds"] > 0


def test_run_with_unknown_filter_is_an_error(capsys):
    assert main(["run", "--filter", "does-not-exist"]) == 2
    assert "no suites match" in capsys.readouterr().err


def test_compare_two_real_runs_is_soft(tmp_path, fast_knobs, capsys):
    a = run_to_artifact(tmp_path, "BENCH_a.json")
    b = run_to_artifact(tmp_path, "BENCH_b.json")
    # Both suites are informational (no floor), so back-to-back noise can
    # warn but never fail the gate.
    assert main(["compare", str(a), str(b)]) == 0
    assert "0 failure(s)" in capsys.readouterr().out


def test_report_write_then_check_roundtrip(tmp_path, fast_knobs, capsys):
    artifact = run_to_artifact(tmp_path, "BENCH_a.json")
    page = tmp_path / "PERFORMANCE.md"
    assert main(["report", str(artifact), "--out", str(page)]) == 0
    text = page.read_text()
    assert text.startswith(GENERATED_MARKER)
    assert "game/shapley-mc" in text
    # Freshness check passes on the file just written...
    assert main(["report", str(artifact), "--out", str(page), "--check"]) == 0
    # ...and fails once the page drifts from the artifact.
    page.write_text(text + "\nhand edit\n")
    assert main(["report", str(artifact), "--out", str(page), "--check"]) == 1
    assert "stale" in capsys.readouterr().err


def test_missing_artifact_is_a_clean_error(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["compare", str(missing), str(missing)]) == 2
    assert "repro-bench" in capsys.readouterr().err


def test_run_prints_peak_rss(tmp_path, fast_knobs, capsys):
    run_to_artifact(tmp_path, "BENCH_a.json", filters=("noise",))
    out = capsys.readouterr().out
    assert "peak RSS" in out


def test_skipped_suite_prints_reason_and_serializes(tmp_path, capsys, monkeypatch):
    from repro.bench.registry import Benchmark, benchmark

    @benchmark
    class _Gigantic(Benchmark):
        name = "test/cli-gigantic"
        description = "always too big"
        default_repeats = 1
        default_warmup = False

        def required_memory_bytes(self):
            return 1 << 60

        def run(self):
            return {}

    try:
        out = tmp_path / "BENCH_skip.json"
        assert main(["run", "--out", str(out), "--filter", "cli-gigantic"]) == 0
        printed = capsys.readouterr().out
        assert "SKIPPED" in printed
        suite = load_artifact(out)["suites"]["test/cli-gigantic"]
        assert suite["skipped"] is True
        assert suite["skip_reason"]
    finally:
        from repro.bench import registry as registry_module

        registry_module._REGISTRY.pop("test/cli-gigantic", None)


def test_suite_notes_are_printed(tmp_path, capsys):
    from repro.bench.registry import Benchmark, benchmark

    @benchmark
    class _Noted(Benchmark):
        name = "test/cli-noted"
        description = "emits a note"
        default_repeats = 1
        default_warmup = False

        def run(self):
            return {"answer": 1.0}

        def notes(self):
            return {"skip@262144": "needs 48 GiB"}

    try:
        out = tmp_path / "BENCH_notes.json"
        assert main(["run", "--out", str(out), "--filter", "cli-noted"]) == 0
        printed = capsys.readouterr().out
        assert "skip@262144" in printed and "needs 48 GiB" in printed
    finally:
        from repro.bench import registry as registry_module

        registry_module._REGISTRY.pop("test/cli-noted", None)
